//! `tmerge-cli` — drive the full pipeline from the command line.
//!
//! ```sh
//! cargo run --release --bin tmerge-cli -- pipeline --dataset mot17 --video 0 \
//!     --tracker sort --algorithm tmerge --tau 10000 --k 0.05 --batch 10
//! cargo run --release --bin tmerge-cli -- trackers --dataset kitti
//! cargo run --release --bin tmerge-cli -- query --dataset mot17 --video 2
//! ```

use std::collections::HashMap;
use tmerge::core::build_window_pairs;
use tmerge::prelude::*;
use tmerge::query::count_query;

fn usage() -> ! {
    eprintln!(
        "tmerge-cli — track merging for video query processing

USAGE:
  tmerge-cli pipeline [--dataset D] [--video N] [--tracker T] \\
                      [--algorithm A] [--tau N] [--k F] [--batch B] [--gate G]
  tmerge-cli trackers [--dataset D] [--video N]
  tmerge-cli query    [--dataset D] [--video N] [--min-frames N]

OPTIONS:
  --dataset     mot17 | kitti | pathtrack       (default mot17)
  --video       video index within the dataset  (default 0)
  --tracker     tracktor | deepsort | sort | uma | centertrack | bytetrack | iou
                                                (default tracktor)
  --algorithm   tmerge | bl | ps | lcb          (default tmerge)
  --tau         bandit budget τ_max             (default 10000)
  --k           candidate budget K              (default 0.05)
  --batch       GPU batch size B; 0 = CPU       (default 0)
  --gate        feature gating: off | on        (default off)
  --min-frames  Count-query duration threshold  (default 200)"
    );
    std::process::exit(2)
}

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                eprintln!("unexpected argument `{a}`");
                usage();
            };
            let Some(value) = it.next() else {
                eprintln!("flag --{key} needs a value");
                usage();
            };
            flags.insert(key.to_string(), value.clone());
        }
        Self { flags }
    }

    fn str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.flags.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v}");
                usage()
            }),
        }
    }
}

fn dataset(name: &str) -> tmerge::datasets::DatasetSpec {
    match name {
        "mot17" => mot17(),
        "kitti" => kitti(),
        "pathtrack" => pathtrack(),
        other => {
            eprintln!("unknown dataset `{other}`");
            usage()
        }
    }
}

fn tracker(name: &str) -> TrackerKind {
    match name {
        "tracktor" => TrackerKind::Tracktor,
        "deepsort" => TrackerKind::DeepSort,
        "sort" => TrackerKind::Sort,
        "uma" => TrackerKind::Uma,
        "centertrack" => TrackerKind::CenterTrack,
        "bytetrack" => TrackerKind::ByteTrack,
        "iou" => TrackerKind::Iou,
        other => {
            eprintln!("unknown tracker `{other}`");
            usage()
        }
    }
}

fn load_video(args: &Args) -> (tmerge::datasets::PreparedVideo, u64) {
    let spec = dataset(&args.str("dataset", "mot17"));
    let idx: usize = args.num("video", 0);
    let Some(video_spec) = spec.videos.get(idx) else {
        eprintln!("dataset {} has {} videos", spec.name, spec.videos.len());
        usage()
    };
    let kind = tracker(&args.str("tracker", "tracktor"));
    eprintln!(
        "preparing {} with {} (simulate → detect → track)...",
        video_spec.name,
        kind.name()
    );
    (prepare(video_spec, kind), spec.window_len)
}

fn cmd_pipeline(args: &Args) {
    let (video, window_len) = load_video(args);
    let tau: u64 = args.num("tau", 10_000);
    let k: f64 = args.num("k", 0.05);
    let batch: usize = args.num("batch", 0);
    let selector = match args.str("algorithm", "tmerge").as_str() {
        "tmerge" => SelectorKind::TMerge(TMergeConfig {
            tau_max: tau,
            ..TMergeConfig::default()
        }),
        "bl" => SelectorKind::Baseline,
        "ps" => SelectorKind::Ps(PsConfig { eta: 0.05, seed: 0 }),
        "lcb" => SelectorKind::Lcb(LcbConfig {
            tau_max: tau,
            seed: 0,
            record_history: false,
        }),
        other => {
            eprintln!("unknown algorithm `{other}`");
            usage()
        }
    };
    let gate = match args.str("gate", "off").as_str() {
        "off" => GatePolicy::Off,
        "on" => GatePolicy::On(GateConfig::default()),
        other => {
            eprintln!("unknown gate mode `{other}`");
            usage()
        }
    };
    let config = PipelineConfig {
        window_len,
        k,
        selector,
        device: if batch == 0 {
            Device::Cpu
        } else {
            Device::Gpu { batch }
        },
        cost: CostModel::calibrated(),
        gate,
        voi: tm_core::VoiMode::Off,
    };
    let model = video.model();
    let report = run_pipeline(&video.tracks, video.n_frames, &model, &config, None)
        .expect("valid configuration");
    let truth = {
        let all: Vec<&Track> = video.tracks.iter().collect();
        video.correspondence.all_polyonymous(&all)
    };
    println!(
        "video:            {} ({} frames)",
        video.name, video.n_frames
    );
    println!(
        "tracks:           {} -> {}",
        video.tracks.len(),
        report.merged.len()
    );
    println!("pairs examined:   {}", report.n_pairs);
    println!("distance evals:   {}", report.distance_evals);
    println!(
        "reid inferences:  {} ({} cache hits)",
        report.stats.inferences, report.stats.cache_hits
    );
    println!(
        "simulated time:   {:.2} s  ({:.2} FPS)",
        report.elapsed_ms / 1000.0,
        report.fps(video.n_frames)
    );
    println!("candidates:       {}", report.candidates.len());
    println!("true poly pairs:  {}", truth.len());
    println!(
        "recall:           {:.3}",
        recall(report.candidates.iter(), &truth)
    );
    let before = identity_metrics(&video.gt_tracks, &video.tracks, 0.5);
    let after = identity_metrics(&video.gt_tracks, &report.merged, 0.5);
    println!("IDF1:             {:.3} -> {:.3}", before.idf1, after.idf1);
}

fn cmd_trackers(args: &Args) {
    let spec = dataset(&args.str("dataset", "mot17"));
    let idx: usize = args.num("video", 0);
    let Some(video_spec) = spec.videos.get(idx) else {
        eprintln!("dataset {} has {} videos", spec.name, spec.videos.len());
        usage()
    };
    println!(
        "{:<12} {:>7} {:>7} {:>6} {:>8} {:>8}",
        "tracker", "tracks", "pairs", "poly", "rate", "IDF1"
    );
    for kind in TrackerKind::EXTENDED {
        let video = prepare(video_spec, kind);
        let pairs: Vec<TrackPair> =
            build_window_pairs(&video.tracks, video.n_frames, spec.window_len)
                .expect("even window length")
                .into_iter()
                .flat_map(|w| w.pairs)
                .collect();
        let truth = video.poly_truth(&pairs);
        let idf1 = identity_metrics(&video.gt_tracks, &video.tracks, 0.5).idf1;
        println!(
            "{:<12} {:>7} {:>7} {:>6} {:>7.2}% {:>8.3}",
            kind.name(),
            video.tracks.len(),
            pairs.len(),
            truth.len(),
            100.0 * polyonymous_rate(truth.len(), pairs.len()),
            idf1,
        );
    }
}

fn cmd_query(args: &Args) {
    let (video, window_len) = load_video(args);
    let min_frames: u64 = args.num("min-frames", 200);
    let model = video.model();
    let corr = &video.correspondence;
    let verifier = |p: &TrackPair| corr.is_polyonymous(p);
    let report = run_pipeline(
        &video.tracks,
        video.n_frames,
        &model,
        &PipelineConfig {
            window_len,
            ..PipelineConfig::default()
        },
        Some(&verifier),
    )
    .expect("valid configuration");
    let merged_corr = Correspondence::from_tracks(&report.merged, 0.5);
    let gt = &video.gt_tracks;
    println!("Count(> {min_frames} frames):");
    println!(
        "  ground truth: {} objects",
        count_query(gt, min_frames).len()
    );
    println!(
        "  raw tracks:   {} objects, recall {:.3}",
        count_query(&video.tracks, min_frames).len(),
        count_recall(&video.tracks, gt, min_frames, corr.as_map())
    );
    println!(
        "  with TMerge:  {} objects, recall {:.3}",
        count_query(&report.merged, min_frames).len(),
        count_recall(&report.merged, gt, min_frames, merged_corr.as_map())
    );
    println!("CoOccurrence(3 objects, > 50 frames):");
    println!(
        "  raw tracks recall:  {:.3}",
        co_occurrence_recall(&video.tracks, gt, 3, 50, corr.as_map())
    );
    println!(
        "  with TMerge recall: {:.3}",
        co_occurrence_recall(&report.merged, gt, 3, 50, merged_corr.as_map())
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        usage()
    };
    let args = Args::parse(rest);
    match cmd.as_str() {
        "pipeline" => cmd_pipeline(&args),
        "trackers" => cmd_trackers(&args),
        "query" => cmd_query(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
