//! # tmerge
//!
//! A complete Rust reproduction of **“Track Merging for Effective Video
//! Query Processing”** (Chao, Chen, Koudas, Yu — ICDE 2023): the TMerge
//! Thompson-sampling algorithm for identifying and merging *polyonymous
//! tracks* (fragments of one object's trajectory carrying different
//! tracking IDs), together with every substrate the paper's pipeline
//! depends on — a world/video simulator, a detection simulator, five
//! multi-object trackers, a ReID feature simulator with an explicit
//! inference cost model, CLEAR-MOT / identity metrics, and a downstream
//! video query engine.
//!
//! This crate is the umbrella: it re-exports each layer under a module
//! named after its role. Depend on the individual `tm-*` crates instead if
//! you only need one layer.
//!
//! ## The pipeline at a glance
//!
//! ```text
//! tm-synth ──► tm-detect ──► tm-track ──► tm-core (TMerge) ──► tm-query
//!  world        noisy         fragmented    merged              accurate
//!  truth        detections    tracks        tracks              answers
//!                    ╲            │            │
//!                     ╰── tm-reid (appearance features + cost model)
//!                              tm-metrics (REC, IDF1, MOTA, …)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use tmerge::prelude::*;
//!
//! // 1. A world with one pedestrian crossing behind a pillar.
//! let mut scenario = Scenario::new(SceneConfig::new(1200.0, 800.0, 240), 7);
//! scenario.push_actor(ActorSpec::new(
//!     GtObjectId(0), classes::PEDESTRIAN, 40.0, 100.0,
//!     FrameIdx(0), FrameIdx(240),
//!     MotionModel::linear(Point::new(30.0, 400.0), 4.0, 0.0),
//! ));
//! scenario.push_occluder(Occluder::static_box(BBox::new(450.0, 250.0, 140.0, 350.0)));
//! let gt = scenario.simulate();
//!
//! // 2. Detect and track: the occlusion fragments the track.
//! let detections = Detector::new(DetectorConfig::default()).detect(&gt, 1);
//! let model = AppearanceModel::new(AppearanceConfig::default());
//! let mut tracker = Sort::new(SortConfig::default());
//! let tracks = track_video(&mut tracker, &detections);
//! assert!(tracks.len() > 1, "the pillar should split the track");
//!
//! // 3. TMerge repairs it.
//! let report = run_pipeline(&tracks, 240, &model, &PipelineConfig::default(), None).unwrap();
//! assert!(report.merged.len() < tracks.len());
//! ```

pub use tm_chaos as chaos;
pub use tm_core as core;
pub use tm_datasets as datasets;
pub use tm_detect as detect;
pub use tm_metrics as metrics;
pub use tm_query as query;
pub use tm_reid as reid;
pub use tm_serve as serve;
pub use tm_synth as synth;
pub use tm_track as track;
pub use tm_types as types;

/// The most commonly used items of every layer, for glob import.
pub mod prelude {
    pub use tm_core::{
        run_pipeline, Baseline, LcbConfig, LowerConfidenceBound, PipelineConfig, PipelineReport,
        ProportionalSampling, PsConfig, SelectorKind, TMerge, TMergeConfig, VoiHints, VoiMode,
    };
    pub use tm_datasets::{kitti, mot17, pathtrack, prepare};
    pub use tm_detect::{Detector, DetectorConfig};
    pub use tm_metrics::{
        clear_mot, identity_metrics, polyonymous_rate, recall, ClearMotConfig, Correspondence,
    };
    pub use tm_query::{co_occurrence_recall, count_recall, Query};
    pub use tm_reid::{
        AppearanceConfig, AppearanceModel, CostModel, Device, GateConfig, GatePolicy, ReidSession,
    };
    pub use tm_serve::{Admission, AdmissionConfig, ServeConfig, TenantSpec, TmServe};
    pub use tm_synth::{
        ActorSpec, GlareEvent, GroundTruth, MotionModel, Occluder, Scenario, SceneConfig,
    };
    pub use tm_track::{
        track_video, DeepSort, DeepSortConfig, Sort, SortConfig, Tracker, TrackerKind,
        TracktorLike, TracktorLikeConfig,
    };
    pub use tm_types::{
        ids::classes, BBox, ClassId, Detection, FrameIdx, GtObjectId, Point, Track, TrackId,
        TrackPair, TrackSet,
    };
}
