//! Surveillance-scale ingestion: a two-minute PathTrack-style feed is
//! processed with half-overlapping windows, comparing the exact baseline
//! with TMerge (CPU and batched) as the metadata pre-processing step —
//! the large-video-repository scenario that motivates the paper (§I).
//!
//! ```sh
//! cargo run --release --example surveillance_ingest
//! ```

use tmerge::prelude::*;

fn main() {
    // One PathTrack-like video: 3600 frames, a large cast, pillars, glare.
    let spec = &pathtrack().videos[0];
    let video = prepare(spec, TrackerKind::Tracktor);
    println!(
        "{}: {} frames, {} tracks, {} boxes from the tracker",
        video.name,
        video.n_frames,
        video.tracks.len(),
        video.tracks.total_boxes()
    );

    let truth = {
        let tracks: Vec<&Track> = video.tracks.iter().collect();
        video.correspondence.all_polyonymous(&tracks)
    };
    println!("ground truth: {} polyonymous pairs", truth.len());

    let model = video.model();
    let run = |name: &str, selector: SelectorKind, device: Device| {
        let config = PipelineConfig {
            window_len: 2000, // L = 2·L_max (PathTrack's L_max is 1000)
            k: 0.05,
            selector,
            device,
            cost: CostModel::calibrated(),
            gate: tm_reid::GatePolicy::Off,
            voi: tmerge::core::VoiMode::Off,
        };
        let report = run_pipeline(&video.tracks, video.n_frames, &model, &config, None)
            .expect("valid pipeline configuration");
        let rec = recall(report.candidates.iter(), &truth);
        println!(
            "{name:<14} REC {rec:.3}  runtime {:>8.1}s (simulated)  FPS {:>8.2}  \
             ReID inferences {:>7}  distances {:>9}",
            report.elapsed_ms / 1000.0,
            report.fps(video.n_frames),
            report.stats.inferences,
            report.stats.distances,
        );
        report
    };

    println!("\nper-window pair selection (K = 5%):");
    run("BL", SelectorKind::Baseline, Device::Cpu);
    run(
        "TMerge",
        SelectorKind::TMerge(TMergeConfig::default()),
        Device::Cpu,
    );
    let report = run(
        "TMerge-B(100)",
        SelectorKind::TMerge(TMergeConfig::default()),
        Device::Gpu { batch: 100 },
    );

    // What the merge does to the metadata quality.
    let gt = &video.gt_tracks;
    let before = identity_metrics(gt, &video.tracks, 0.5);
    let after = identity_metrics(gt, &report.merged, 0.5);
    println!(
        "\nmetadata quality: IDF1 {:.3} -> {:.3}, tracks {} -> {}",
        before.idf1,
        after.idf1,
        video.tracks.len(),
        report.merged.len()
    );
}
