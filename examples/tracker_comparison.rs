//! Compares the five trackers' fragmentation behaviour on the same scene
//! and shows that TMerge helps each of them (§V-G of the paper).
//!
//! ```sh
//! cargo run --release --example tracker_comparison
//! ```

use tmerge::core::build_window_pairs;
use tmerge::prelude::*;

fn main() {
    let spec = &mot17().videos[0];
    println!("scene: {} ({} frames)", spec.name, spec.scene.n_frames);
    println!(
        "{:<12} {:>7} {:>7} {:>10} {:>12} {:>12} {:>8}",
        "tracker", "tracks", "pairs", "poly pairs", "rate w/o", "rate with", "IDF1"
    );

    for kind in TrackerKind::EXTENDED {
        let video = prepare(spec, kind);
        let pairs: Vec<TrackPair> = build_window_pairs(&video.tracks, video.n_frames, 2000)
            .expect("even window length")
            .into_iter()
            .flat_map(|w| w.pairs)
            .collect();
        let truth = video.poly_truth(&pairs);

        // Run TMerge and compute the residual polyonymous rate.
        let model = video.model();
        let report = run_pipeline(
            &video.tracks,
            video.n_frames,
            &model,
            &PipelineConfig::default(),
            None,
        )
        .expect("valid pipeline configuration");
        let found: std::collections::BTreeSet<TrackPair> =
            report.candidates.iter().copied().collect();
        let residual = truth.difference(&found).count();

        let idf1 = identity_metrics(&video.gt_tracks, &video.tracks, 0.5).idf1;
        println!(
            "{:<12} {:>7} {:>7} {:>10} {:>11.3}% {:>11.3}% {:>8.3}",
            kind.name(),
            video.tracks.len(),
            pairs.len(),
            truth.len(),
            100.0 * polyonymous_rate(truth.len(), pairs.len()),
            100.0 * polyonymous_rate(residual, pairs.len()),
            idf1,
        );
    }
    println!(
        "\nTracktor fragments least (as in the paper); TMerge cuts every \
         tracker's polyonymous rate by an order of magnitude."
    );
}
