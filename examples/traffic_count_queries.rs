//! Declarative video queries over track metadata: how fragmentation breaks
//! *Count* (congestion / loitering) and *Co-occurring Objects* queries, and
//! how TMerge restores their recall (§V-H of the paper).
//!
//! ```sh
//! cargo run --release --example traffic_count_queries
//! ```

use tmerge::prelude::*;
use tmerge::query::{co_occurrence_query, count_query};

fn main() {
    // A crowded MOT-17-like scene tracked by Tracktor.
    let spec = &mot17().videos[2];
    let video = prepare(spec, TrackerKind::Tracktor);
    let gt = &video.gt_tracks;
    println!(
        "{}: {} GT objects, tracker reported {} tracks",
        video.name,
        gt.len(),
        video.tracks.len()
    );

    // Merge with TMerge (verified candidates, as the paper's deployment
    // with human inspection would).
    let model = video.model();
    let corr = &video.correspondence;
    let verifier = |p: &TrackPair| corr.is_polyonymous(p);
    let report = run_pipeline(
        &video.tracks,
        video.n_frames,
        &model,
        &PipelineConfig::default(),
        Some(&verifier),
    )
    .expect("valid pipeline configuration");
    let merged = report.merged;
    let merged_corr = Correspondence::from_tracks(&merged, 0.5);

    // --- Query 1: Count objects visible for more than 200 frames. ---
    let min_frames = 200;
    let gt_hits = count_query(gt, min_frames).len();
    let raw_hits = count_query(&video.tracks, min_frames).len();
    let merged_hits = count_query(&merged, min_frames).len();
    println!("\nCount(> {min_frames} frames):");
    println!("  ground truth answer: {gt_hits} objects");
    println!(
        "  raw tracks:    {raw_hits} (recall {:.3})",
        count_recall(&video.tracks, gt, min_frames, corr.as_map())
    );
    println!(
        "  after TMerge:  {merged_hits} (recall {:.3})",
        count_recall(&merged, gt, min_frames, merged_corr.as_map())
    );

    // --- Query 2: clips where the same 3 objects appear jointly > 50
    //     frames. ---
    let (k, min_len) = (3, 50);
    let gt_groups = co_occurrence_query(gt, k, min_len).len();
    println!("\nCoOccurrence({k} objects, > {min_len} frames):");
    println!("  ground truth answer: {gt_groups} groups");
    println!(
        "  raw tracks recall:   {:.3}",
        co_occurrence_recall(&video.tracks, gt, k, min_len, corr.as_map())
    );
    println!(
        "  after TMerge recall: {:.3}",
        co_occurrence_recall(&merged, gt, k, min_len, merged_corr.as_map())
    );
}
