//! Quickstart: watch one object's track fragment behind a pillar, then let
//! TMerge repair it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tmerge::prelude::*;

fn main() {
    // 1. A tiny world: two pedestrians cross the scene; a pillar hides the
    //    lower one for ~35 frames — longer than SORT's patience.
    let mut scenario = Scenario::new(SceneConfig::new(1200.0, 800.0, 300), 42);
    scenario.push_actor(ActorSpec::new(
        GtObjectId(0),
        classes::PEDESTRIAN,
        40.0,
        100.0,
        FrameIdx(0),
        FrameIdx(300),
        MotionModel::linear(Point::new(20.0, 500.0), 4.0, 0.0),
    ));
    scenario.push_actor(ActorSpec::new(
        GtObjectId(1),
        classes::PEDESTRIAN,
        40.0,
        100.0,
        FrameIdx(0),
        FrameIdx(300),
        MotionModel::linear(Point::new(1180.0, 300.0), -3.5, 0.0),
    ));
    scenario.push_occluder(Occluder::static_box(BBox::new(500.0, 380.0, 140.0, 300.0)));
    let gt = scenario.simulate();
    println!(
        "simulated {} frames, {} GT tracks",
        gt.n_frames(),
        gt.gt_tracks(0.1).len()
    );

    // 2. Detect and track.
    let detections = Detector::new(DetectorConfig::default()).detect(&gt, 1);
    let mut tracker = Sort::new(SortConfig::default());
    let tracks = track_video(&mut tracker, &detections);
    println!("SORT produced {} tracks for 2 objects:", tracks.len());
    for t in tracks.iter() {
        println!(
            "  {}: frames {}..{} ({} boxes, actor {:?})",
            t.id,
            t.first_frame().unwrap(),
            t.last_frame().unwrap(),
            t.len(),
            t.majority_actor().map(|(a, _)| a)
        );
    }

    // 3. TMerge: identify polyonymous pairs and merge them.
    let model = AppearanceModel::new(AppearanceConfig::default());
    let config = PipelineConfig {
        window_len: 600, // ≥ 2·L_max for this 300-frame scene
        k: 0.3,          // 3 pairs → the single best candidate
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 2_000,
            ..TMergeConfig::default()
        }),
        ..PipelineConfig::default()
    };
    let report = run_pipeline(&tracks, gt.n_frames(), &model, &config, None)
        .expect("valid pipeline configuration");
    println!(
        "\nTMerge examined {} pairs with {} ReID distance evaluations \
         ({:.1} ms simulated)",
        report.n_pairs, report.distance_evals, report.elapsed_ms
    );
    for p in &report.accepted {
        println!("  merged {p}");
    }
    println!("after merging: {} tracks", report.merged.len());

    // 4. The repair is visible in the identity metrics.
    let before = identity_metrics(&gt.gt_tracks(0.1), &tracks, 0.5);
    let after = identity_metrics(&gt.gt_tracks(0.1), &report.merged, 0.5);
    println!(
        "\nIDF1 {:.3} -> {:.3}   IDP {:.3} -> {:.3}   IDR {:.3} -> {:.3}",
        before.idf1, after.idf1, before.idp, after.idp, before.idr, after.idr
    );
}
