//! Chaos-hardened ingestion demo: the same live feed as
//! `streaming_monitor`, but the ReID backend is flaky throughout and hard
//! down for two whole windows. The merger degrades to spatio-temporal
//! evidence, recovers, re-verifies with real ReID — and a mid-outage
//! kill/resume from a checkpoint reproduces the uninterrupted run exactly.
//!
//! ```sh
//! cargo run --release --example chaos_demo
//! ```

use tmerge::chaos::{FaultPlan, FaultyModel};
use tmerge::core::{DecisionMode, StreamConfig, StreamingMerger, TMerge, TMergeConfig};
use tmerge::prelude::*;

fn merger<'m>(
    model: &'m AppearanceModel,
    backend: Option<&'m FaultyModel<'m>>,
) -> tm_types::Result<StreamingMerger<'m, TMerge>> {
    let m = StreamingMerger::new(
        model,
        CostModel::calibrated(),
        Device::Gpu { batch: 100 },
        TMerge::new(TMergeConfig::default()),
        StreamConfig {
            window_len: 2000,
            k: 0.05,
            gate: tm_reid::GatePolicy::Off,
            voi: tmerge::core::VoiMode::Off,
        },
    )?;
    Ok(match backend {
        Some(b) => m.with_backend(b),
        None => m,
    })
}

fn main() -> tm_types::Result<()> {
    let spec = &pathtrack().videos[1];
    let video = prepare(spec, TrackerKind::Tracktor);
    let model = video.model();

    // 5% transient failures + latency spikes everywhere, and the backend
    // completely unreachable for windows 1 and 2.
    let plan = FaultPlan::flaky(7).with_hard_down(1, 3);
    let faulty = FaultyModel::new(&model, plan);
    println!(
        "{}: streaming {} frames with a flaky ReID backend (hard down for windows 1-2)",
        video.name, video.n_frames
    );

    let mut chaotic = merger(&model, Some(&faulty))?;
    let mut arrived = 0;
    while arrived < video.n_frames {
        arrived = (arrived + 300).min(video.n_frames);
        for d in chaotic.advance(&video.tracks, arrived)? {
            println!(
                "  [frame {arrived:>5}] window {} ({:?}): {} pairs, {} candidates",
                d.window.index,
                d.mode,
                d.n_pairs,
                d.candidates.len()
            );
        }
    }
    for d in chaotic.finish(&video.tracks, video.n_frames)? {
        println!(
            "  [flush     ] window {} ({:?}): {} pairs, {} candidates",
            d.window.index,
            d.mode,
            d.n_pairs,
            d.candidates.len()
        );
    }
    let report = chaotic.robustness();
    println!(
        "\nrobustness: {} retries absorbed, {} backend faults, breaker tripped {}x,\n\
         {} windows degraded, {} re-verified after recovery",
        report.retries,
        report.backend_faults,
        report.breaker_trips,
        report.degraded_windows,
        report.reverified_windows
    );

    // Every degraded window was re-scored with real ReID once the backend
    // came back, so the committed result matches a run with no faults.
    let mut clean = merger(&model, None)?;
    clean.advance(&video.tracks, video.n_frames)?;
    clean.finish(&video.tracks, video.n_frames)?;
    println!(
        "final mapping equals the fault-free run: {}",
        chaotic.mapping() == clean.mapping()
    );

    // Kill the ingester mid-outage and resume from its checkpoint.
    let bytes = {
        let mut first = merger(&model, Some(&faulty))?;
        first.advance(&video.tracks, 3_000)?;
        first.checkpoint()
    };
    println!(
        "\nkilled at frame 3000 mid-outage; checkpoint is {} bytes",
        bytes.len()
    );
    let mut resumed = StreamingMerger::resume(
        &model,
        CostModel::calibrated(),
        Device::Gpu { batch: 100 },
        TMerge::new(TMergeConfig::default()),
        &bytes,
    )?
    .with_backend(&faulty);
    resumed.advance(&video.tracks, video.n_frames)?;
    resumed.finish(&video.tracks, video.n_frames)?;
    let identical = resumed.decisions() == chaotic.decisions()
        && resumed.mapping() == chaotic.mapping()
        && resumed.elapsed_ms().to_bits() == chaotic.elapsed_ms().to_bits();
    println!("resumed run is byte-identical to the uninterrupted one: {identical}");
    assert!(
        identical,
        "checkpoint/resume must reproduce the run exactly"
    );

    let degraded = chaotic
        .decisions()
        .iter()
        .filter(|d| d.mode == DecisionMode::Degraded)
        .count();
    println!(
        "\naccepted {} merges in {:.1}s simulated ({} of {} windows served degraded)",
        chaotic.accepted().len(),
        chaotic.elapsed_ms() / 1000.0,
        degraded,
        chaotic.decisions().len()
    );
    Ok(())
}
