//! Online ingestion of a live feed: the [`StreamingMerger`] processes each
//! half-overlapping window as soon as it has elapsed, emitting merge
//! decisions incrementally — the §II "video stream" deployment.
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use tmerge::core::{StreamConfig, StreamingMerger, TMerge, TMergeConfig};
use tmerge::prelude::*;

fn main() -> tm_types::Result<()> {
    // A two-minute PathTrack-like feed, tracked by Tracktor.
    let spec = &pathtrack().videos[1];
    let video = prepare(spec, TrackerKind::Tracktor);
    println!(
        "{}: streaming {} frames ({} tracks total)",
        video.name,
        video.n_frames,
        video.tracks.len()
    );

    let model = video.model();
    let selector = TMerge::new(TMergeConfig::default());
    let mut merger = StreamingMerger::new(
        &model,
        CostModel::calibrated(),
        Device::Gpu { batch: 100 },
        selector,
        StreamConfig {
            window_len: 2000,
            k: 0.05,
            gate: tm_reid::GatePolicy::Off,
            voi: tmerge::core::VoiMode::Off,
        },
    )
    .expect("valid stream configuration");

    // Simulate the feed arriving in 10-second (300-frame) chunks. In a
    // real deployment `video.tracks` would grow as the tracker runs; here
    // the tracker already ran, and the merger only looks at windows that
    // have fully elapsed.
    let mut arrived = 0;
    while arrived < video.n_frames {
        arrived = (arrived + 300).min(video.n_frames);
        for d in merger.advance(&video.tracks, arrived)? {
            println!(
                "  [frame {arrived:>5}] window {} ({}..{}): {} pairs examined, {} merges: {:?}",
                d.window.index,
                d.window.start,
                d.window.end,
                d.n_pairs,
                d.candidates.len(),
                d.candidates
            );
        }
    }
    for d in merger.finish(&video.tracks, video.n_frames)? {
        println!(
            "  [flush     ] window {}: {} pairs, {} merges",
            d.window.index,
            d.n_pairs,
            d.candidates.len()
        );
    }

    let mapping = merger.mapping();
    let merged = video.tracks.relabeled(&mapping);
    println!(
        "\naccepted {} merges in {:.1}s simulated; {} tracks -> {}",
        merger.accepted().len(),
        merger.elapsed_ms() / 1000.0,
        video.tracks.len(),
        merged.len()
    );
    let truth = {
        let all: Vec<&Track> = video.tracks.iter().collect();
        video.correspondence.all_polyonymous(&all)
    };
    println!(
        "recall against the {} true polyonymous pairs: {:.3}",
        truth.len(),
        recall(merger.accepted().iter(), &truth)
    );
    Ok(())
}
