//! No-op derive stubs: real impls come from serde's blanket impls.
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
