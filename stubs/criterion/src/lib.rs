//! Mini working criterion: times closures with `Instant` and prints
//! median-of-samples results. API-compatible with the subset this
//! workspace's benches use; no statistics, plots, or CLI filtering beyond
//! substring matching on argv.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self {
            filter,
            sample_size: 20,
        }
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: aim for ~2ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.samples.capacity() {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.samples.is_empty() {
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{:<44} time: [{} {} {}]",
        name,
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} s", s)
    }
}

impl Criterion {
    fn run_one(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        if let Some(flt) = &self.filter {
            if !name.contains(flt.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        f(&mut b);
        report(name, &b);
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {
        self.c.sample_size = 20;
    }
}

pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self {
            repr: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self {
            repr: format!("{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            repr: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { repr: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
