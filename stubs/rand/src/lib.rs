//! Functional rand stub with the API surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng`, and
//! `RngExt::{random_range, random_bool}`. The generator is SplitMix64 —
//! statistically fine for tests, NOT the real StdRng stream.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `random_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "empty range in random_range");
                let r = rng.next_u64() as i128 % span;
                (lo_w + r) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (u as f32) * (hi - lo)
    }
}

/// Ranges acceptable to `random_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

pub trait RngExt: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
    fn random_bool(&mut self, p: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}
impl<R: RngCore + ?Sized> RngExt for R {}

/// Helper for `random::<T>()`.
pub trait Standard {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 stand-in for the real StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self {
                state: state.wrapping_mul(0x2545f4914f6cdd1d) ^ 0x9e3779b97f4a7c15,
            }
        }
    }
}
