//! Typecheck-only serde stub: blanket-implemented marker traits.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}
pub mod ser {
    pub use super::Serialize;
}
