//! Typecheck-only serde_json stub. Serialization returns placeholder
//! strings; deserialization always errors. Only the API shape matters.
use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

pub type Map<K, V> = BTreeMap<K, V>;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|f| f as u64)
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(Error)
}
