//! Mini working proptest: enough of the API to compile AND execute this
//! workspace's property tests (random generation, no shrinking).

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};

/// Used by the `proptest!` expansion so user crates don't need a direct
/// `rand` dependency.
#[doc(hidden)]
pub fn __new_rng(seed: u64) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub trait Strategy {
    type Value: std::fmt::Debug;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates");
    }
}

impl<T: SampleUniform + std::fmt::Debug + 'static> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform + std::fmt::Debug + 'static> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// `any::<T>()` support.
pub trait Arbitrary: std::fmt::Debug + Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_range(0u64..u64::MAX)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_range(-1e9f64..1e9)
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::*;

    pub trait IntoLenRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: IntoLenRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }

    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    // Entry without an inner config attribute: insert the default.
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($args)*) $body)+
        }
    };
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::__new_rng(0x70726f70u64 ^ stringify!($name).len() as u64);
                for __case in 0..__cfg.cases {
                    $(let $pat = ($strat).generate(&mut __rng);)+
                    $body
                }
            }
        )+
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}
