//! Mini working proptest: enough of the API to compile AND execute this
//! workspace's property tests — random generation plus greedy shrinking.
//!
//! Shrinking model: [`Strategy::shrink`] proposes simpler candidates for a
//! failing value, most aggressive first. The `proptest!` runner re-executes
//! the body on each candidate (panics silenced) and greedily walks to the
//! first candidate that still fails, repeating until no candidate fails or
//! a step budget runs out. The minimal counterexample is then reported in
//! the final panic message.

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};

/// Used by the `proptest!` expansion so user crates don't need a direct
/// `rand` dependency.
#[doc(hidden)]
pub fn __new_rng(seed: u64) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Cap on greedy shrink steps so a pathological strategy cannot loop the
/// runner forever (e.g. an f64 halving chain that never reaches its bound).
const MAX_SHRINK_STEPS: usize = 1024;

/// Drives the greedy shrink loop for `proptest!`. Returns `None` when the
/// value passes, otherwise the most-shrunk value that still fails.
///
/// The first (failing) execution runs with the ambient panic hook so the
/// original assertion message reaches the user; candidate probes during the
/// walk are silenced, then the hook is restored.
#[doc(hidden)]
pub fn __shrink_failure<S: Strategy, F: Fn(&S::Value)>(
    strat: &S,
    run: &F,
    value: &S::Value,
) -> Option<S::Value>
where
    S::Value: Clone,
{
    fn fails<V, F: Fn(&V)>(run: &F, v: &V) -> bool {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(v))).is_err()
    }
    if !fails(run, value) {
        return None;
    }
    let old_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut best = value.clone();
    let mut steps = 0;
    'walk: while steps < MAX_SHRINK_STEPS {
        for cand in strat.shrink(&best) {
            if fails(run, &cand) {
                best = cand;
                steps += 1;
                continue 'walk;
            }
        }
        break;
    }
    std::panic::set_hook(old_hook);
    Some(best)
}

/// Ties a body closure's parameter type to the strategy's `Value` at the
/// definition site, so the closure body type-checks (closure signatures are
/// only inferred from an expected type at the point of definition).
#[doc(hidden)]
pub fn __bind_runner<S: Strategy, F: Fn(&S::Value)>(_strat: &S, run: F) -> F {
    run
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub trait Strategy {
    type Value: std::fmt::Debug;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Simpler candidates for a failing `value`, most aggressive first.
    /// Every candidate must stay inside this strategy's domain. The default
    /// (no candidates) is always sound — it just reports the raw failure.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

// prop_map cannot invert `f`, so mapped strategies keep the empty shrink.
impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates");
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }
}

/// Values that can take large steps toward a range's lower bound.
/// Backs the shrinkers of the `Range`/`RangeInclusive` strategies.
pub trait ShrinkToward: Sized {
    /// Candidates strictly simpler than `value`, all within `[lo, value)`,
    /// most aggressive first. Empty when `value` is already minimal.
    fn shrink_toward(lo: &Self, value: &Self) -> Vec<Self>;
}

macro_rules! impl_shrink_int {
    ($($t:ty),+) => {$(
        impl ShrinkToward for $t {
            fn shrink_toward(lo: &Self, value: &Self) -> Vec<Self> {
                let (lo, v) = (*lo, *value);
                if v <= lo {
                    return Vec::new();
                }
                // Jump to the bound, halve the distance, then step by one:
                // binary-search descent with a linear tail for exactness.
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2;
                if mid != lo && mid != v {
                    out.push(mid);
                }
                let dec = v - 1;
                if dec != lo && dec != mid {
                    out.push(dec);
                }
                out
            }
        }
    )+};
}
impl_shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_shrink_float {
    ($($t:ty),+) => {$(
        impl ShrinkToward for $t {
            fn shrink_toward(lo: &Self, value: &Self) -> Vec<Self> {
                let (lo, v) = (*lo, *value);
                if !(v > lo) {
                    return Vec::new();
                }
                // Bound first, then halve toward it. No unit step exists for
                // floats; MAX_SHRINK_STEPS bounds the halving chain instead.
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2.0;
                if mid > lo && mid < v {
                    out.push(mid);
                }
                out
            }
        }
    )+};
}
impl_shrink_float!(f32, f64);

impl<T: SampleUniform + ShrinkToward + std::fmt::Debug + 'static> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(&self.start, value)
    }
}

impl<T: SampleUniform + ShrinkToward + std::fmt::Debug + 'static> Strategy
    for std::ops::RangeInclusive<T>
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(self.start(), value)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            // One component moves per candidate; the rest stay fixed, so a
            // candidate that still fails isolates blame to that component.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// `any::<T>()` support.
pub trait Arbitrary: std::fmt::Debug + Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_range(0u64..u64::MAX)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_range(-1e9f64..1e9)
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::*;

    pub trait IntoLenRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
        /// Smallest admissible length; shrinkers must not go below it.
        fn min_len(&self) -> usize;
    }

    impl IntoLenRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
        fn min_len(&self) -> usize {
            *self
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
        fn min_len(&self) -> usize {
            self.start
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
        fn min_len(&self) -> usize {
            *self.start()
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let n = value.len();
            let floor = self.len.min_len();
            let mut out = Vec::new();
            // Drop contiguous chunks — big bites first, then single
            // elements — without ever dipping below the length floor.
            let mut chunk = n / 2;
            while chunk > 0 {
                for start in (0..n).step_by(chunk.max(1)) {
                    let end = (start + chunk).min(n);
                    if n - (end - start) < floor {
                        continue;
                    }
                    let mut cand = Vec::with_capacity(n - (end - start));
                    cand.extend_from_slice(&value[..start]);
                    cand.extend_from_slice(&value[end..]);
                    out.push(cand);
                }
                chunk /= 2;
            }
            // Then shrink elements in place, one position per candidate.
            for (i, v) in value.iter().enumerate() {
                for cand in self.elem.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    pub fn vec<S: Strategy, L: IntoLenRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + PartialEq + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
        // Earlier options are simpler, mirroring upstream proptest.
        fn shrink(&self, value: &T) -> Vec<T> {
            match self.options.iter().position(|o| o == value) {
                Some(i) => self.options[..i].to_vec(),
                None => Vec::new(),
            }
        }
    }

    pub fn select<T: Clone + PartialEq + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

// The body runs inside a re-runnable closure (for shrinking), so an
// assumption failure returns from this case rather than `continue`-ing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    // Entry without an inner config attribute: insert the default.
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($args)*) $body)+
        }
    };
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::__new_rng(0x70726f70u64 ^ stringify!($name).len() as u64);
                let __strat = ($($strat,)+);
                let __run = $crate::__bind_runner(&__strat, |__value| {
                    let ($($pat,)+) = ::std::clone::Clone::clone(__value);
                    $body
                });
                for __case in 0..__cfg.cases {
                    let __value = __strat.generate(&mut __rng);
                    if let Some(__min) =
                        $crate::__shrink_failure(&__strat, &__run, &__value)
                    {
                        ::std::panic!(
                            "proptest: {} failed on case {} of {}; \
                             minimal counterexample: {:?}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __min,
                        );
                    }
                }
            }
        )+
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, ShrinkToward, Strategy,
    };
}
