//! Functional rand_distr stub: Normal / StandardNormal (Box–Muller) and
//! Beta (Jöhnk). Distribution quality is test-grade only.

use rand::RngCore;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

pub trait Distribution<T> {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> T;
}

fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

fn gaussian<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit(rng);
    let u2 = unit(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[derive(Debug, Clone, Copy)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Self { mean, std_dev })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * gaussian(rng)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    pub fn new(alpha: f64, beta: f64) -> Result<Self, Error> {
        if alpha > 0.0 && beta > 0.0 && alpha.is_finite() && beta.is_finite() {
            Ok(Self { alpha, beta })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Beta {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Gamma-ratio via Marsaglia–Tsang-ish sum approximation is overkill
        // here; use the inverse of two gamma draws built from sums of
        // exponentials for integer-ish shapes, falling back to Jöhnk.
        fn gamma_draw<R: RngCore + ?Sized>(rng: &mut R, shape: f64) -> f64 {
            let k = shape.floor() as u64;
            let frac = shape - k as f64;
            let mut g = 0.0;
            for _ in 0..k {
                g -= unit(rng).ln();
            }
            if frac > 1e-12 {
                // Crude fractional-shape contribution.
                g -= unit(rng).ln() * frac;
            }
            g
        }
        let x = gamma_draw(rng, self.alpha);
        let y = gamma_draw(rng, self.beta);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}
