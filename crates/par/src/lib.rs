//! # tm-par
//!
//! The workspace's deterministic fork-join engine. Every fan-out in the
//! repro — per-video runs, sweep points, whole experiments, pipeline
//! windows, dense-kernel pair scoring — goes through [`par_map`] (or its
//! indexed/`for_each` variants), which guarantees:
//!
//! - **Determinism.** Results are collected into index-ordered buffers, so
//!   the output of `par_map(items, f)` is exactly `items.iter().map(f)`
//!   regardless of thread count or scheduling. Callers that fold floats do
//!   so over the returned, ordered `Vec`, which makes every aggregate
//!   bit-identical to the serial run (`TMERGE_THREADS=1`).
//! - **Bounded threads under nesting.** A global permit pool caps the
//!   number of live worker threads at [`max_threads`]` - 1` (the calling
//!   threads themselves do work too). Nested `par_map` calls that find the
//!   pool empty simply run inline — no deadlock, no thread explosion when
//!   experiments × sweeps × videos × kernels all fan out at once.
//! - **`TMERGE_THREADS` override.** `TMERGE_THREADS=1` forces fully serial
//!   execution; `TMERGE_THREADS=N` caps the fan-out width; unset or `0`
//!   uses all hardware threads.
//!
//! This crate is std-only by design: the build environment is offline, so
//! pulling `rayon` from a registry is not an option, and the workload —
//! coarse shared-nothing tasks — needs only scoped threads plus an atomic
//! work-stealing counter, not rayon's full scheduler.

use std::cell::Cell;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable controlling the engine's thread cap.
pub const THREADS_ENV: &str = "TMERGE_THREADS";

fn hardware_threads() -> usize {
    // The hardware count never changes within a process; caching it keeps
    // [`max_threads`] heap-allocation-free when `TMERGE_THREADS` is unset
    // (`available_parallelism` may read cgroup files on Linux).
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    static SERIAL_SCOPE: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with every fan-out on *this* thread forced serial
/// ([`max_threads`] reports 1 inside), without touching the environment.
///
/// Results are unchanged — the engine is deterministic at any thread
/// count — so the scope only pins the execution shape. Two users: the
/// allocation audit (the serial path writes into caller-owned buffers and
/// must not even read an environment variable, which allocates) and
/// benchmarks that want single-thread numbers without mutating global
/// process state.
pub fn serial_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            SERIAL_SCOPE.with(|c| c.set(self.0));
        }
    }
    let prev = SERIAL_SCOPE.with(|c| c.replace(true));
    let _reset = Reset(prev);
    f()
}

/// The engine's current thread cap: `TMERGE_THREADS` when set to a positive
/// integer, otherwise all hardware threads. Re-read on every fan-out so
/// tests (and long-lived processes) can change the cap between calls.
/// Inside a [`serial_scope`] this is 1 unconditionally.
pub fn max_threads() -> usize {
    if SERIAL_SCOPE.with(|c| c.get()) {
        return 1;
    }
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => hardware_threads(),
        },
        Err(_) => hardware_threads(),
    }
}

/// Live extra workers across the whole process (calling threads excluded).
fn active_extra() -> &'static AtomicUsize {
    static POOL: OnceLock<AtomicUsize> = OnceLock::new();
    POOL.get_or_init(|| AtomicUsize::new(0))
}

/// Tries to reserve up to `want` extra workers under the cap; returns how
/// many were granted (possibly 0, in which case the caller runs inline).
fn try_acquire(want: usize, cap: usize) -> usize {
    let pool = active_extra();
    let budget = cap.saturating_sub(1); // one slot is the calling thread
    let mut cur = pool.load(Ordering::Relaxed);
    loop {
        let take = want.min(budget.saturating_sub(cur));
        if take == 0 {
            return 0;
        }
        match pool.compare_exchange_weak(cur, cur + take, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return take,
            Err(seen) => cur = seen,
        }
    }
}

/// Releases permits on drop so a panicking task cannot leak the pool.
struct Permits(usize);

impl Drop for Permits {
    fn drop(&mut self) {
        if self.0 > 0 {
            active_extra().fetch_sub(self.0, Ordering::Release);
        }
    }
}

/// Parallel, order-preserving map over a slice.
///
/// Equivalent to `items.iter().map(f).collect()` — same results, same
/// order, any thread count. See the crate docs for the guarantees.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] with the item index passed to the closure.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let serial = || items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    if n <= 1 {
        return serial();
    }
    let permits = Permits(try_acquire(n - 1, max_threads()));
    if permits.0 == 0 {
        return serial();
    }

    // Dynamic scheduling: workers steal the next index off a shared
    // counter, so uneven items (quadratic pairs, long videos) balance.
    // The caller's observability scope is re-installed inside every worker
    // so instrumentation in fanned-out code reaches the same sink it would
    // serially (the Recorder's aggregates are commutative, so this cannot
    // perturb deterministic snapshots).
    let obs = tm_obs::current();
    let next = AtomicUsize::new(0);
    let worker = || {
        tm_obs::scoped(obs.clone(), || {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                local.push((i, f(i, &items[i])));
            }
            local
        })
    };

    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        // The borrow is load-bearing: `worker` is spawned N times and then
        // called on this thread, so it cannot be moved into any one spawn.
        #[allow(clippy::needless_borrows_for_generic_args)]
        let handles: Vec<_> = (0..permits.0).map(|_| scope.spawn(&worker)).collect();
        let own = worker();
        let mut all = vec![own];
        for h in handles {
            match h.join() {
                Ok(bucket) => all.push(bucket),
                Err(payload) => resume_unwind(payload),
            }
        }
        all
    });
    drop(permits);

    // Index-ordered collection: scheduling cannot affect the output.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect()
}

/// Parallel, order-preserving map over a **mutable** slice: `f` gets
/// `(index, &mut item)` with exclusive access to each item, exactly once.
///
/// Equivalent to `items.iter_mut().enumerate().map(...)` — same results,
/// same mutations, any thread count. This is the fan-out the fleet
/// ingester uses to advance per-stream merger shards concurrently.
///
/// Exclusive access rules out [`par_map`]'s shared work-stealing counter,
/// so items are split into contiguous chunks, one per granted worker —
/// static scheduling, which is fine for the intended workload (same-shape
/// shards). The permit pool, obs-scope reinstall and serial fallback match
/// [`par_map`].
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let permits = Permits(try_acquire(n - 1, max_threads()));
    if permits.0 == 0 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let workers = permits.0 + 1; // spawned + the calling thread
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(workers);
    let mut rest = items;
    let mut base = 0usize;
    while !rest.is_empty() {
        let take = chunk_len.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        chunks.push((base, head));
        base += take;
        rest = tail;
    }

    let obs = tm_obs::current();
    let run_chunk = |start: usize, chunk: &mut [T]| -> Vec<(usize, R)> {
        chunk
            .iter_mut()
            .enumerate()
            .map(|(i, t)| (start + i, f(start + i, t)))
            .collect()
    };
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let mut iter = chunks.into_iter();
        let own_chunk = iter.next();
        let handles: Vec<_> = iter
            .map(|(start, chunk)| {
                let obs = obs.clone();
                let run_chunk = &run_chunk;
                scope.spawn(move || tm_obs::scoped(obs, || run_chunk(start, chunk)))
            })
            .collect();
        let own = own_chunk
            .map(|(start, chunk)| run_chunk(start, chunk))
            .unwrap_or_default();
        let mut all = vec![own];
        for h in handles {
            match h.join() {
                Ok(bucket) => all.push(bucket),
                Err(payload) => resume_unwind(payload),
            }
        }
        all
    });
    drop(permits);

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is visited exactly once"))
        .collect()
}

/// [`par_map`] writing into a caller-owned buffer: `out` is cleared and
/// refilled with exactly `items.iter().map(f)`, in order, any thread count.
///
/// The point is the steady-state serial path (`max_threads() == 1`, or a
/// [`serial_scope`]): once `out`'s capacity has grown to the working-set
/// size, a call performs **zero** heap allocations — the contract the
/// scoring hot loop's allocation audit pins. The parallel path reuses the
/// [`par_map`] machinery and its index-ordered collection.
pub fn par_map_into<T, R, F>(items: &[T], out: &mut Vec<R>, f: F)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    out.clear();
    if items.len() <= 1 || max_threads() == 1 {
        out.extend(items.iter().map(&f));
        return;
    }
    out.extend(par_map(items, f));
}

/// Runs `f` over every item in parallel, discarding results. Used where
/// the tasks' only output is a side effect on disjoint state (e.g. each
/// experiment writing its own JSON file).
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let _units: Vec<()> = par_map(items, |t| f(t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn matches_serial_map_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * x + 1);
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn indexed_variant_sees_correct_indices() {
        let items = vec!["a"; 100];
        let out = par_map_indexed(&items, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let rows: Vec<u64> = (0..20).collect();
        let out = par_map(&rows, |&r| {
            let cols: Vec<u64> = (0..20).collect();
            par_map(&cols, |&c| r * 100 + c).iter().sum::<u64>()
        });
        let expect: Vec<u64> = rows
            .iter()
            .map(|&r| (0..20).map(|c| r * 100 + c).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        par_for_each(&items, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn map_mut_matches_serial_and_mutates_in_place() {
        let mut a: Vec<u64> = (0..257).collect();
        let mut b = a.clone();
        let out = par_map_mut(&mut a, |i, x| {
            *x += 10;
            *x * i as u64
        });
        let expect: Vec<u64> = b
            .iter_mut()
            .enumerate()
            .map(|(i, x)| {
                *x += 10;
                *x * i as u64
            })
            .collect();
        assert_eq!(out, expect);
        assert_eq!(a, b, "mutations applied in place");
    }

    #[test]
    fn map_mut_handles_empty_and_singleton() {
        let mut empty: Vec<u8> = Vec::new();
        assert!(par_map_mut(&mut empty, |_, x| *x).is_empty());
        let mut one = vec![7u8];
        assert_eq!(par_map_mut(&mut one, |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn map_mut_obs_scope_propagates_into_workers() {
        use std::sync::Arc;
        let rec = Arc::new(tm_obs::Recorder::new());
        let obs = tm_obs::Obs::new(rec.clone());
        let mut items: Vec<u64> = (0..64).collect();
        tm_obs::scoped(obs, || {
            par_map_mut(&mut items, |_, _| {
                tm_obs::current().counter("par.mut_item", 1)
            });
        });
        assert_eq!(rec.counter_value("par.mut_item"), 64);
    }

    #[test]
    fn pool_is_restored_after_use() {
        let before = active_extra().load(Ordering::Relaxed);
        let items: Vec<u64> = (0..64).collect();
        let _ = par_map(&items, |&x| x + 1);
        assert_eq!(active_extra().load(Ordering::Relaxed), before);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn map_into_matches_map_and_reuses_buffer() {
        let items: Vec<u64> = (0..257).collect();
        let mut out = Vec::new();
        par_map_into(&items, &mut out, |&x| x * 3 + 1);
        assert_eq!(out, par_map(&items, |&x| x * 3 + 1));
        let cap = out.capacity();
        par_map_into(&items, &mut out, |&x| x * 3 + 1);
        assert_eq!(out.len(), items.len());
        assert_eq!(out.capacity(), cap, "refill must reuse the buffer");
    }

    #[test]
    fn serial_scope_forces_one_thread_and_restores() {
        let before = max_threads();
        serial_scope(|| {
            assert_eq!(max_threads(), 1);
            // Nesting keeps the scope active and restores the outer one.
            serial_scope(|| assert_eq!(max_threads(), 1));
            assert_eq!(max_threads(), 1);
            // Fan-outs inside the scope still produce identical results.
            let items: Vec<u64> = (0..64).collect();
            let mut out = Vec::new();
            par_map_into(&items, &mut out, |&x| x + 1);
            assert_eq!(out, (1..=64).collect::<Vec<_>>());
        });
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn obs_scope_propagates_into_workers() {
        use std::sync::Arc;
        let rec = Arc::new(tm_obs::Recorder::new());
        let obs = tm_obs::Obs::new(rec.clone());
        let items: Vec<u64> = (0..64).collect();
        tm_obs::scoped(obs, || {
            par_for_each(&items, |_| tm_obs::current().counter("par.item", 1));
        });
        assert_eq!(rec.counter_value("par.item"), 64);
    }
}
