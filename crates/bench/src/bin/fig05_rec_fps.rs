//! Fig. 5 — REC–FPS curves of BL / PS / LCB / TMerge on three datasets
//! (CPU).

use tm_bench::experiments::{sweep::fig05, ExpConfig};
use tm_bench::report::{f2, f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let all = observed("fig05_rec_fps", || fig05(&cfg));
    header("Fig. 5 — REC-FPS curves (CPU)");
    for curves in &all {
        println!("\n[{} / {}]", curves.dataset, curves.device);
        for (algo, points) in &curves.curves {
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|p| vec![p.param.clone(), f3(p.outcome.rec), f2(p.outcome.fps)])
                .collect();
            println!("{algo}:");
            table(&["param", "REC", "FPS"], &rows);
        }
    }
    save_json("fig05_rec_fps", &all);
}
