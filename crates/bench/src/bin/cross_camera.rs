//! Cross-camera resolution — global vs. per-camera identity at city scale.
//!
//! Builds deterministic multi-camera worlds (`tm_synth::MultiCameraWorld`)
//! in which shared actors dwell in a camera, exit, transit, and re-enter
//! another camera under fresh local track ids. Each world is resolved two
//! ways over identical feeds:
//!
//! * **per-camera** — a [`FleetIngester`] merges fragments within every
//!   camera (one shard per camera, lanes sharing one `BatchScheduler`),
//!   but identities stop at the viewport edge;
//! * **global** — the same fleet plus a [`GlobalMerger`] overlay that
//!   links exits to re-entries across cameras, gated by the learned
//!   [`CameraTopology`] travel-time envelopes and batching its ReID
//!   through a lane of the *same* scheduler.
//!
//! Both resolutions are scored with fleet-wide IDF1
//! (`tm_metrics::global_identity_metrics`) against a ground truth whose
//! trajectories span cameras. The binary asserts the DESIGN.md §16
//! acceptance gates on the 10-camera world — global IDF1 must exceed
//! per-camera IDF1 by ≥ 10 points, and the topology gate must admit
//! ≤ 20% of the unpruned cross-camera exit×entry pair space — and writes:
//!
//! * `BENCH_global.json` at the repo root (schema-validated trajectory
//!   point: 10- and 100-camera cases),
//! * `results/cross_camera.json` (the full comparison),
//! * `results/cross_camera.metrics.txt` (deterministic recorder snapshot).
//!
//! `--quick` shrinks the large world for CI smoke use.

use serde::Serialize;
use tm_bench::experiments::ExpConfig;
use tm_bench::perf::{collect_meta, repo_root, time_iters, BenchCase, BenchReport};
use tm_bench::report::{header, observed, save_json, table};
use tm_core::global::{compose_global_mapping, GlobalConfig, GlobalMerger};
use tm_core::{FleetIngester, StreamConfig, TMerge, TMergeConfig};
use tm_metrics::global_identity_metrics;
use tm_reid::{
    AppearanceConfig, AppearanceModel, BatchConfig, BatchScheduler, BatchingBackend, CostModel,
    Device, InferenceBackend,
};
use tm_synth::{MultiCameraWorld, WorldConfig};
use tm_types::{TrackPair, TrackSet};

/// Acceptance gate: minimum global-over-per-camera IDF1 gain, in points.
const IDF1_MIN_GAIN_PTS: f64 = 10.0;
/// Acceptance gate: maximum admitted fraction of the unpruned cross-camera
/// exit×entry pair space.
const MAX_PRUNING_RATIO: f64 = 0.20;

/// The Thompson budget scales with the city: admissible cross-camera
/// pairs grow roughly linearly in cameras (topology pruning keeps the
/// quadratic blow-up out), and an unsampled arm keeps its prior score
/// and is rejected by the acceptance threshold — so the budget must
/// grow with the pair space for true links to be sampled at all.
fn selector(seed: u64, cameras: u64) -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 10_000 + 400 * cameras,
        seed,
        ..TMergeConfig::default()
    })
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_len: 200,
        k: 0.2,
        gate: tm_reid::GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    }
}

/// Calibrated against the world's travel times (base 60 ± 30 frames): a
/// generous 150-frame prior ceiling admits every true transit while
/// pruning the long-Δt bulk of the pair space even before any envelope
/// is learned.
fn global_config() -> GlobalConfig {
    GlobalConfig {
        prior_max_dt: 150,
        ..GlobalConfig::default()
    }
}

fn world(cameras: u64) -> MultiCameraWorld {
    MultiCameraWorld::new(WorldConfig {
        cameras,
        // Actor density scales with the city: ~6 shared actors per 10
        // cameras, each visiting 5 cameras along the ring.
        actors: (cameras * 3 / 5).max(2),
        hops: 4.min(cameras.saturating_sub(1)),
        ..WorldConfig::default()
    })
}

/// One resolved city: the side-by-side scores for a camera count.
#[derive(Serialize, Clone)]
struct CityRun {
    cameras: u64,
    actors: u64,
    horizon: u64,
    tracks: usize,
    transits: usize,
    idf1_per_camera: f64,
    idf1_global: f64,
    gain_pts: f64,
    pairs_total: u64,
    pairs_admitted: u64,
    pruning_ratio: f64,
    cross_links: usize,
    learned_pairs: usize,
    reid_inferences: u64,
    batch_dispatches: u64,
}

fn run_city(cameras: u64, seed: u64) -> CityRun {
    let w = world(cameras);
    let horizon = w.horizon();
    let feeds = w.all_camera_tracks(horizon);
    let n_cams = feeds.len();
    let model = AppearanceModel::new(AppearanceConfig::default());

    // One scheduler; one lane per camera shard plus one for the global
    // overlay, so cross-camera inferences batch with intra-camera ones.
    let scheduler = BatchScheduler::new(&model, BatchConfig::default());
    let lanes: Vec<BatchingBackend<'_>> = (0..=n_cams).map(|_| scheduler.backend(&model)).collect();
    let backends: Vec<&dyn InferenceBackend> = lanes[..n_cams]
        .iter()
        .map(|l| l as &dyn InferenceBackend)
        .collect();

    let mut fleet = FleetIngester::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        stream_config(),
        |_| selector(seed, cameras),
        &backends,
    )
    .expect("valid fleet");
    let mut global = GlobalMerger::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(seed, cameras),
        global_config(),
    )
    .expect("valid global config")
    .with_backend(&lanes[n_cams]);

    let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, horizon)).collect();
    fleet.finish(&refs).expect("fleet finish");
    global.finish(&refs).expect("global finish");

    let shards: Vec<&[TrackPair]> = (0..n_cams).map(|i| fleet.shard(i).accepted()).collect();
    let per_mapping = compose_global_mapping(&shards, &[]);
    let full_mapping = compose_global_mapping(&shards, global.accepted());

    let gt = w.global_gt(horizon);
    let per = global_identity_metrics(&gt, &feeds, &per_mapping, 0.5);
    let glob = global_identity_metrics(&gt, &feeds, &full_mapping, 0.5);
    let (pairs_total, pairs_admitted) = global.pair_counts();
    let stats = scheduler.stats();

    CityRun {
        cameras,
        actors: w.config().actors,
        horizon,
        tracks: feeds.iter().map(|f| f.len()).sum(),
        transits: w.transits(horizon).len(),
        idf1_per_camera: per.idf1,
        idf1_global: glob.idf1,
        gain_pts: 100.0 * (glob.idf1 - per.idf1),
        pairs_total,
        pairs_admitted,
        pruning_ratio: pairs_admitted as f64 / pairs_total.max(1) as f64,
        cross_links: global.accepted().len(),
        learned_pairs: global.topology().len(),
        reid_inferences: stats.computed,
        batch_dispatches: stats.dispatches,
    }
}

#[derive(Serialize)]
struct CrossCamera {
    small: CityRun,
    large: CityRun,
}

fn run(cfg: &ExpConfig) -> CrossCamera {
    let small = run_city(10, cfg.seed);
    // The 100-camera city is the scaling point; --quick clips it for CI.
    let large = run_city(if cfg.quick { 24 } else { 100 }, cfg.seed);
    let obs = tm_obs::current();
    obs.counter("cross_camera.gain_pts", small.gain_pts.max(0.0) as u64);
    obs.counter(
        "cross_camera.pruning_pct",
        (100.0 * small.pruning_ratio) as u64,
    );
    CrossCamera { small, large }
}

fn main() {
    let cfg = ExpConfig::from_args();
    let r = observed("cross_camera", || run(&cfg));

    header(&format!(
        "Cross-camera resolution — {} and {} cameras, shared actors on a ring",
        r.small.cameras, r.large.cameras
    ));
    let row = |c: &CityRun| {
        vec![
            c.cameras.to_string(),
            c.actors.to_string(),
            c.tracks.to_string(),
            c.transits.to_string(),
            format!("{:.1}", 100.0 * c.idf1_per_camera),
            format!("{:.1}", 100.0 * c.idf1_global),
            format!("{:+.1}", c.gain_pts),
            format!("{}/{}", c.pairs_admitted, c.pairs_total),
            format!("{:.1}%", 100.0 * c.pruning_ratio),
            c.cross_links.to_string(),
            c.reid_inferences.to_string(),
        ]
    };
    table(
        &[
            "cams",
            "actors",
            "tracks",
            "transits",
            "IDF1/cam",
            "IDF1 glob",
            "gain",
            "admitted",
            "ratio",
            "links",
            "reid",
        ],
        &[row(&r.small), row(&r.large)],
    );
    println!(
        "learned travel profiles: {} / {}; batch dispatches: {} / {}",
        r.small.learned_pairs,
        r.large.learned_pairs,
        r.small.batch_dispatches,
        r.large.batch_dispatches
    );
    save_json("cross_camera", &r);

    // The §16 acceptance gates, on the 10-camera world.
    assert!(
        r.small.gain_pts >= IDF1_MIN_GAIN_PTS,
        "global IDF1 must exceed per-camera IDF1 by ≥ {IDF1_MIN_GAIN_PTS} pts, got {:+.2}",
        r.small.gain_pts
    );
    assert!(
        r.small.pruning_ratio <= MAX_PRUNING_RATIO,
        "topology gate must admit ≤ {:.0}% of the pair space, admitted {:.1}%",
        100.0 * MAX_PRUNING_RATIO,
        100.0 * r.small.pruning_ratio
    );
    // The overlay must never lose identity quality at any scale.
    assert!(
        r.large.idf1_global >= r.large.idf1_per_camera,
        "global resolution regressed IDF1 at {} cameras",
        r.large.cameras
    );

    // The trajectory point: wall-time each full city resolution. The
    // 100-camera city runs minutes per resolution, so it gets a single
    // timed iteration; the 10-camera case keeps the usual three.
    let cases = [
        (
            "city_10cams",
            10u64,
            if cfg.quick { 1 } else { 3 },
            &r.small,
        ),
        (
            "city_100cams",
            if cfg.quick { 24 } else { 100 },
            1,
            &r.large,
        ),
    ]
    .map(|(name, cams, iters, city)| {
        let t = time_iters(iters, || {
            run_city(cams, cfg.seed);
        });
        BenchCase::from_timing(
            name,
            t,
            city.horizon * city.cameras,
            city.reid_inferences,
            0,
        )
    });
    let report = BenchReport {
        meta: collect_meta(cfg.quick),
        cases: cases.to_vec(),
    };
    report
        .validate()
        .unwrap_or_else(|e| panic!("BENCH_global.json: invalid report: {e}"));
    let text = report.encode();
    let back = BenchReport::decode(&text)
        .unwrap_or_else(|e| panic!("BENCH_global.json: self round-trip failed: {e}"));
    assert_eq!(back, report, "BENCH_global.json: decode(encode) drifted");
    let path = repo_root().join("BENCH_global.json");
    std::fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}
