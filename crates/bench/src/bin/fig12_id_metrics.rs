//! Fig. 12 — IDF1/IDP/IDR of Tracktor on MOT-17, with and without TMerge.

use tm_bench::experiments::{quality::fig12, ExpConfig};
use tm_bench::report::{f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let r = observed("fig12_id_metrics", || fig12(&cfg));
    header("Fig. 12 — identity metrics with/without TMerge (Tracktor, MOT-17; higher is better)");
    let rows = vec![
        vec![
            "without TMerge".to_string(),
            f3(r.without.idf1),
            f3(r.without.idp),
            f3(r.without.idr),
            r.id_switches.0.to_string(),
            f3(r.mota.0),
            f3(r.hota.0),
            f3(r.ass_a.0),
        ],
        vec![
            "with TMerge".to_string(),
            f3(r.with.idf1),
            f3(r.with.idp),
            f3(r.with.idr),
            r.id_switches.1.to_string(),
            f3(r.mota.1),
            f3(r.hota.1),
            f3(r.ass_a.1),
        ],
    ];
    table(
        &["", "IDF1", "IDP", "IDR", "IDSW", "MOTA", "HOTA", "AssA"],
        &rows,
    );
    save_json("fig12_id_metrics", &r);
}
