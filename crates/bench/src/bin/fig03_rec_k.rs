//! Fig. 3 — REC–K curves of the baseline on the three datasets.

use tm_bench::experiments::{fig03::fig03, ExpConfig};
use tm_bench::report::{f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let curves = observed("fig03_rec_k", || fig03(&cfg));
    header("Fig. 3 — REC-K curves (BL, L=2000)");
    for c in &curves {
        println!("\n[{}]", c.dataset);
        let rows: Vec<Vec<String>> = c
            .points
            .iter()
            .map(|(k, rec)| vec![format!("{k:.3}"), f3(*rec)])
            .collect();
        table(&["K", "REC"], &rows);
    }
    save_json("fig03_rec_k", &curves);
}
