//! Fig. 6 — REC–FPS curves of the batched (`-B`) algorithms,
//! B ∈ {10, 100}, on three datasets.

use tm_bench::experiments::{sweep::fig06, ExpConfig};
use tm_bench::report::{f2, f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let all = observed("fig06_rec_fps_batched", || fig06(&cfg));
    header("Fig. 6 — REC-FPS curves of batched algorithms");
    for curves in &all {
        println!("\n[{} / {}]", curves.dataset, curves.device);
        for (algo, points) in &curves.curves {
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|p| vec![p.param.clone(), f3(p.outcome.rec), f2(p.outcome.fps)])
                .collect();
            println!("{algo}-B:");
            table(&["param", "REC", "FPS"], &rows);
        }
    }
    save_json("fig06_rec_fps_batched", &all);
}
