//! Serve soak — the multi-tenant daemon under churn, camera outages,
//! bursty admission, and a retention horizon, with per-tenant batched
//! ReID lanes.
//!
//! A `TenantChurn` schedule joins/leaves/bursts a small tenant universe
//! while each (tenant, stream) camera follows a seeded outage plan. Every
//! tenant gets its own `BatchScheduler::for_tenant` so ReID misses batch
//! across that tenant's streams (and only that tenant's — no cross-tenant
//! feature sharing). The measurement: decided windows per second plus the
//! admission/shed/retention/batching counter surface, with the daemon's
//! hard robustness claims re-asserted on the way out — typed rejections
//! only, queue bounds held, the always-on tenant recovered, and resident
//! state compacted down to the horizon.

use serde::Serialize;
use std::time::Instant;
use tm_bench::report::{header, observed, save_json, table};
use tm_chaos::{FaultyModel, TenantChurn, TenantChurnConfig};
use tm_core::{StreamConfig, TMerge, TMergeConfig};
use tm_reid::{
    AppearanceConfig, AppearanceModel, BatchConfig, BatchScheduler, BatchingBackend, CostModel,
    Device, InferenceBackend, SplitBackend,
};
use tm_serve::{Admission, AdmissionConfig, RejectReason, ServeConfig, TenantSpec, TmServe};
use tm_synth::{TenantWorkload, TenantWorkloadConfig};

const TENANTS: u64 = 4;
const STREAMS: usize = 2;
const WINDOW: u64 = 200; // stride 100 → 2 new windows per cycle
const HORIZON: u64 = 6;
const SETTLE_CYCLES: u64 = 8;

fn churn_cycles() -> u64 {
    std::env::var("TMERGE_SOAK_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
        .max(8)
}

fn selector() -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 1_500,
        seed: 4,
        ..TMergeConfig::default()
    })
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        stream: StreamConfig {
            window_len: WINDOW,
            k: 0.1,
            gate: tm_reid::GatePolicy::Off,
            voi: tm_core::VoiMode::Off,
        },
        slo_window_ms: f64::INFINITY,
        shed_cooldown: 2,
        retention_horizon_windows: Some(HORIZON),
    }
}

#[derive(Serialize)]
struct ServeSoak {
    cycles: u64,
    tenants: u64,
    streams: usize,
    windows_decided: u64,
    windows_per_sec: f64,
    admitted: u64,
    rejected_queue_full: u64,
    rejected_rate_limited: u64,
    survivor_shed_entries: u64,
    survivor_shed_exits: u64,
    compacted_windows: u64,
    peak_queue: usize,
    peak_stash: usize,
    final_decision_entries: usize,
    batch_requests: u64,
    batch_computed: u64,
    batch_saved: u64,
    batch_saving_pct: f64,
    wall_ms: f64,
}

fn run() -> ServeSoak {
    let churn_cycles = churn_cycles();
    let total_cycles = churn_cycles + SETTLE_CYCLES;
    // Confine outages so every camera recovers during the settle phase.
    let outage_max_window = (2 * churn_cycles).saturating_sub(8).max(4);

    let model = AppearanceModel::new(AppearanceConfig::default());
    let w = TenantWorkload::new(TenantWorkloadConfig::default());
    let churn = TenantChurn::new(TenantChurnConfig {
        seed: 5,
        tenants: TENANTS,
        always_on: 1,
        epoch_cycles: 3,
        burst_rate: 0.3,
        burst_multiplier: 4,
        outage_rate: 0.5,
        outage_windows: 2,
        ..TenantChurnConfig::default()
    });

    // Per-tenant batching: one scheduler per tenant (sized for its stream
    // count), one lane per stream wrapping that camera's faulty backend.
    let faulty: Vec<Vec<FaultyModel<'_>>> = (0..TENANTS)
        .map(|t| {
            (0..STREAMS as u64)
                .map(|s| FaultyModel::new(&model, churn.fault_plan(t, s, outage_max_window)))
                .collect()
        })
        .collect();
    let schedulers: Vec<BatchScheduler<'_>> = (0..TENANTS)
        .map(|_| BatchScheduler::for_tenant(&model, BatchConfig::default(), STREAMS))
        .collect();
    let lanes: Vec<Vec<BatchingBackend<'_>>> = (0..TENANTS as usize)
        .map(|t| {
            (0..STREAMS)
                .map(|s| schedulers[t].backend(&faulty[t][s] as &dyn SplitBackend))
                .collect()
        })
        .collect();

    let admission = AdmissionConfig {
        max_queue: 2 * STREAMS, // bursts overflow this by design
        bytes_per_window: u64::MAX / 4,
        quota_window_ms: 1_000.0,
        rate_capacity: 1_000.0,
        rate_per_ms: 100.0,
        retry_hint_ms: 10,
    };

    let mut serve = TmServe::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        serve_config(),
        |_, _| selector(),
    );

    let mut admitted = 0u64;
    let mut rejected_queue_full = 0u64;
    let mut rejected_rate_limited = 0u64;
    let mut peak_queue = 0usize;
    let mut peak_stash = 0usize;

    let start = Instant::now();
    for c in 0..total_cycles {
        let churning = c < churn_cycles;
        for t in 0..TENANTS {
            if churning && churn.leaves(t, c) && serve.tenant_ids().contains(&t) {
                serve.deregister(t).expect("deregister");
            }
            let active = if churning { churn.active(t, c) } else { true };
            if active && !serve.tenant_ids().contains(&t) {
                let refs: Vec<&dyn InferenceBackend> = lanes[t as usize]
                    .iter()
                    .map(|l| l as &dyn InferenceBackend)
                    .collect();
                serve
                    .register(
                        TenantSpec {
                            id: t,
                            streams: STREAMS,
                            admission,
                        },
                        &refs,
                    )
                    .expect("register");
            }
        }
        let frames = (c + 1) * WINDOW;
        for t in serve.tenant_ids() {
            if churning && !churn.active(t, c) {
                continue;
            }
            let burst = if churning {
                churn.burst_multiplier(t, c)
            } else {
                1
            };
            for rep in 0..burst {
                for s in 0..STREAMS {
                    let a = serve.submit(
                        c as f64 * 10.0 + rep as f64,
                        t,
                        s,
                        w.tracks(t, s as u64, frames),
                        frames,
                    );
                    match a {
                        Admission::Admitted => admitted += 1,
                        Admission::Rejected(r) => match r.reason {
                            RejectReason::QueueFull => rejected_queue_full += 1,
                            RejectReason::RateLimited => rejected_rate_limited += 1,
                            other => panic!("untyped shed path: {other:?}"),
                        },
                    }
                }
            }
            let fp = serve.footprint(t).expect("footprint");
            assert!(
                fp.queue_len <= admission.max_queue,
                "tenant {t} queue {} over bound",
                fp.queue_len
            );
            peak_queue = peak_queue.max(fp.queue_len);
        }
        serve.run_once(c as f64 * 10.0 + 9.0).expect("run_once");
        for t in serve.tenant_ids() {
            peak_stash = peak_stash.max(serve.footprint(t).expect("footprint").stash_windows);
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;

    // The always-on tenant must have shed during its outages and fully
    // recovered once they cleared.
    let stats = serve.stats(0).expect("survivor stats");
    assert!(
        stats.shed_entries >= 1,
        "no outage ever shed load: {stats:?}"
    );
    assert_eq!(serve.is_shed(0), Some(false), "survivor still shedding");
    let survivor = serve.footprint(0).expect("survivor footprint");
    assert_eq!(survivor.stash_windows, 0, "stash not re-verified");
    assert!(
        survivor.decision_entries as u64 <= HORIZON + 8,
        "retention failed to bound the decision log: {survivor:?}"
    );

    let windows_decided: u64 = serve
        .tenant_ids()
        .iter()
        .filter_map(|&t| serve.stats(t))
        .map(|s| s.windows)
        .sum();
    let compacted_windows = serve
        .tenant_ids()
        .iter()
        .filter_map(|&t| serve.retention(t))
        .map(|r| r.compacted_windows)
        .sum();
    let batch_requests: u64 = schedulers.iter().map(|s| s.stats().requests).sum();
    let batch_computed: u64 = schedulers.iter().map(|s| s.stats().computed).sum();
    let batch_saved = batch_requests - batch_computed;
    let batch_saving_pct = 100.0 * batch_saved as f64 / batch_requests.max(1) as f64;

    let obs = tm_obs::current();
    obs.counter("serve.soak.windows", windows_decided);
    obs.counter("serve.soak.batch.saved", batch_saved);

    ServeSoak {
        cycles: total_cycles,
        tenants: TENANTS,
        streams: STREAMS,
        windows_decided,
        windows_per_sec: windows_decided as f64 / (wall_ms / 1_000.0).max(1e-9),
        admitted,
        rejected_queue_full,
        rejected_rate_limited,
        survivor_shed_entries: stats.shed_entries,
        survivor_shed_exits: stats.shed_exits,
        compacted_windows,
        peak_queue,
        peak_stash,
        final_decision_entries: survivor.decision_entries,
        batch_requests,
        batch_computed,
        batch_saved,
        batch_saving_pct,
        wall_ms,
    }
}

fn main() {
    let r = observed("serve_soak", run);
    header(&format!(
        "Serve soak — {} tenants × {} streams, {} cycles of churn + outages",
        r.tenants, r.streams, r.cycles
    ));
    table(
        &["metric", "value"],
        &[
            vec!["windows decided".into(), r.windows_decided.to_string()],
            vec!["windows / sec".into(), format!("{:.0}", r.windows_per_sec)],
            vec!["admitted".into(), r.admitted.to_string()],
            vec![
                "rejected (queue full)".into(),
                r.rejected_queue_full.to_string(),
            ],
            vec![
                "rejected (rate limited)".into(),
                r.rejected_rate_limited.to_string(),
            ],
            vec![
                "survivor shed entries/exits".into(),
                format!("{}/{}", r.survivor_shed_entries, r.survivor_shed_exits),
            ],
            vec!["compacted windows".into(), r.compacted_windows.to_string()],
            vec!["peak queue".into(), r.peak_queue.to_string()],
            vec!["peak stash".into(), r.peak_stash.to_string()],
            vec![
                "final decision entries".into(),
                r.final_decision_entries.to_string(),
            ],
            vec![
                "batch requests/computed".into(),
                format!("{}/{}", r.batch_requests, r.batch_computed),
            ],
            vec!["batch saved".into(), r.batch_saved.to_string()],
            vec![
                "batch saving %".into(),
                format!("{:.1}", r.batch_saving_pct),
            ],
            vec!["wall ms".into(), format!("{:.0}", r.wall_ms)],
        ],
    );
    save_json("serve_soak", &r);
    assert!(r.admitted > 0, "soak admitted nothing");
    assert!(
        r.rejected_queue_full + r.rejected_rate_limited > 0,
        "bursts never overflowed admission — the soak is not stressing it"
    );
    assert!(r.compacted_windows > 0, "retention never compacted");
}
