//! Fig. 9 — REC of BL and TMerge vs. window length L on PathTrack.

use tm_bench::experiments::{fig09::fig09, ExpConfig};
use tm_bench::report::{f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let points = observed("fig09_window_len", || fig09(&cfg));
    header("Fig. 9 — REC vs window length L (PathTrack, L_max=1000)");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.window_len.to_string(),
                f3(p.bl_rec),
                f3(p.tmerge_rec),
                p.n_pairs.to_string(),
            ]
        })
        .collect();
    table(&["L", "BL REC", "TMerge REC", "pairs"], &rows);
    save_json("fig09_window_len", &points);
}
