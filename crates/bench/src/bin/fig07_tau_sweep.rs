//! Fig. 7 — Runtime and REC of TMerge-B (B = 10) vs. τ_max on MOT-17.

use tm_bench::experiments::{fig07::fig07, ExpConfig};
use tm_bench::report::{f2, f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let result = observed("fig07_tau_sweep", || fig07(&cfg));
    header("Fig. 7 — TMerge-B (B=10) runtime & REC vs tau_max on MOT-17");
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.tau_max.to_string(),
                f3(p.rec),
                f2(p.runtime_s),
                f3(p.hit_rate),
            ]
        })
        .collect();
    table(&["tau_max", "REC", "runtime (s)", "cache hit rate"], &rows);
    println!(
        "\nBL-B reference: runtime {} s at REC {} (paper: 2762 s for all MOT-17 videos)",
        f2(result.bl_b_runtime_s),
        f3(result.bl_rec)
    );
    save_json("fig07_tau_sweep", &result);
}
