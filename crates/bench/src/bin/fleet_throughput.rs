//! Fleet throughput — cross-stream batching efficiency on a multi-camera
//! workload.
//!
//! Eight streams watch the same scene (identical box content, so their
//! ReID misses overlap almost entirely) plus one stream-unique clutter
//! track each. The measurement: backend inference calls under per-stream
//! serial ingestion (each stream runs its own `StreamingMerger` against a
//! counting backend) versus one `FleetIngester` whose streams share a
//! `BatchScheduler` — same decisions on every stream, fewer inferences.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use tm_bench::report::{header, observed, save_json, table};
use tm_core::{FleetIngester, StreamConfig, StreamingMerger, TMerge, TMergeConfig};
use tm_reid::{
    AppearanceConfig, AppearanceModel, Attempt, BackendReply, BatchConfig, BatchScheduler,
    BatchingBackend, CostModel, Device, InferenceBackend,
};
use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

const N_STREAMS: usize = 8;
const N_FRAMES: u64 = 700;
const WINDOW_LEN: u64 = 200;
const SCHEDULE: [u64; 3] = [250, 480, N_FRAMES];

/// The bare model plus a call counter: what "backend inference calls"
/// means for the per-stream serial reference.
#[derive(Debug)]
struct CountingModel<'a> {
    model: &'a AppearanceModel,
    calls: AtomicU64,
}

impl InferenceBackend for CountingModel<'_> {
    fn try_observe(&self, tb: &TrackBox, _at: &Attempt) -> BackendReply {
        self.calls.fetch_add(1, Ordering::Relaxed);
        BackendReply::ok(self.model.observe_track_box(tb))
    }
}

fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

/// Camera `i`'s view: the shared scene plus one stream-unique clutter
/// track (distinct geometry, so it cannot be batched across streams).
fn stream_tracks(i: usize) -> TrackSet {
    let mut tracks = vec![
        track(1, 10, 0, 30, 0.0),
        track(2, 10, 80, 30, 160.0),
        track(3, 11, 0, 300, 400.0),
        track(4, 12, 100, 300, 800.0),
        track(5, 13, 250, 60, 1200.0),
        track(6, 13, 330, 40, 1360.0),
        track(7, 14, 420, 60, 0.0),
        track(8, 14, 500, 50, 160.0),
        track(9, 15, 350, 300, 400.0),
    ];
    tracks.push(track(
        100 + i as u64,
        50 + i as u64,
        120,
        40,
        2000.0 + i as f64 * 37.0,
    ));
    TrackSet::from_tracks(tracks)
}

fn selector() -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 1_500,
        seed: 4,
        ..TMergeConfig::default()
    })
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_len: WINDOW_LEN,
        k: 0.2,
        gate: tm_reid::GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    }
}

#[derive(Serialize)]
struct FleetThroughput {
    n_streams: usize,
    solo_inferences: u64,
    fleet_inferences: u64,
    saved: u64,
    saving_pct: f64,
    batch_dispatches: u64,
    largest_batch: u64,
    per_stream_solo: Vec<u64>,
}

fn run() -> FleetThroughput {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let feeds: Vec<TrackSet> = (0..N_STREAMS).map(stream_tracks).collect();

    // Per-stream serial reference: each stream alone, counting calls.
    let mut per_stream_solo = Vec::with_capacity(N_STREAMS);
    for tracks in &feeds {
        let counting = CountingModel {
            model: &model,
            calls: AtomicU64::new(0),
        };
        let mut m = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            stream_config(),
        )
        .expect("valid stream config")
        .with_backend(&counting);
        for frames in SCHEDULE {
            m.advance(tracks, frames).expect("solo advance");
        }
        m.finish(tracks, N_FRAMES).expect("solo finish");
        per_stream_solo.push(counting.calls.load(Ordering::Relaxed));
    }
    let solo_inferences: u64 = per_stream_solo.iter().sum();

    // The fleet: one scheduler, one lane per stream over the same model.
    let scheduler = BatchScheduler::new(&model, BatchConfig::default());
    let lanes: Vec<BatchingBackend<'_>> =
        (0..N_STREAMS).map(|_| scheduler.backend(&model)).collect();
    let backends: Vec<&dyn InferenceBackend> =
        lanes.iter().map(|l| l as &dyn InferenceBackend).collect();
    let mut fleet = FleetIngester::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        stream_config(),
        |_| selector(),
        &backends,
    )
    .expect("valid fleet");
    for frames in SCHEDULE {
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, frames)).collect();
        fleet.advance(&refs).expect("fleet advance");
    }
    let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, N_FRAMES)).collect();
    fleet.finish(&refs).expect("fleet finish");

    let stats = scheduler.stats();
    assert_eq!(
        stats.requests, solo_inferences,
        "a lane request is exactly a solo backend call; the workloads diverged"
    );
    let saved = solo_inferences - stats.computed;
    let saving_pct = 100.0 * saved as f64 / solo_inferences.max(1) as f64;

    // Deterministic saving counters for results/fleet_throughput.metrics.txt.
    let obs = tm_obs::current();
    obs.counter("fleet.batch.saved", saved);
    obs.counter("fleet.batch.saved_pct", saving_pct as u64);

    FleetThroughput {
        n_streams: N_STREAMS,
        solo_inferences,
        fleet_inferences: stats.computed,
        saved,
        saving_pct,
        batch_dispatches: stats.dispatches,
        largest_batch: stats.largest_batch,
        per_stream_solo,
    }
}

fn main() {
    let r = observed("fleet_throughput", run);
    header(&format!(
        "Fleet throughput — {} streams, cross-stream batched ReID",
        r.n_streams
    ));
    table(
        &["metric", "value"],
        &[
            vec!["solo inference calls".into(), r.solo_inferences.to_string()],
            vec![
                "fleet inference calls".into(),
                r.fleet_inferences.to_string(),
            ],
            vec!["saved".into(), r.saved.to_string()],
            vec!["saving %".into(), format!("{:.1}", r.saving_pct)],
            vec!["batch dispatches".into(), r.batch_dispatches.to_string()],
            vec!["largest batch".into(), r.largest_batch.to_string()],
            vec![
                "per-stream solo calls".into(),
                r.per_stream_solo
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(" "),
            ],
        ],
    );
    save_json("fleet_throughput", &r);
    assert!(
        r.saving_pct >= 30.0,
        "cross-stream batching must save ≥ 30% of inference calls on the \
         shared-scene workload, got {:.1}%",
        r.saving_pct
    );
}
