//! Fig. 11 — polyonymous rates of three trackers with and without TMerge.

use tm_bench::experiments::{quality::fig11, ExpConfig};
use tm_bench::report::{header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let rows_data = observed("fig11_poly_rate", || fig11(&cfg));
    header("Fig. 11 — polyonymous rate with/without TMerge (MOT-17; lower is better)");
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.tracker.clone(),
                format!("{:.3}%", 100.0 * r.rate_without),
                format!("{:.3}%", 100.0 * r.rate_with),
                format!("{:.1}x", r.rate_without / r.rate_with.max(1e-9)),
            ]
        })
        .collect();
    table(
        &["tracker", "without TMerge", "with TMerge", "reduction"],
        &rows,
    );
    save_json("fig11_poly_rate", &rows_data);
}
