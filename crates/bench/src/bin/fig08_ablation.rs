//! Fig. 8 — ablation: TMerge vs. −BetaInit vs. −ULB on MOT-17.

use tm_bench::experiments::{fig08::fig08, ExpConfig};
use tm_bench::report::{f2, f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let result = observed("fig08_ablation", || fig08(&cfg));
    header("Fig. 8 — ablation study (MOT-17, CPU)");
    for (variant, points) in &result.curves {
        println!("\n{variant}:");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| vec![p.param.clone(), f3(p.outcome.rec), f2(p.outcome.fps)])
            .collect();
        table(&["param", "REC", "FPS"], &rows);
    }
    save_json("fig08_ablation", &result);
}
