//! Table II — FPS of all methods at REC = 0.80 and REC = 0.93 on MOT-17.

use tm_bench::experiments::{sweep::table2, ExpConfig};
use tm_bench::report::{f2, header, observed, save_json, table};

fn fmt(v: Option<f64>) -> String {
    v.map(f2).unwrap_or_else(|| "-".to_string())
}

fn main() {
    let cfg = ExpConfig::from_args();
    let t = observed("table2_fps", || table2(&cfg));
    header("Table II — FPS at REC=0.80 / REC=0.93 on MOT-17");
    println!("\nCPU:");
    let rows: Vec<Vec<String>> = t
        .cpu
        .iter()
        .map(|r| vec![r.method.clone(), fmt(r.fps_at_080), fmt(r.fps_at_093)])
        .collect();
    table(&["method", "REC=0.80", "REC=0.93"], &rows);
    for (batch, rows_b) in &t.gpu {
        println!("\nGPU {batch}:");
        let rows: Vec<Vec<String>> = rows_b
            .iter()
            .map(|r| vec![r.method.clone(), fmt(r.fps_at_080), fmt(r.fps_at_093)])
            .collect();
        table(&["method", "REC=0.80", "REC=0.93"], &rows);
    }
    save_json("table2_fps", &t);
}
