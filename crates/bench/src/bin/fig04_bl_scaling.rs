//! Fig. 4 — baseline runtime and pair count vs. video length.

use tm_bench::experiments::{fig04::fig04, ExpConfig};
use tm_bench::report::{f2, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let points = observed("fig04_bl_scaling", || fig04(&cfg));
    header("Fig. 4 — BL runtime & accumulated pairs vs video length (PathTrack-like, L=2000)");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n_frames.to_string(),
                p.n_pairs.to_string(),
                f2(p.runtime_s),
            ]
        })
        .collect();
    table(&["frames", "track pairs", "BL runtime (s)"], &rows);
    save_json("fig04_bl_scaling", &points);
}
