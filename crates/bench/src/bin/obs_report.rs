//! Renders the per-experiment metrics snapshots written by
//! `report::observed` (`results/*.metrics.txt`) as one summary table per
//! run: counters first, then the simulated-clock span histograms, then the
//! advisory wall-clock section if present.
//!
//! Serve-layer runs namespace each tenant's metrics under a
//! `serve.tenant.<id>.` prefix (see `tm_obs::Obs::with_prefix`); those
//! keys are pulled out of the main tables and rendered as one sub-table
//! per tenant, with the prefix stripped, so a multi-tenant soak reads as
//! N small per-tenant reports instead of one interleaved wall.
//!
//! Usage: `cargo run --release -p tm-bench --bin obs_report [name ...]`
//! With no arguments every `*.metrics.txt` under `results/` is rendered.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use tm_bench::report::{header, results_dir, table};

const TENANT_MARK: &str = "serve.tenant.";

/// Splits a metric key on the serve-layer tenant namespace: for
/// `event.serve.tenant.3.window` returns `(3, "event.window")`. Keys
/// without a well-formed `serve.tenant.<id>.` segment stay general.
fn tenant_of(key: &str) -> Option<(u64, String)> {
    let at = key.find(TENANT_MARK)?;
    let rest = &key[at + TENANT_MARK.len()..];
    let dot = rest.find('.')?;
    let id: u64 = rest[..dot].parse().ok()?;
    let stripped = format!("{}{}", &key[..at], &rest[dot + 1..]);
    Some((id, stripped))
}

struct Snapshot {
    name: String,
    counters: Vec<(String, String)>,
    sim: Vec<(String, String, String, String, String)>,
    wall: Vec<(String, String, String, String, String)>,
}

/// Parses one `<name>.metrics.txt` body. Unknown lines are skipped so the
/// format can grow without breaking old reports.
fn parse(name: &str, body: &str) -> Snapshot {
    let mut snap = Snapshot {
        name: name.to_string(),
        counters: Vec::new(),
        sim: Vec::new(),
        wall: Vec::new(),
    };
    for line in body.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("counter") => {
                let (Some(key), Some("="), Some(v)) = (parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                snap.counters.push((key.to_string(), v.to_string()));
            }
            Some(kind @ ("sim_ms" | "wall_ns")) => {
                let Some(key) = parts.next() else { continue };
                let mut fields = ["", "", "", ""].map(String::from);
                for p in parts {
                    let Some((k, v)) = p.split_once('=') else {
                        continue;
                    };
                    let slot = match k {
                        "count" => 0,
                        "sum" => 1,
                        "min" => 2,
                        "max" => 3,
                        _ => continue,
                    };
                    fields[slot] = v.to_string();
                }
                let [count, sum, min, max] = fields;
                let row = (key.to_string(), count, sum, min, max);
                if kind == "sim_ms" {
                    snap.sim.push(row);
                } else {
                    snap.wall.push(row);
                }
            }
            _ => {}
        }
    }
    snap
}

/// One tenant's slice of a snapshot, keys already stripped of the
/// `serve.tenant.<id>.` namespace.
#[derive(Default)]
struct TenantSlice {
    counters: Vec<(String, String)>,
    sim: Vec<(String, String, String, String, String)>,
    wall: Vec<(String, String, String, String, String)>,
}

fn span_rows(rows: &[(String, String, String, String, String)]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|(k, n, s, lo, hi)| vec![k.clone(), n.clone(), s.clone(), lo.clone(), hi.clone()])
        .collect()
}

fn render(snap: &Snapshot) {
    header(&format!("{} — metrics", snap.name));
    // Peel the per-tenant namespace out of the shared tables.
    let mut tenants: BTreeMap<u64, TenantSlice> = BTreeMap::new();
    let mut counters = Vec::new();
    for (k, v) in &snap.counters {
        match tenant_of(k) {
            Some((t, key)) => tenants
                .entry(t)
                .or_default()
                .counters
                .push((key, v.clone())),
            None => counters.push((k.clone(), v.clone())),
        }
    }
    let mut sim = Vec::new();
    for row in &snap.sim {
        match tenant_of(&row.0) {
            Some((t, key)) => {
                let mut row = row.clone();
                row.0 = key;
                tenants.entry(t).or_default().sim.push(row);
            }
            None => sim.push(row.clone()),
        }
    }
    let mut wall = Vec::new();
    for row in &snap.wall {
        match tenant_of(&row.0) {
            Some((t, key)) => {
                let mut row = row.clone();
                row.0 = key;
                tenants.entry(t).or_default().wall.push(row);
            }
            None => wall.push(row.clone()),
        }
    }
    if !counters.is_empty() {
        println!("\ncounters:");
        let rows: Vec<Vec<String>> = counters
            .iter()
            .map(|(k, v)| vec![k.clone(), v.clone()])
            .collect();
        table(&["name", "value"], &rows);
    }
    if !sim.is_empty() {
        println!("\nsimulated-clock spans (ms):");
        table(&["span", "count", "sum", "min", "max"], &span_rows(&sim));
    }
    if !wall.is_empty() {
        println!("\nwall-clock spans (ns, advisory, run-dependent):");
        table(&["span", "count", "sum", "min", "max"], &span_rows(&wall));
    }
    for (t, slice) in &tenants {
        println!("\ntenant {t}:");
        if !slice.counters.is_empty() {
            let rows: Vec<Vec<String>> = slice
                .counters
                .iter()
                .map(|(k, v)| vec![k.clone(), v.clone()])
                .collect();
            table(&["name", "value"], &rows);
        }
        if !slice.sim.is_empty() {
            table(
                &["span", "count", "sum", "min", "max"],
                &span_rows(&slice.sim),
            );
        }
        if !slice.wall.is_empty() {
            table(
                &["span", "count", "sum", "min", "max"],
                &span_rows(&slice.wall),
            );
        }
    }
    if snap.counters.is_empty() && snap.sim.is_empty() && snap.wall.is_empty() {
        println!("  (empty snapshot)");
    }
}

fn main() {
    let dir = results_dir();
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = if requested.is_empty() {
        let Ok(entries) = fs::read_dir(&dir) else {
            eprintln!("no results directory at {}", dir.display());
            return;
        };
        entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".metrics.txt"))
            })
            .collect()
    } else {
        requested
            .iter()
            .map(|n| dir.join(format!("{n}.metrics.txt")))
            .collect()
    };
    paths.sort();
    if paths.is_empty() {
        println!(
            "no *.metrics.txt under {}; run an experiment binary first",
            dir.display()
        );
        return;
    }
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.trim_end_matches(".metrics.txt").to_string())
            .unwrap_or_else(|| path.display().to_string());
        match fs::read_to_string(&path) {
            Ok(body) => render(&parse(&name, &body)),
            Err(e) => eprintln!("warning: could not read {}: {e}", path.display()),
        }
    }
}
