//! Renders the per-experiment metrics snapshots written by
//! `report::observed` (`results/*.metrics.txt`) as one summary table per
//! run: counters first, then the simulated-clock span histograms, then the
//! advisory wall-clock section if present.
//!
//! Usage: `cargo run --release -p tm-bench --bin obs_report [name ...]`
//! With no arguments every `*.metrics.txt` under `results/` is rendered.

use std::fs;
use std::path::PathBuf;
use tm_bench::report::{header, results_dir, table};

struct Snapshot {
    name: String,
    counters: Vec<(String, String)>,
    sim: Vec<(String, String, String, String, String)>,
    wall: Vec<(String, String, String, String, String)>,
}

/// Parses one `<name>.metrics.txt` body. Unknown lines are skipped so the
/// format can grow without breaking old reports.
fn parse(name: &str, body: &str) -> Snapshot {
    let mut snap = Snapshot {
        name: name.to_string(),
        counters: Vec::new(),
        sim: Vec::new(),
        wall: Vec::new(),
    };
    for line in body.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("counter") => {
                let (Some(key), Some("="), Some(v)) = (parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                snap.counters.push((key.to_string(), v.to_string()));
            }
            Some(kind @ ("sim_ms" | "wall_ns")) => {
                let Some(key) = parts.next() else { continue };
                let mut fields = ["", "", "", ""].map(String::from);
                for p in parts {
                    let Some((k, v)) = p.split_once('=') else {
                        continue;
                    };
                    let slot = match k {
                        "count" => 0,
                        "sum" => 1,
                        "min" => 2,
                        "max" => 3,
                        _ => continue,
                    };
                    fields[slot] = v.to_string();
                }
                let [count, sum, min, max] = fields;
                let row = (key.to_string(), count, sum, min, max);
                if kind == "sim_ms" {
                    snap.sim.push(row);
                } else {
                    snap.wall.push(row);
                }
            }
            _ => {}
        }
    }
    snap
}

fn render(snap: &Snapshot) {
    header(&format!("{} — metrics", snap.name));
    if !snap.counters.is_empty() {
        println!("\ncounters:");
        let rows: Vec<Vec<String>> = snap
            .counters
            .iter()
            .map(|(k, v)| vec![k.clone(), v.clone()])
            .collect();
        table(&["name", "value"], &rows);
    }
    if !snap.sim.is_empty() {
        println!("\nsimulated-clock spans (ms):");
        let rows: Vec<Vec<String>> = snap
            .sim
            .iter()
            .map(|(k, n, s, lo, hi)| vec![k.clone(), n.clone(), s.clone(), lo.clone(), hi.clone()])
            .collect();
        table(&["span", "count", "sum", "min", "max"], &rows);
    }
    if !snap.wall.is_empty() {
        println!("\nwall-clock spans (ns, advisory, run-dependent):");
        let rows: Vec<Vec<String>> = snap
            .wall
            .iter()
            .map(|(k, n, s, lo, hi)| vec![k.clone(), n.clone(), s.clone(), lo.clone(), hi.clone()])
            .collect();
        table(&["span", "count", "sum", "min", "max"], &rows);
    }
    if snap.counters.is_empty() && snap.sim.is_empty() && snap.wall.is_empty() {
        println!("  (empty snapshot)");
    }
}

fn main() {
    let dir = results_dir();
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = if requested.is_empty() {
        let Ok(entries) = fs::read_dir(&dir) else {
            eprintln!("no results directory at {}", dir.display());
            return;
        };
        entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".metrics.txt"))
            })
            .collect()
    } else {
        requested
            .iter()
            .map(|n| dir.join(format!("{n}.metrics.txt")))
            .collect()
    };
    paths.sort();
    if paths.is_empty() {
        println!(
            "no *.metrics.txt under {}; run an experiment binary first",
            dir.display()
        );
        return;
    }
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.trim_end_matches(".metrics.txt").to_string())
            .unwrap_or_else(|| path.display().to_string());
        match fs::read_to_string(&path) {
            Ok(body) => render(&parse(&name, &body)),
            Err(e) => eprintln!("warning: could not read {}: {e}", path.display()),
        }
    }
}
