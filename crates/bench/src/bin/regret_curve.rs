//! §IV-E extension — empirical average regret of TMerge vs. the
//! O(√(|P|·ln τ / τ)) bound shape.

use tm_bench::experiments::{regret::regret_curve, ExpConfig};
use tm_bench::report::{f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let r = observed("regret_curve", || regret_curve(&cfg));
    header("Average regret of TMerge (first MOT-17 window)");
    println!("pairs: {}, s_min: {}", r.n_pairs, f3(r.s_min));
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.tau.to_string(),
                format!("{:.4}", p.avg_regret),
                format!("{:.4}", p.bound_shape),
            ]
        })
        .collect();
    table(&["tau", "avg regret R(tau)", "bound shape"], &rows);
    save_json("regret_curve", &r);
}
