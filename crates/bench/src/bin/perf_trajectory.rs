//! The perf trajectory: a fixed, seeded workload suite whose results are
//! written to `BENCH_kernels.json`, `BENCH_cache.json` and
//! `BENCH_ingest.json` at the repository root, tagged with the git SHA and
//! CPU dispatch that produced them. Re-run after a change and diff the
//! files to see the performance trajectory of the repo.
//!
//! Suites:
//!
//! * **kernels** — the dense scoring dot product (SIMD vs the pinned
//!   scalar reference — the ≥ 1.5× speedup gate lives here), the blocked
//!   pairwise-distance kernel, the end-to-end exact scorer on a warm
//!   scratch, and the IoU gating/assignment kernels.
//! * **cache** — [`tm_reid::SharedFeatureCache`] hit and miss storms at
//!   1/4/8 shards under 4 threads.
//! * **ingest** — a reduced `FleetIngester` multi-stream window loop
//!   (construction through `finish`).
//!
//! `--quick` shrinks iteration counts for CI smoke use. Every report is
//! validated and round-tripped through the schema decoder before the
//! previous trajectory point is overwritten; failure exits non-zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tm_bench::perf::{
    collect_meta, repo_root, speedup, time_iters, BenchCase, BenchReport, CountingAlloc, Timing,
};
use tm_core::score::{exact_scores_with, ScoreScratch};
use tm_core::selector::SelectionInput;
use tm_core::{FleetIngester, StreamConfig, TMerge, TMergeConfig};
use tm_reid::{
    AppearanceConfig, AppearanceModel, BatchConfig, BatchScheduler, BatchingBackend, BoxKey,
    CostModel, Device, Feature, InferenceBackend, ReidSession, SharedFeatureCache,
};
use tm_track::assign::{
    iou_threshold_matches, min_cost_assignment_into, AssignmentScratch, BoxMatchScratch,
};
use tm_types::simd::{dot, dot_scalar, simd_enabled};
use tm_types::{
    ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Minimum accepted median speedup of the SIMD dot kernel over the pinned
/// scalar reference on hosts where the AVX2+FMA path is active.
const MIN_DOT_SPEEDUP: f64 = 1.5;

fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn unit_matrix(rows: usize, dim: usize, seed: u64) -> Vec<f64> {
    let mut s = seed;
    let mut out = Vec::with_capacity(rows * dim);
    for _ in 0..rows {
        let row: Vec<f64> = (0..dim).map(|_| splitmix(&mut s) * 2.0 - 1.0).collect();
        let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        out.extend(row.iter().map(|x| x / norm));
    }
    out
}

fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Suite 1: kernels
// ---------------------------------------------------------------------------

fn kernels_suite(quick: bool) -> Vec<BenchCase> {
    let iters = if quick { 7 } else { 30 };
    let mut cases = Vec::new();

    // Dot product, 64×64 row pairs at dim 256 — the speedup gate workload.
    let (rows, dim) = (64usize, 256usize);
    let fa = unit_matrix(rows, dim, 1);
    let fb = unit_matrix(rows, dim, 2);
    let dots = (rows * rows) as u64;
    let run_dot = |f: &dyn Fn(&[f64], &[f64]) -> f64| {
        let mut acc = 0.0f64;
        for ra in fa.chunks_exact(dim) {
            for rb in fb.chunks_exact(dim) {
                acc += f(ra, rb);
            }
        }
        std::hint::black_box(acc);
    };
    let t_scalar = time_iters(iters, || run_dot(&dot_scalar));
    let t_simd = time_iters(iters, || run_dot(&dot));
    cases.push(BenchCase::from_timing(
        "dot_scalar_d256",
        t_scalar,
        dots,
        0,
        0,
    ));
    cases.push(BenchCase::from_timing("dot_simd_d256", t_simd, dots, 0, 0));
    gate_dot_speedup(t_scalar, t_simd);

    // Blocked pairwise-distance kernel, the exact scorer's arithmetic core.
    let (na, nb, sdim) = (40usize, 200usize, 32usize);
    let ka = unit_matrix(na, sdim, 3);
    let kb = unit_matrix(nb, sdim, 4);
    let t_pair_scalar = time_iters(iters, || {
        std::hint::black_box(tm_core::simd::sum_pairwise_unit_distances_scalar(
            &ka, &kb, sdim,
        ));
    });
    let t_pair = time_iters(iters, || {
        std::hint::black_box(tm_core::score::sum_pairwise_unit_distances(&ka, &kb, sdim));
    });
    let pairs = (na * nb) as u64;
    cases.push(BenchCase::from_timing(
        "pairwise_scalar_40x200_d32",
        t_pair_scalar,
        pairs,
        0,
        0,
    ));
    cases.push(BenchCase::from_timing(
        "pairwise_simd_40x200_d32",
        t_pair,
        pairs,
        0,
        0,
    ));

    // End-to-end exact scorer on a warm scratch (steady-state window).
    let model = AppearanceModel::new(AppearanceConfig::default());
    let tracks = TrackSet::from_tracks(vec![
        track(1, 10, 0, 20, 0.0),
        track(2, 10, 40, 20, 160.0),
        track(3, 11, 0, 20, 400.0),
        track(4, 12, 10, 20, 800.0),
        track(5, 13, 0, 20, 1200.0),
        track(6, 13, 30, 20, 1360.0),
    ]);
    let mut pairs_v = Vec::new();
    for a in 1..=6u64 {
        for b in (a + 1)..=6 {
            pairs_v.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
        }
    }
    let input = SelectionInput {
        pairs: &pairs_v,
        tracks: &tracks,
        k: 1.0,
        voi: None,
    };
    let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let mut scratch = ScoreScratch::new();
    let mut out = Vec::new();
    let inf_before = session.stats().inferences;
    let alloc = CountingAlloc::snapshot();
    let t_score = time_iters(iters, || {
        exact_scores_with(&input, &mut session, &mut scratch, &mut out).expect("score");
        std::hint::black_box(out.len());
    });
    let bench_bytes = alloc.delta().bytes;
    let inferences = session.stats().inferences - inf_before;
    // 15 pairs × 400 bbox pairs per call.
    cases.push(BenchCase::from_timing(
        "exact_scores_warm_15x400",
        t_score,
        pairs_v.len() as u64 * 400,
        inferences,
        bench_bytes,
    ));

    // IoU gating: dense mask-and-solve and grid-gated sparse paths.
    let mut seed = 77u64;
    let cols: Vec<BBox> = (0..256)
        .map(|i| {
            BBox::new(
                (i % 16) as f64 * 120.0 + splitmix(&mut seed) * 30.0,
                (i / 16) as f64 * 120.0 + splitmix(&mut seed) * 30.0,
                40.0 + splitmix(&mut seed) * 20.0,
                80.0 + splitmix(&mut seed) * 20.0,
            )
        })
        .collect();
    let rows_b: Vec<BBox> = cols
        .iter()
        .step_by(4)
        .map(|b| BBox::new(b.x + 6.0, b.y + 4.0, b.w, b.h))
        .collect();
    let mut bm = BoxMatchScratch::new();
    let t_dense = time_iters(iters, || {
        // max_cost ≥ 1 forces the dense reference path.
        std::hint::black_box(iou_threshold_matches(&rows_b, &cols, 1.0, &mut bm).len());
    });
    cases.push(BenchCase::from_timing(
        "iou_dense_64x256",
        t_dense,
        (rows_b.len() * cols.len()) as u64,
        0,
        0,
    ));
    let t_gated = time_iters(iters, || {
        std::hint::black_box(iou_threshold_matches(&rows_b, &cols, 0.5, &mut bm).len());
    });
    cases.push(BenchCase::from_timing(
        "iou_gated_64x256",
        t_gated,
        (rows_b.len() * cols.len()) as u64,
        0,
        0,
    ));

    // Dense assignment solve into a reused buffer.
    let n = 64usize;
    let mut seed = 5u64;
    let cost: Vec<f64> = (0..n * n).map(|_| splitmix(&mut seed)).collect();
    let mut asg = AssignmentScratch::default();
    let mut assign_out = Vec::new();
    let t_assign = time_iters(iters, || {
        min_cost_assignment_into(&cost, n, n, &mut asg, &mut assign_out);
        std::hint::black_box(assign_out.len());
    });
    cases.push(BenchCase::from_timing(
        "assignment_dense_64x64",
        t_assign,
        n as u64,
        0,
        0,
    ));

    cases
}

/// The hard perf gate: on hosts running the AVX2+FMA path, the SIMD dot
/// kernel must beat the pinned scalar reference by ≥ 1.5× median. On
/// fallback hosts the gate is skipped (recorded, not failed).
fn gate_dot_speedup(t_scalar: Timing, t_simd: Timing) {
    let ratio = speedup(t_scalar, t_simd);
    if simd_enabled() {
        println!("simd dot speedup: {ratio:.2}x (gate: >= {MIN_DOT_SPEEDUP}x)");
        assert!(
            ratio >= MIN_DOT_SPEEDUP,
            "SIMD dot kernel only {ratio:.2}x over scalar (need {MIN_DOT_SPEEDUP}x)"
        );
    } else {
        println!("simd dot gate skipped: scalar-fallback dispatch (ratio {ratio:.2}x)");
    }
}

// ---------------------------------------------------------------------------
// Suite 2: cache storms
// ---------------------------------------------------------------------------

const STORM_THREADS: u64 = 4;

fn cache_suite(quick: bool) -> Vec<BenchCase> {
    let iters = if quick { 3 } else { 10 };
    let keys: u64 = if quick { 512 } else { 4096 };
    let mut cases = Vec::new();
    for shards in [1usize, 4, 8] {
        // Hit storm: a pre-warmed cache, every thread reads every key.
        let cache = Arc::new(SharedFeatureCache::<BoxKey>::with_shards(shards));
        for k in 0..keys {
            cache.get_or_compute(BoxKey::new(TrackId(k), FrameIdx(0)), || {
                Feature::normalized(vec![k as f64, 1.0])
            });
        }
        let t_hits = time_iters(iters, || {
            std::thread::scope(|s| {
                for _ in 0..STORM_THREADS {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || {
                        let mut found = 0u64;
                        for k in 0..keys {
                            if cache.get(&BoxKey::new(TrackId(k), FrameIdx(0))).is_some() {
                                found += 1;
                            }
                        }
                        assert_eq!(found, keys);
                    });
                }
            });
        });
        cases.push(BenchCase::from_timing(
            &format!("cache_hits_s{shards}_t{STORM_THREADS}"),
            t_hits,
            keys * STORM_THREADS,
            0,
            0,
        ));

        // Miss storm: a cold cache per iteration, threads race to fill it.
        let computed = AtomicU64::new(0);
        let alloc = CountingAlloc::snapshot();
        let t_misses = time_iters(iters, || {
            let cache = Arc::new(SharedFeatureCache::<BoxKey>::with_shards(shards));
            let computed = &computed;
            std::thread::scope(|s| {
                for w in 0..STORM_THREADS {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || {
                        for k in 0..keys {
                            let k = (k + w * keys / STORM_THREADS) % keys;
                            let (_, mine) = cache
                                .get_or_compute(BoxKey::new(TrackId(k), FrameIdx(1)), || {
                                    Feature::normalized(vec![k as f64, 2.0])
                                });
                            if mine {
                                computed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            assert_eq!(cache.len() as u64, keys);
        });
        cases.push(BenchCase::from_timing(
            &format!("cache_misses_s{shards}_t{STORM_THREADS}"),
            t_misses,
            keys * STORM_THREADS,
            computed.load(Ordering::Relaxed),
            alloc.delta().bytes,
        ));
    }
    cases
}

// ---------------------------------------------------------------------------
// Suite 3: fleet ingest
// ---------------------------------------------------------------------------

fn stream_tracks(i: usize, scale: usize) -> TrackSet {
    let mut tracks = vec![
        track(1, 10, 0, 30 * scale / 4, 0.0),
        track(2, 10, 80, 30 * scale / 4, 160.0),
        track(3, 11, 0, 60 * scale / 4, 400.0),
        track(4, 12, 100, 60 * scale / 4, 800.0),
        track(5, 13, 250, 40 * scale / 4, 1200.0),
    ];
    tracks.push(track(
        100 + i as u64,
        50 + i as u64,
        120,
        10 * scale / 4,
        2000.0 + i as f64 * 37.0,
    ));
    TrackSet::from_tracks(tracks)
}

fn ingest_suite(quick: bool) -> Vec<BenchCase> {
    let iters = if quick { 2 } else { 5 };
    let n_streams = if quick { 2 } else { 4 };
    let n_frames = 700u64;
    let schedule = [250u64, 480, n_frames];
    let model = AppearanceModel::new(AppearanceConfig::default());
    let feeds: Vec<TrackSet> = (0..n_streams).map(|i| stream_tracks(i, 4)).collect();
    let stream_config = StreamConfig {
        window_len: 200,
        k: 0.2,
        gate: tm_reid::GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    };
    let inferences = AtomicU64::new(0);
    let alloc = CountingAlloc::snapshot();
    let t = time_iters(iters, || {
        let scheduler = BatchScheduler::for_fleet_width(&model, BatchConfig::default(), n_streams);
        let lanes: Vec<BatchingBackend<'_>> =
            (0..n_streams).map(|_| scheduler.backend(&model)).collect();
        let backends: Vec<&dyn InferenceBackend> =
            lanes.iter().map(|l| l as &dyn InferenceBackend).collect();
        let mut fleet = FleetIngester::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            stream_config,
            |_| {
                TMerge::new(TMergeConfig {
                    tau_max: 1_500,
                    seed: 4,
                    ..TMergeConfig::default()
                })
            },
            &backends,
        )
        .expect("valid fleet");
        for frames in schedule {
            let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, frames)).collect();
            fleet.advance(&refs).expect("fleet advance");
        }
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, n_frames)).collect();
        fleet.finish(&refs).expect("fleet finish");
        inferences.store(scheduler.stats().computed, Ordering::Relaxed);
    });
    vec![BenchCase::from_timing(
        &format!("fleet_ingest_{n_streams}x{n_frames}"),
        t,
        n_streams as u64 * n_frames,
        inferences.load(Ordering::Relaxed),
        alloc.delta().bytes,
    )]
}

// ---------------------------------------------------------------------------

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let meta = collect_meta(quick);
    let root = repo_root();
    println!(
        "perf trajectory @ {} (threads={}, simd={}, quick={})",
        meta.git_sha, meta.threads, meta.simd, quick
    );
    let suites: [(&str, Vec<BenchCase>); 3] = [
        ("BENCH_kernels.json", kernels_suite(quick)),
        ("BENCH_cache.json", cache_suite(quick)),
        ("BENCH_ingest.json", ingest_suite(quick)),
    ];
    for (file, cases) in suites {
        let report = BenchReport {
            meta: meta.clone(),
            cases,
        };
        // Validate and round-trip through the schema decoder BEFORE
        // overwriting the previous trajectory point.
        report
            .validate()
            .unwrap_or_else(|e| panic!("{file}: invalid report: {e}"));
        let text = report.encode();
        let back = BenchReport::decode(&text)
            .unwrap_or_else(|e| panic!("{file}: self round-trip failed: {e}"));
        assert_eq!(back, report, "{file}: decode(encode) drifted");
        let path = root.join(file);
        std::fs::write(&path, &text)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        for c in &report.cases {
            println!(
                "  {:<34} p50 {:>12} ns  p99 {:>12} ns  {:>14.0} items/s",
                c.name, c.wall_ns_p50, c.wall_ns_p99, c.throughput_items_per_s
            );
        }
        println!("wrote {}", path.display());
    }
}
