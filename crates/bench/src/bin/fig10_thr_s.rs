//! Fig. 10 — REC–FPS of TMerge varying the BetaInit threshold thr_S.

use tm_bench::experiments::{fig10::fig10, ExpConfig};
use tm_bench::report::{f2, f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let result = observed("fig10_thr_s", || fig10(&cfg));
    header("Fig. 10 — REC-FPS varying thr_S (MOT-17, CPU)");
    for (label, points) in &result.curves {
        println!("\n{label}:");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| vec![p.param.clone(), f3(p.outcome.rec), f2(p.outcome.fps)])
            .collect();
        table(&["param", "REC", "FPS"], &rows);
    }
    save_json("fig10_thr_s", &result);
}
