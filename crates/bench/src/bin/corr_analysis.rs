//! §IV-C footnote 4 — correlations of the track-pair score with spatial
//! and temporal distances (the empirical basis for BetaInit).

use tm_bench::experiments::{corr::corr_analysis, ExpConfig};
use tm_bench::report::{f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let rows_data = observed("corr_analysis", || corr_analysis(&cfg));
    header("Correlation of score with DisS / DisT (paper: DisS >= 0.3, DisT < 0.1)");
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                f3(r.corr_spatial),
                f3(r.corr_temporal),
                f3(r.poly_within_thr),
                f3(r.distinct_within_thr),
                r.n_pairs.to_string(),
            ]
        })
        .collect();
    table(
        &[
            "dataset",
            "corr(score, DisS)",
            "corr(score, DisT)",
            "P(DisS<200 | poly)",
            "P(DisS<200 | distinct)",
            "pairs",
        ],
        &rows,
    );
    println!(
        "\nNote: the simulator reproduces the *sign and usefulness* of the\n\
         spatial prior (polyonymous pairs concentrate below thr_S, which is\n\
         all BetaInit consumes), not the paper's global Pearson magnitude —\n\
         that is driven by background bleed in real ReID crops, a pixel-level\n\
         effect outside this simulation's scope."
    );
    save_json("corr_analysis", &rows_data);
}
