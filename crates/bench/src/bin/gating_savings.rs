//! Gating savings — selective feature extraction vs. extract-everything.
//!
//! Walks the same PathTrack Tracktor windows twice with the TMerge selector:
//! once with `GatePolicy::Off` (the historical extract-on-demand path) and
//! once with `GatePolicy::On(GateConfig::default())` (novelty-gated
//! extraction with age-decayed feature propagation). Both walks verify
//! candidates against the oracle and merge the accepted pairs, so the
//! comparison is end-to-end: total ReID inferences, IDF1/recall of the
//! merged output, and the simulated per-window latency distribution.
//!
//! The binary asserts the tentpole claim from DESIGN.md §14 — the gate
//! must cut total inferences by ≥ 30% while holding IDF1 and candidate
//! recall within 0.5 points and keeping p50/p99 window latency no worse —
//! and writes three artifacts:
//!
//! * `BENCH_gating.json` at the repo root (schema-validated trajectory
//!   point, like `BENCH_kernels.json` and friends),
//! * `results/gating_savings.json` (the full comparison),
//! * `results/gating_savings.metrics.txt` (deterministic recorder
//!   snapshot: `reid.gate.*` counters and simulated spans).
//!
//! `--quick` clips the dataset for CI smoke use.

use serde::Serialize;
use tm_bench::experiments::ExpConfig;
use tm_bench::harness::{DatasetRun, VideoRun};
use tm_bench::perf::{collect_meta, percentile, repo_root, time_iters, BenchCase, BenchReport};
use tm_bench::report::{header, observed, save_json, table};
use tm_core::{merge_mapping, CandidateSelector, SelectionInput, TMerge, TMergeConfig};
use tm_datasets::pathtrack;
use tm_metrics::{identity_metrics, recall};
use tm_reid::{CostModel, Device, GateConfig, GatePolicy, ReidSession};
use tm_track::TrackerKind;
use tm_types::TrackPair;

/// Tentpole gate: minimum accepted inference saving.
const MIN_SAVING_PCT: f64 = 30.0;
/// Maximum accepted IDF1/recall drop, in points (×100 of the fraction).
const MAX_QUALITY_DROP_PTS: f64 = 0.5;

fn selector(seed: u64) -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 10_000,
        seed,
        ..TMergeConfig::default()
    })
}

/// What one full dataset walk under one gate policy produced.
struct Walk {
    inferences: u64,
    cache_hits: u64,
    saved_charges: u64,
    elapsed_ms: f64,
    /// Simulated latency of every decided window, microsecond-quantized
    /// and ascending-sorted (for nearest-rank percentiles).
    window_us: Vec<u64>,
    /// IDF1 of the merged output vs. ground truth, averaged over videos.
    idf1: f64,
    /// Candidate recall vs. the polyonymous truth, averaged over videos
    /// that have any truth pairs.
    rec: f64,
}

/// Runs every window of every video under `gate`, oracle-verifies the
/// candidates, merges the accepted pairs and scores the merged output.
fn walk(runs: &[VideoRun], gate: GatePolicy, seed: u64) -> Walk {
    let per_video = tm_par::par_map(runs, |run| {
        let model = run.video.model();
        let corr = &run.video.correspondence;
        let sel = selector(seed);
        let mut session =
            ReidSession::new(&model, CostModel::calibrated(), Device::Gpu { batch: 10 })
                .with_gate(gate);
        session.gate_update_plan(&run.video.tracks);
        let mut candidates: Vec<TrackPair> = Vec::new();
        let mut accepted: Vec<TrackPair> = Vec::new();
        let mut window_us: Vec<u64> = Vec::new();
        for wp in &run.windows {
            if wp.pairs.is_empty() {
                continue;
            }
            let input = SelectionInput {
                pairs: &wp.pairs,
                tracks: &run.video.tracks,
                k: tm_bench::experiments::sweep::K,
                voi: None,
            };
            let before = session.elapsed_ms();
            let result = sel
                .select(&input, &mut session)
                .expect("clean backend: selection cannot fail");
            window_us.push(((session.elapsed_ms() - before) * 1_000.0).round() as u64);
            session.flush_gate_obs();
            for p in result.candidates {
                if corr.is_polyonymous(&p) {
                    accepted.push(p);
                }
                candidates.push(p);
            }
        }
        let merged = run.video.tracks.relabeled(&merge_mapping(&accepted));
        let idf1 = identity_metrics(&run.video.gt_tracks, &merged, 0.5).idf1;
        let rec = if run.truth.is_empty() {
            None
        } else {
            Some(recall(candidates.iter(), &run.truth))
        };
        (
            session.stats(),
            session.gate_stats(),
            session.elapsed_ms(),
            window_us,
            idf1,
            rec,
        )
    });
    let mut out = Walk {
        inferences: 0,
        cache_hits: 0,
        saved_charges: 0,
        elapsed_ms: 0.0,
        window_us: Vec::new(),
        idf1: 0.0,
        rec: 0.0,
    };
    let mut recs: Vec<f64> = Vec::new();
    for (stats, gate_stats, elapsed, us, idf1, rec) in per_video {
        out.inferences += stats.inferences;
        out.cache_hits += stats.cache_hits;
        out.saved_charges += gate_stats.saved_charges();
        out.elapsed_ms += elapsed;
        out.window_us.extend(us);
        out.idf1 += idf1;
        recs.extend(rec);
    }
    out.idf1 /= runs.len().max(1) as f64;
    out.rec = if recs.is_empty() {
        1.0
    } else {
        recs.iter().sum::<f64>() / recs.len() as f64
    };
    out.window_us.sort_unstable();
    out
}

/// The side-by-side comparison written to `results/gating_savings.json`.
#[derive(Serialize)]
struct GatingSavings {
    n_videos: usize,
    n_windows: usize,
    ungated_inferences: u64,
    gated_inferences: u64,
    saved: u64,
    saving_pct: f64,
    gate_saved_charges: u64,
    idf1_ungated: f64,
    idf1_gated: f64,
    recall_ungated: f64,
    recall_gated: f64,
    window_p50_us_ungated: u64,
    window_p50_us_gated: u64,
    window_p99_us_ungated: u64,
    window_p99_us_gated: u64,
    elapsed_s_ungated: f64,
    elapsed_s_gated: f64,
}

fn run(cfg: &ExpConfig) -> (GatingSavings, Walk, Walk) {
    let spec = cfg.limit(pathtrack(), 4);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let off = walk(&ds.runs, GatePolicy::Off, cfg.seed);
    let on = walk(&ds.runs, GatePolicy::On(GateConfig::default()), cfg.seed);
    assert_eq!(
        off.window_us.len(),
        on.window_us.len(),
        "both walks decide the same windows"
    );
    let saved = off.inferences.saturating_sub(on.inferences);
    let r = GatingSavings {
        n_videos: ds.runs.len(),
        n_windows: off.window_us.len(),
        ungated_inferences: off.inferences,
        gated_inferences: on.inferences,
        saved,
        saving_pct: 100.0 * saved as f64 / off.inferences.max(1) as f64,
        gate_saved_charges: on.saved_charges,
        idf1_ungated: off.idf1,
        idf1_gated: on.idf1,
        recall_ungated: off.rec,
        recall_gated: on.rec,
        window_p50_us_ungated: percentile(&off.window_us, 50.0),
        window_p50_us_gated: percentile(&on.window_us, 50.0),
        window_p99_us_ungated: percentile(&off.window_us, 99.0),
        window_p99_us_gated: percentile(&on.window_us, 99.0),
        elapsed_s_ungated: off.elapsed_ms / 1000.0,
        elapsed_s_gated: on.elapsed_ms / 1000.0,
    };
    // Deterministic headline counters for results/gating_savings.metrics.txt.
    let obs = tm_obs::current();
    obs.counter("gating.inferences_saved", saved);
    obs.counter("gating.saving_pct", r.saving_pct as u64);
    (r, off, on)
}

fn main() {
    let cfg = ExpConfig::from_args();
    let (r, _off, _on) = observed("gating_savings", || run(&cfg));

    header(&format!(
        "Gating savings — novelty-gated extraction on PathTrack ({} videos, {} windows)",
        r.n_videos, r.n_windows
    ));
    let pts = |a: f64, b: f64| format!("{:.2} → {:.2}", 100.0 * a, 100.0 * b);
    table(
        &["metric", "value"],
        &[
            vec![
                "inferences (off → on)".into(),
                format!("{} → {}", r.ungated_inferences, r.gated_inferences),
            ],
            vec!["saved".into(), r.saved.to_string()],
            vec![
                "gate saved charges".into(),
                r.gate_saved_charges.to_string(),
            ],
            vec!["saving %".into(), format!("{:.1}", r.saving_pct)],
            vec![
                "IDF1 pts (off → on)".into(),
                pts(r.idf1_ungated, r.idf1_gated),
            ],
            vec![
                "recall pts (off → on)".into(),
                pts(r.recall_ungated, r.recall_gated),
            ],
            vec![
                "window p50 µs (off → on)".into(),
                format!("{} → {}", r.window_p50_us_ungated, r.window_p50_us_gated),
            ],
            vec![
                "window p99 µs (off → on)".into(),
                format!("{} → {}", r.window_p99_us_ungated, r.window_p99_us_gated),
            ],
            vec![
                "sim elapsed s (off → on)".into(),
                format!("{:.2} → {:.2}", r.elapsed_s_ungated, r.elapsed_s_gated),
            ],
        ],
    );
    save_json("gating_savings", &r);

    // The tentpole acceptance gates.
    assert!(
        r.saving_pct >= MIN_SAVING_PCT,
        "the gate must save ≥ {MIN_SAVING_PCT}% of ReID inferences, got {:.1}%",
        r.saving_pct
    );
    let idf1_drop_pts = 100.0 * (r.idf1_ungated - r.idf1_gated);
    assert!(
        idf1_drop_pts <= MAX_QUALITY_DROP_PTS,
        "gated IDF1 dropped {idf1_drop_pts:.3} pts (> {MAX_QUALITY_DROP_PTS})"
    );
    let rec_drop_pts = 100.0 * (r.recall_ungated - r.recall_gated);
    assert!(
        rec_drop_pts <= MAX_QUALITY_DROP_PTS,
        "gated recall dropped {rec_drop_pts:.3} pts (> {MAX_QUALITY_DROP_PTS})"
    );
    assert!(
        r.window_p50_us_gated <= r.window_p50_us_ungated
            && r.window_p99_us_gated <= r.window_p99_us_ungated,
        "gated window latency regressed: p50 {} → {} µs, p99 {} → {} µs",
        r.window_p50_us_ungated,
        r.window_p50_us_gated,
        r.window_p99_us_ungated,
        r.window_p99_us_gated,
    );

    // The trajectory point: wall-time both walks on the prepared dataset
    // (preparation itself is excluded) and write BENCH_gating.json next to
    // the other BENCH_*.json files.
    let spec = cfg.limit(pathtrack(), 4);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let frames = ds.total_frames();
    let iters = if cfg.quick { 1 } else { 3 };
    let cases = [
        ("pipeline_ungated", GatePolicy::Off, r.ungated_inferences),
        (
            "pipeline_gated",
            GatePolicy::On(GateConfig::default()),
            r.gated_inferences,
        ),
    ]
    .map(|(name, gate, inferences)| {
        let t = time_iters(iters, || {
            walk(&ds.runs, gate, cfg.seed);
        });
        BenchCase::from_timing(name, t, frames, inferences, 0)
    });
    let report = BenchReport {
        meta: collect_meta(cfg.quick),
        cases: cases.to_vec(),
    };
    report
        .validate()
        .unwrap_or_else(|e| panic!("BENCH_gating.json: invalid report: {e}"));
    let text = report.encode();
    let back = BenchReport::decode(&text)
        .unwrap_or_else(|e| panic!("BENCH_gating.json: self round-trip failed: {e}"));
    assert_eq!(back, report, "BENCH_gating.json: decode(encode) drifted");
    let path = repo_root().join("BENCH_gating.json");
    std::fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}
