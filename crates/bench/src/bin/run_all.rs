//! Runs every experiment (pass `--quick` for the reduced scale),
//! regenerating all tables and figures of the paper.
//!
//! Experiments fan out over worker threads (`TMERGE_THREADS`, see
//! `tm_par`), each writing its own JSON file on completion — so the
//! `[name done in ...]` lines may interleave, but every `results/*.json`
//! is byte-identical to a serial run (all aggregation inside the
//! experiments is index-ordered and the simulated clocks are
//! per-video/per-window, never wall-clock).

use std::time::Instant;
use tm_bench::experiments::{self, ExpConfig};
use tm_bench::report::{header, observed, save_json};

fn main() {
    let cfg = ExpConfig::from_args();
    header(&format!(
        "Running all experiments ({} scale)",
        if cfg.quick { "quick" } else { "full" }
    ));

    type Task = Box<dyn Fn() + Sync>;
    let tasks: Vec<(&str, Task)> = vec![
        (
            "fig03",
            Box::new(move || {
                observed("fig03_rec_k", || {
                    save_json("fig03_rec_k", &experiments::fig03::fig03(&cfg))
                })
            }),
        ),
        (
            "fig04",
            Box::new(move || {
                observed("fig04_bl_scaling", || {
                    save_json("fig04_bl_scaling", &experiments::fig04::fig04(&cfg))
                })
            }),
        ),
        (
            "fig05",
            Box::new(move || {
                observed("fig05_rec_fps", || {
                    save_json("fig05_rec_fps", &experiments::sweep::fig05(&cfg))
                })
            }),
        ),
        (
            "fig06",
            Box::new(move || {
                observed("fig06_rec_fps_batched", || {
                    save_json("fig06_rec_fps_batched", &experiments::sweep::fig06(&cfg))
                })
            }),
        ),
        (
            "table2",
            Box::new(move || {
                observed("table2_fps", || {
                    save_json("table2_fps", &experiments::sweep::table2(&cfg))
                })
            }),
        ),
        (
            "fig07",
            Box::new(move || {
                observed("fig07_tau_sweep", || {
                    save_json("fig07_tau_sweep", &experiments::fig07::fig07(&cfg))
                })
            }),
        ),
        (
            "fig08",
            Box::new(move || {
                observed("fig08_ablation", || {
                    save_json("fig08_ablation", &experiments::fig08::fig08(&cfg))
                })
            }),
        ),
        (
            "fig09",
            Box::new(move || {
                observed("fig09_window_len", || {
                    save_json("fig09_window_len", &experiments::fig09::fig09(&cfg))
                })
            }),
        ),
        (
            "fig10",
            Box::new(move || {
                observed("fig10_thr_s", || {
                    save_json("fig10_thr_s", &experiments::fig10::fig10(&cfg))
                })
            }),
        ),
        (
            "fig11",
            Box::new(move || {
                observed("fig11_poly_rate", || {
                    save_json("fig11_poly_rate", &experiments::quality::fig11(&cfg))
                })
            }),
        ),
        (
            "fig12",
            Box::new(move || {
                observed("fig12_id_metrics", || {
                    save_json("fig12_id_metrics", &experiments::quality::fig12(&cfg))
                })
            }),
        ),
        (
            "fig13",
            Box::new(move || {
                observed("fig13_query_recall", || {
                    save_json("fig13_query_recall", &experiments::quality::fig13(&cfg))
                })
            }),
        ),
        (
            "regret",
            Box::new(move || {
                observed("regret_curve", || {
                    save_json("regret_curve", &experiments::regret::regret_curve(&cfg))
                })
            }),
        ),
        (
            "corr",
            Box::new(move || {
                observed("corr_analysis", || {
                    save_json("corr_analysis", &experiments::corr::corr_analysis(&cfg))
                })
            }),
        ),
    ];

    let t_all = Instant::now();
    tm_par::par_for_each(&tasks, |(name, task)| {
        let t0 = Instant::now();
        task();
        println!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
    });
    println!(
        "\nAll experiments complete in {:.1}s; JSON in results/.",
        t_all.elapsed().as_secs_f64()
    );
    println!(
        "Render EXPERIMENTS.md with: cargo run --release -p tm-bench --bin render_experiments"
    );
}
