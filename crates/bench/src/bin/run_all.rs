//! Runs every experiment in sequence (pass `--quick` for the reduced
//! scale), regenerating all tables and figures of the paper.

use tm_bench::experiments::{self, ExpConfig};
use tm_bench::report::{header, save_json};
use std::time::Instant;

fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    println!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
    out
}

fn main() {
    let cfg = ExpConfig::from_args();
    header(&format!(
        "Running all experiments ({} scale)",
        if cfg.quick { "quick" } else { "full" }
    ));

    let fig03 = timed("fig03", || experiments::fig03::fig03(&cfg));
    save_json("fig03_rec_k", &fig03);
    let fig04 = timed("fig04", || experiments::fig04::fig04(&cfg));
    save_json("fig04_bl_scaling", &fig04);
    let fig05 = timed("fig05", || experiments::sweep::fig05(&cfg));
    save_json("fig05_rec_fps", &fig05);
    let fig06 = timed("fig06", || experiments::sweep::fig06(&cfg));
    save_json("fig06_rec_fps_batched", &fig06);
    let table2 = timed("table2", || experiments::sweep::table2(&cfg));
    save_json("table2_fps", &table2);
    let fig07 = timed("fig07", || experiments::fig07::fig07(&cfg));
    save_json("fig07_tau_sweep", &fig07);
    let fig08 = timed("fig08", || experiments::fig08::fig08(&cfg));
    save_json("fig08_ablation", &fig08);
    let fig09 = timed("fig09", || experiments::fig09::fig09(&cfg));
    save_json("fig09_window_len", &fig09);
    let fig10 = timed("fig10", || experiments::fig10::fig10(&cfg));
    save_json("fig10_thr_s", &fig10);
    let fig11 = timed("fig11", || experiments::quality::fig11(&cfg));
    save_json("fig11_poly_rate", &fig11);
    let fig12 = timed("fig12", || experiments::quality::fig12(&cfg));
    save_json("fig12_id_metrics", &fig12);
    let fig13 = timed("fig13", || experiments::quality::fig13(&cfg));
    save_json("fig13_query_recall", &fig13);
    let regret = timed("regret", || experiments::regret::regret_curve(&cfg));
    save_json("regret_curve", &regret);
    let corr = timed("corr", || experiments::corr::corr_analysis(&cfg));
    save_json("corr_analysis", &corr);

    println!("\nAll experiments complete; JSON in results/.");
    println!("Render EXPERIMENTS.md with: cargo run --release -p tm-bench --bin render_experiments");
}
