//! Query-adaptive anytime merging vs. the query-agnostic pipeline.
//!
//! Walks the PathTrack Tracktor videos with [`tm_query::AnytimeQuery`]
//! under the two §V-H queries (Count > 200 frames, 3-way co-occurrence
//! > 50 frames), twice per inference budget:
//!
//! * **VoI** — value-of-information hints reweight the bandit arms,
//!   windows are visited in descending VoI order, and the run stops as
//!   soon as the `[lo, hi]` interval converges,
//! * **agnostic** — no hints, no early stop: the classic pipeline with a
//!   budget clamp.
//!
//! The per-video full-budget spend `T` defines the budget grid
//! (25/50/75/100 % of `T`); query recall of the merged output is scored
//! against ground truth with a freshly recomputed attribution, exactly as
//! Fig. 13 does. The binary asserts the tentpole claim from DESIGN.md §17
//! — at a 50 % budget the VoI run must hold ≥ 95 % of the full-budget
//! recall on both queries, and early termination must fire on at least
//! one video — and writes three artifacts:
//!
//! * `BENCH_query.json` at the repo root (schema-validated trajectory
//!   point, like `BENCH_gating.json` and friends),
//! * `results/query_adaptive.json` (the full budget curves),
//! * `results/query_adaptive.metrics.txt` (deterministic recorder
//!   snapshot: `query.voi.*` counters).
//!
//! `--quick` clips the dataset for CI smoke use.

use serde::Serialize;
use tm_bench::experiments::quality::{COUNT_MIN_FRAMES, CO_OCCUR_GROUP, CO_OCCUR_MIN_FRAMES};
use tm_bench::experiments::ExpConfig;
use tm_bench::harness::{DatasetRun, VideoRun};
use tm_bench::perf::{collect_meta, repo_root, time_iters, BenchCase, BenchReport};
use tm_bench::report::{header, observed, save_json, table};
use tm_core::{merge_mapping, PipelineConfig, SelectorKind, TMergeConfig};
use tm_datasets::pathtrack;
use tm_metrics::Correspondence;
use tm_query::{
    co_occurrence_recall, count_recall, AnytimeConfig, AnytimeQuery, Query, QueryAnswer,
};
use tm_reid::{CostModel, Device, GatePolicy};
use tm_track::TrackerKind;
use tm_types::{BBox, TrackPair};

/// Budget grid, percent of the measured full-budget spend.
const BUDGET_PCTS: [u64; 4] = [25, 50, 75, 100];
/// Tentpole gate: minimum fraction of full-budget recall the VoI run must
/// hold at the 50 % budget point.
const MIN_RECALL_FRAC_AT_HALF: f64 = 0.95;

/// The two §V-H queries, in report order.
fn queries() -> [Query; 2] {
    [
        Query::Count {
            min_frames: COUNT_MIN_FRAMES,
        },
        Query::CoOccurrence {
            group_size: CO_OCCUR_GROUP,
            min_frames: CO_OCCUR_MIN_FRAMES,
        },
    ]
}

fn query_name(qi: usize) -> &'static str {
    ["count", "co_occurrence"][qi]
}

fn pipeline_config(window_len: u64, seed: u64) -> PipelineConfig {
    PipelineConfig {
        window_len,
        k: tm_bench::experiments::sweep::K,
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 10_000,
            seed,
            ..TMergeConfig::default()
        }),
        device: Device::Gpu { batch: 10 },
        cost: CostModel::calibrated(),
        gate: GatePolicy::Off,
        voi: tm_core::VoiMode::Reweight,
    }
}

/// Ground-truth recall of `query` on the tracks merged under the
/// oracle-verified subset of `accepted` (candidates the anytime layer
/// proposed that are truly polyonymous — the same verified-merge scoring
/// Fig. 13 uses). The merged set changes ids, so the attribution is
/// recomputed.
fn recall_of(run: &VideoRun, query: Query, accepted: &[TrackPair]) -> f64 {
    let verified: Vec<TrackPair> = accepted
        .iter()
        .filter(|p| run.video.correspondence.is_polyonymous(p))
        .copied()
        .collect();
    let merged = run.video.tracks.relabeled(&merge_mapping(&verified));
    let corr = Correspondence::from_tracks(&merged, 0.5);
    let gt = &run.video.gt_tracks;
    match query {
        Query::Count { min_frames } => count_recall(&merged, gt, min_frames, corr.as_map()),
        Query::CoOccurrence {
            group_size,
            min_frames,
        } => co_occurrence_recall(&merged, gt, group_size, min_frames, corr.as_map()),
        Query::RegionTransit { .. } => unreachable!("not part of this bench"),
    }
}

/// One (variant, budget) outcome for one video and one query.
struct Outcome {
    spent: u64,
    recall: f64,
    terminated_early: bool,
}

/// Region-transit duration threshold (frames): long enough that passers-by
/// grazing the region stay sub-threshold.
const REGION_MIN_FRAMES: u64 = 150;

/// The region query probed per video: the spot of the most stationary
/// long track (smallest bbox hull among tracks of ≥ `REGION_MIN_FRAMES`
/// boxes) — "who loiters here?". Highly selective, so the answer interval
/// can pinch long before every window is scored: that is where anytime
/// early termination has real bite.
fn region_for(run: &VideoRun) -> BBox {
    let hull = |t: &tm_types::Track| {
        let (mut x0, mut y0) = (f64::INFINITY, f64::INFINITY);
        let (mut x1, mut y1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for b in &t.boxes {
            x0 = x0.min(b.bbox.x);
            y0 = y0.min(b.bbox.y);
            x1 = x1.max(b.bbox.x + b.bbox.w);
            y1 = y1.max(b.bbox.y + b.bbox.h);
        }
        BBox::new(x0, y0, (x1 - x0).max(1.0), (y1 - y0).max(1.0))
    };
    run.video
        .tracks
        .iter()
        .filter(|t| t.len() as u64 >= REGION_MIN_FRAMES)
        .map(|t| (hull(t), t.id))
        .min_by(|(a, ta), (b, tb)| (a.w * a.h).total_cmp(&(b.w * b.h)).then(ta.cmp(tb)))
        .map(|(h, _)| h)
        .unwrap_or_else(|| BBox::new(0.0, 0.0, 1.0, 1.0))
}

/// Run-to-convergence region-transit outcomes for one video:
/// `(voi_spent, agnostic_spent, terminated_early, deferred)`.
fn region_outcomes(run: &VideoRun, pipeline: PipelineConfig) -> (u64, u64, bool, u64) {
    let query = Query::RegionTransit {
        region: region_for(run),
        min_frames: REGION_MIN_FRAMES,
    };
    let model = run.video.model();
    let run_one = |voi: bool| {
        AnytimeQuery::new(
            pipeline,
            AnytimeConfig {
                budget: None,
                stop_on_convergence: voi,
                reweight_arms: voi,
            },
        )
        .run(&run.video.tracks, run.video.n_frames, &model, query)
        .expect("clean backend: anytime run cannot fail")
    };
    let voi = run_one(true);
    let agn = run_one(false);
    (
        voi.inferences_spent,
        agn.inferences_spent,
        voi.terminated_early,
        voi.deferred,
    )
}

fn anytime(
    run: &VideoRun,
    pipeline: PipelineConfig,
    query: Query,
    budget: Option<u64>,
    voi: bool,
) -> (Outcome, QueryAnswer) {
    let driver = AnytimeQuery::new(
        pipeline,
        AnytimeConfig {
            budget,
            stop_on_convergence: voi,
            reweight_arms: voi,
        },
    );
    let model = run.video.model();
    let ans = driver
        .run(&run.video.tracks, run.video.n_frames, &model, query)
        .expect("clean backend: anytime run cannot fail");
    (
        Outcome {
            spent: ans.inferences_spent,
            recall: recall_of(run, query, &ans.accepted),
            terminated_early: ans.terminated_early,
        },
        ans.answer,
    )
}

/// One point of the budget curve, aggregated over videos: recall is
/// averaged, spend is summed.
#[derive(Serialize)]
struct BudgetPoint {
    budget_pct: u64,
    query: &'static str,
    voi_spent: u64,
    voi_recall: f64,
    voi_early_terminations: u64,
    agnostic_spent: u64,
    agnostic_recall: f64,
}

/// The full comparison written to `results/query_adaptive.json`.
#[derive(Serialize)]
struct QueryAdaptive {
    n_videos: usize,
    /// Full-budget spend summed over videos (per query).
    full_spent: [u64; 2],
    /// Full-budget recall averaged over videos (per query).
    full_recall: [f64; 2],
    /// Unbudgeted VoI spend (run until the interval converges), summed
    /// over videos (per query).
    voi_full_spent: [u64; 2],
    /// Unbudgeted VoI recall averaged over videos (per query).
    voi_full_recall: [f64; 2],
    points: Vec<BudgetPoint>,
    /// Region-transit run-to-convergence: VoI vs agnostic spend, summed
    /// over videos.
    region_voi_spent: u64,
    region_agnostic_spent: u64,
    /// Videos whose region query terminated early on interval convergence.
    region_early_terminations: u64,
    /// Region-query pairs deferred as provably irrelevant, over videos.
    region_deferred: u64,
    early_terminations: u64,
}

fn run(cfg: &ExpConfig) -> QueryAdaptive {
    let spec = cfg.limit(pathtrack(), 4);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let pipeline = pipeline_config(ds.window_len, cfg.seed);

    // Per video × query: the full-budget walk (defines T), then both
    // variants at every budget fraction.
    let per_video = tm_par::par_map(&ds.runs, |run| {
        queries().map(|query| {
            let (full, _) = anytime(run, pipeline, query, None, false);
            let (voi_full, _) = anytime(run, pipeline, query, None, true);
            let grid = BUDGET_PCTS.map(|pct| {
                let budget = (full.spent * pct / 100).max(1);
                let (voi, _) = anytime(run, pipeline, query, Some(budget), true);
                let (agn, _) = anytime(run, pipeline, query, Some(budget), false);
                (voi, agn)
            });
            (full, voi_full, grid)
        })
    });
    let region = tm_par::par_map(&ds.runs, |run| region_outcomes(run, pipeline));

    let n = ds.runs.len() as f64;
    let mut full_spent = [0u64; 2];
    let mut full_recall = [0.0f64; 2];
    let mut voi_full_spent = [0u64; 2];
    let mut voi_full_recall = [0.0f64; 2];
    let mut voi_full_early = 0u64;
    let mut points: Vec<BudgetPoint> = queries()
        .iter()
        .enumerate()
        .flat_map(|(qi, _)| {
            BUDGET_PCTS.map(|pct| BudgetPoint {
                budget_pct: pct,
                query: query_name(qi),
                voi_spent: 0,
                voi_recall: 0.0,
                voi_early_terminations: 0,
                agnostic_spent: 0,
                agnostic_recall: 0.0,
            })
        })
        .collect();
    for video in &per_video {
        for (qi, (full, voi_full, grid)) in video.iter().enumerate() {
            full_spent[qi] += full.spent;
            full_recall[qi] += full.recall / n;
            voi_full_spent[qi] += voi_full.spent;
            voi_full_recall[qi] += voi_full.recall / n;
            voi_full_early += voi_full.terminated_early as u64;
            for (bi, (voi, agn)) in grid.iter().enumerate() {
                let p = &mut points[qi * BUDGET_PCTS.len() + bi];
                p.voi_spent += voi.spent;
                p.voi_recall += voi.recall / n;
                p.voi_early_terminations += voi.terminated_early as u64;
                p.agnostic_spent += agn.spent;
                p.agnostic_recall += agn.recall / n;
            }
        }
    }
    let mut region_voi_spent = 0u64;
    let mut region_agnostic_spent = 0u64;
    let mut region_early_terminations = 0u64;
    let mut region_deferred = 0u64;
    for &(voi_spent, agn_spent, early, deferred) in &region {
        region_voi_spent += voi_spent;
        region_agnostic_spent += agn_spent;
        region_early_terminations += early as u64;
        region_deferred += deferred;
    }
    let early: u64 = voi_full_early
        + region_early_terminations
        + points.iter().map(|p| p.voi_early_terminations).sum::<u64>();
    QueryAdaptive {
        n_videos: ds.runs.len(),
        full_spent,
        full_recall,
        voi_full_spent,
        voi_full_recall,
        points,
        region_voi_spent,
        region_agnostic_spent,
        region_early_terminations,
        region_deferred,
        early_terminations: early,
    }
}

fn main() {
    let cfg = ExpConfig::from_args();
    let r = observed("query_adaptive", || run(&cfg));

    header(&format!(
        "Query-adaptive anytime merging on PathTrack ({} videos)",
        r.n_videos
    ));
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            let per_k = |rec: f64, spent: u64| 1_000.0 * rec / spent.max(1) as f64;
            vec![
                p.query.into(),
                format!("{}%", p.budget_pct),
                format!("{:.3} @ {}", p.voi_recall, p.voi_spent),
                format!("{:.3} @ {}", p.agnostic_recall, p.agnostic_spent),
                format!(
                    "{:.4} vs {:.4}",
                    per_k(p.voi_recall, p.voi_spent),
                    per_k(p.agnostic_recall, p.agnostic_spent)
                ),
                p.voi_early_terminations.to_string(),
            ]
        })
        .collect();
    table(
        &[
            "query",
            "budget",
            "VoI recall @ spend",
            "agnostic recall @ spend",
            "recall/1k inf (VoI vs agn)",
            "early stops",
        ],
        &rows,
    );
    let conv_rows: Vec<Vec<String>> = (0..2)
        .map(|qi| {
            vec![
                query_name(qi).into(),
                format!("{:.3} @ {}", r.voi_full_recall[qi], r.voi_full_spent[qi]),
                format!("{:.3} @ {}", r.full_recall[qi], r.full_spent[qi]),
            ]
        })
        .collect();
    table(
        &[
            "query",
            "VoI run-to-convergence recall @ spend",
            "agnostic full recall @ spend",
        ],
        &conv_rows,
    );
    table(
        &["region transit (run to convergence)", "value"],
        &[
            vec![
                "VoI spend vs agnostic".into(),
                format!("{} vs {}", r.region_voi_spent, r.region_agnostic_spent),
            ],
            vec![
                "early terminations".into(),
                format!("{} / {}", r.region_early_terminations, r.n_videos),
            ],
            vec!["pairs deferred".into(), r.region_deferred.to_string()],
        ],
    );
    save_json("query_adaptive", &r);

    // The tentpole acceptance gates (DESIGN.md §17).
    for (qi, _) in queries().iter().enumerate() {
        let half = &r.points[qi * BUDGET_PCTS.len() + 1];
        assert_eq!(half.budget_pct, 50);
        assert!(
            half.voi_recall >= MIN_RECALL_FRAC_AT_HALF * r.full_recall[qi],
            "{}: VoI recall at 50% budget is {:.4}, below {MIN_RECALL_FRAC_AT_HALF} x \
             full-budget recall {:.4}",
            query_name(qi),
            half.voi_recall,
            r.full_recall[qi],
        );
    }
    assert!(
        r.early_terminations >= 1,
        "interval convergence must terminate at least one VoI run early"
    );

    // The trajectory point: wall-time the VoI half-budget walk against the
    // agnostic full-budget walk (preparation excluded) and write
    // BENCH_query.json next to the other BENCH_*.json files.
    let spec = cfg.limit(pathtrack(), 4);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let pipeline = pipeline_config(ds.window_len, cfg.seed);
    let frames = ds.total_frames();
    let iters = if cfg.quick { 1 } else { 3 };
    let half_budgets: Vec<u64> = (0..2)
        .map(|qi| (r.full_spent[qi] / r.n_videos.max(1) as u64 / 2).max(1))
        .collect();
    let voi_spent: u64 = r
        .points
        .iter()
        .filter(|p| p.budget_pct == 50)
        .map(|p| p.voi_spent)
        .sum();
    let agn_spent: u64 = r.full_spent.iter().sum();
    let cases = [
        ("anytime_voi_half_budget", true, voi_spent),
        ("pipeline_agnostic_full", false, agn_spent),
    ]
    .map(|(name, voi, inferences)| {
        let t = time_iters(iters, || {
            for run in &ds.runs {
                for (qi, query) in queries().into_iter().enumerate() {
                    let budget = voi.then_some(half_budgets[qi]);
                    anytime(run, pipeline, query, budget, voi);
                }
            }
        });
        BenchCase::from_timing(name, t, frames, inferences, 0)
    });
    let report = BenchReport {
        meta: collect_meta(cfg.quick),
        cases: cases.to_vec(),
    };
    report
        .validate()
        .unwrap_or_else(|e| panic!("BENCH_query.json: invalid report: {e}"));
    let text = report.encode();
    let back = BenchReport::decode(&text)
        .unwrap_or_else(|e| panic!("BENCH_query.json: self round-trip failed: {e}"));
    assert_eq!(back, report, "BENCH_query.json: decode(encode) drifted");
    let path = repo_root().join("BENCH_query.json");
    std::fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}
