//! Fig. 13 — recall of the Count and Co-occurring-Objects queries with and
//! without TMerge.

use tm_bench::experiments::{quality::fig13, ExpConfig};
use tm_bench::report::{f3, header, observed, save_json, table};

fn main() {
    let cfg = ExpConfig::from_args();
    let r = observed("fig13_query_recall", || fig13(&cfg));
    header("Fig. 13 — query recall with/without TMerge (Tracktor, MOT-17; higher is better)");
    let rows = vec![
        vec![
            "Count (>200 frames)".to_string(),
            f3(r.count.0),
            f3(r.count.1),
        ],
        vec![
            "Co-occurring objects (3 / >50 frames)".to_string(),
            f3(r.co_occurrence.0),
            f3(r.co_occurrence.1),
        ],
    ];
    table(&["query", "without TMerge", "with TMerge"], &rows);
    save_json("fig13_query_recall", &r);
}
