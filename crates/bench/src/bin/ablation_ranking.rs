//! Ablation of this reproduction's one documented deviation (DESIGN.md §1
//! "Final ranking"): ranking candidates by the prior-shrunk continuous
//! sample mean vs. the literal Bernoulli posterior mean `S/(S+F)`.

use std::collections::BTreeMap;
use tm_bench::experiments::{sweep::averaged_outcome, ExpConfig};
use tm_bench::harness::{CurvePoint, DatasetRun};
use tm_bench::report::{f2, f3, header, observed, save_json, table};
use tm_core::{TMerge, TMergeConfig};
use tm_datasets::mot17;
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;

fn main() {
    let cfg = ExpConfig::from_args();
    let curves = observed("ablation_ranking", || {
        let spec = cfg.limit(mot17(), 7);
        let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
        let cost = CostModel::calibrated();
        let mut curves: BTreeMap<String, Vec<CurvePoint>> = BTreeMap::new();
        for (label, literal) in [
            ("shrunk sample mean (default)", false),
            ("S/(S+F) (paper literal)", true),
        ] {
            let points: Vec<CurvePoint> = cfg
                .tau_grid()
                .into_iter()
                .map(|tau| {
                    let out =
                        averaged_outcome(&ds, cost, Device::Cpu, cfg.trials, cfg.seed, &|seed| {
                            Box::new(TMerge::new(TMergeConfig {
                                tau_max: tau,
                                seed,
                                rank_by_bernoulli_posterior: literal,
                                ..TMergeConfig::default()
                            }))
                        });
                    CurvePoint {
                        param: format!("tau={tau}"),
                        outcome: out,
                    }
                })
                .collect();
            curves.insert(label.to_string(), points);
        }
        curves
    });
    header("Ranking ablation: continuous shrunk mean vs literal Bernoulli posterior (MOT-17)");
    for (label, points) in &curves {
        println!("\n{label}:");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| vec![p.param.clone(), f3(p.outcome.rec), f2(p.outcome.fps)])
            .collect();
        table(&["param", "REC", "FPS"], &rows);
    }
    save_json("ablation_ranking", &curves);
}
