//! The perf-trajectory harness: schema, measurement and validation for the
//! `BENCH_*.json` files the `perf_trajectory` binary writes at the repo
//! root.
//!
//! Those files are the repo's persistent performance record: each run
//! appends a point to the trajectory (kernels / cache / ingest), tagged
//! with the git SHA, thread count and SIMD dispatch that produced it, so a
//! regression shows up as a diff. The offline `serde_json` stub cannot
//! serialize real values, so this module hand-rolls the tiny JSON dialect
//! the schema needs (objects, arrays, strings, finite numbers, bools) —
//! **both** directions, so the files round-trip and the validator can
//! re-read what the binary is about to write *before* it overwrites the
//! previous trajectory point.
//!
//! Also here: the counting global allocator the allocation audit and the
//! bench binary install ([`CountingAlloc`]) and the SIMD speedup gate
//! ([`speedup`], asserted ≥ 1.5× for the dot kernel on AVX2 hosts).

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Version stamp written into every report; bump on schema changes.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` shim over the system allocator that counts
/// every allocation (calls and bytes; `realloc` counts the new size).
/// Deallocation is uncounted — the audits care about allocation pressure,
/// not live bytes.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side-effect-only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total bytes requested since process start.
    pub bytes: u64,
    /// Total allocation calls since process start.
    pub calls: u64,
}

impl CountingAlloc {
    /// Current counter values. Meaningful only in binaries that install
    /// `CountingAlloc` as the global allocator; elsewhere both stay 0.
    pub fn snapshot() -> AllocSnapshot {
        AllocSnapshot {
            bytes: ALLOC_BYTES.load(Ordering::Relaxed),
            calls: ALLOC_CALLS.load(Ordering::Relaxed),
        }
    }
}

impl AllocSnapshot {
    /// Counter growth since `self` was taken.
    pub fn delta(&self) -> AllocSnapshot {
        let now = CountingAlloc::snapshot();
        AllocSnapshot {
            bytes: now.bytes - self.bytes,
            calls: now.calls - self.calls,
        }
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Wall-clock percentiles over repeated runs of one workload.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Measured iterations (after 2 warm-up runs).
    pub iters: u64,
    /// Median per-iteration wall time.
    pub p50_ns: u64,
    /// 99th-percentile per-iteration wall time (nearest-rank).
    pub p99_ns: u64,
}

/// Runs `f` twice to warm caches/pools, then `iters` timed iterations.
pub fn time_iters(iters: usize, mut f: impl FnMut()) -> Timing {
    assert!(iters >= 1, "need at least one timed iteration");
    f();
    f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    Timing {
        iters: iters as u64,
        p50_ns: percentile(&samples, 50.0),
        p99_ns: percentile(&samples, 99.0),
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty() && (0.0..=100.0).contains(&p));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The speedup of `fast` over `base` by median wall time.
pub fn speedup(base: Timing, fast: Timing) -> f64 {
    base.p50_ns as f64 / fast.p50_ns.max(1) as f64
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

/// One benchmark case of a trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Unique case name within the file.
    pub name: String,
    /// Timed iterations behind the percentiles.
    pub iters: u64,
    /// Median per-iteration wall time.
    pub wall_ns_p50: u64,
    /// 99th-percentile per-iteration wall time.
    pub wall_ns_p99: u64,
    /// Workload items per second at the median (items are case-defined:
    /// dot products, cache lookups, ingested frames…).
    pub throughput_items_per_s: f64,
    /// Simulated ReID inferences the case performed (0 for pure kernels).
    pub inferences: u64,
    /// Heap bytes allocated during the timed iterations (counted by
    /// [`CountingAlloc`]; 0 when the binary did not install it).
    pub bytes_allocated: u64,
}

impl BenchCase {
    /// Builds a case from a [`Timing`] plus workload-level counters.
    pub fn from_timing(
        name: &str,
        t: Timing,
        items_per_iter: u64,
        inferences: u64,
        bytes_allocated: u64,
    ) -> Self {
        Self {
            name: name.to_string(),
            iters: t.iters,
            wall_ns_p50: t.p50_ns,
            wall_ns_p99: t.p99_ns,
            throughput_items_per_s: items_per_iter as f64 * 1e9 / t.p50_ns.max(1) as f64,
            inferences,
            bytes_allocated,
        }
    }
}

/// Environment stamp of a trajectory point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeta {
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a work tree.
    pub git_sha: String,
    /// `tm_par::max_threads()` at measurement time.
    pub threads: u64,
    /// Runtime-detected CPU features relevant to the kernels.
    pub cpu: Vec<String>,
    /// Active kernel dispatch: `"avx2+fma"` or `"scalar-fallback"`.
    pub simd: String,
    /// Whether the run used `--quick` (reduced iteration counts).
    pub quick: bool,
}

/// One `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Environment stamp.
    pub meta: BenchMeta,
    /// The suite's cases.
    pub cases: Vec<BenchCase>,
}

/// Collects the environment stamp for this process.
pub fn collect_meta(quick: bool) -> BenchMeta {
    let git_sha = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let mut cpu = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (flag, present) in [
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
        ] {
            if present {
                cpu.push(flag.to_string());
            }
        }
    }
    BenchMeta {
        git_sha,
        threads: tm_par::max_threads() as u64,
        cpu,
        simd: tm_types::simd::dispatch_name().to_string(),
        quick,
    }
}

/// The repository root (nearest ancestor of the current directory holding
/// `ROADMAP.md`), where the trajectory files live. Falls back to the
/// current directory so the binary still runs from exotic cwds.
pub fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("ROADMAP.md").is_file() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl BenchReport {
    /// Serializes the report. Rust's `{}` float formatting is
    /// shortest-round-trip, so `decode(encode(r)) == r` exactly.
    ///
    /// # Panics
    /// If a throughput value is non-finite (the validator rejects those
    /// first on every write path).
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(256 + self.cases.len() * 160);
        s.push_str("{\n  \"schema_version\": ");
        s.push_str(&SCHEMA_VERSION.to_string());
        s.push_str(",\n  \"meta\": {\n    \"git_sha\": ");
        push_json_str(&mut s, &self.meta.git_sha);
        s.push_str(",\n    \"threads\": ");
        s.push_str(&self.meta.threads.to_string());
        s.push_str(",\n    \"cpu\": [");
        for (i, f) in self.meta.cpu.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            push_json_str(&mut s, f);
        }
        s.push_str("],\n    \"simd\": ");
        push_json_str(&mut s, &self.meta.simd);
        s.push_str(",\n    \"quick\": ");
        s.push_str(if self.meta.quick { "true" } else { "false" });
        s.push_str("\n  },\n  \"cases\": [");
        for (i, c) in self.cases.iter().enumerate() {
            assert!(
                c.throughput_items_per_s.is_finite(),
                "case {} has non-finite throughput",
                c.name
            );
            s.push_str(if i > 0 { ",\n    {" } else { "\n    {" });
            s.push_str("\"name\": ");
            push_json_str(&mut s, &c.name);
            s.push_str(&format!(
                ", \"iters\": {}, \"wall_ns_p50\": {}, \"wall_ns_p99\": {}, \
                 \"throughput_items_per_s\": {}, \"inferences\": {}, \
                 \"bytes_allocated\": {}}}",
                c.iters,
                c.wall_ns_p50,
                c.wall_ns_p99,
                c.throughput_items_per_s,
                c.inferences,
                c.bytes_allocated
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parses a document produced by [`BenchReport::encode`] (or an edited
    /// descendant — any field order, whitespace and escapes accepted).
    pub fn decode(text: &str) -> Result<Self, String> {
        let root = parse_json(text)?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!("unsupported schema_version {version}"));
        }
        let meta = root.get("meta").ok_or("missing meta")?;
        let meta = BenchMeta {
            git_sha: meta
                .get("git_sha")
                .and_then(Json::as_str)
                .ok_or("meta.git_sha missing")?
                .to_string(),
            threads: meta
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or("meta.threads missing")?,
            cpu: meta
                .get("cpu")
                .and_then(Json::as_arr)
                .ok_or("meta.cpu missing")?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or("meta.cpu entry not a string")
                })
                .collect::<Result<_, _>>()?,
            simd: meta
                .get("simd")
                .and_then(Json::as_str)
                .ok_or("meta.simd missing")?
                .to_string(),
            quick: meta
                .get("quick")
                .and_then(Json::as_bool)
                .ok_or("meta.quick missing")?,
        };
        let cases = root
            .get("cases")
            .and_then(Json::as_arr)
            .ok_or("missing cases")?
            .iter()
            .map(|c| {
                let field = |k: &str| {
                    c.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("case field {k} missing"))
                };
                Ok(BenchCase {
                    name: c
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("case name missing")?
                        .to_string(),
                    iters: field("iters")?,
                    wall_ns_p50: field("wall_ns_p50")?,
                    wall_ns_p99: field("wall_ns_p99")?,
                    throughput_items_per_s: c
                        .get("throughput_items_per_s")
                        .and_then(Json::as_f64)
                        .ok_or("case throughput missing")?,
                    inferences: field("inferences")?,
                    bytes_allocated: field("bytes_allocated")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport { meta, cases })
    }

    /// Structural checks run before every write (and by the CI smoke job
    /// after): non-empty unique case names, sane percentiles, finite
    /// positive throughputs, a recognized dispatch string.
    pub fn validate(&self) -> Result<(), String> {
        if self.meta.git_sha.is_empty() {
            return Err("meta.git_sha empty".into());
        }
        if self.meta.threads == 0 {
            return Err("meta.threads must be >= 1".into());
        }
        if self.meta.simd != "avx2+fma" && self.meta.simd != "scalar-fallback" {
            return Err(format!("unknown meta.simd {:?}", self.meta.simd));
        }
        if self.cases.is_empty() {
            return Err("no cases".into());
        }
        let mut names = std::collections::HashSet::new();
        for c in &self.cases {
            if c.name.is_empty() {
                return Err("case with empty name".into());
            }
            if !names.insert(c.name.as_str()) {
                return Err(format!("duplicate case name {:?}", c.name));
            }
            if c.iters == 0 {
                return Err(format!("{}: iters must be >= 1", c.name));
            }
            if c.wall_ns_p50 > c.wall_ns_p99 {
                return Err(format!("{}: p50 > p99", c.name));
            }
            if !c.throughput_items_per_s.is_finite() || c.throughput_items_per_s <= 0.0 {
                return Err(format!("{}: throughput must be finite and > 0", c.name));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset the schema uses — no exponent-free
/// guarantee needed on numbers; anything `f64::from_str` accepts works).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; the schema's integers stay exact
    /// below 2⁵³, far beyond any counter here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered pairs; duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.eat_lit("true", Json::Bool(true)),
            b'f' => self.eat_lit("false", Json::Bool(false)),
            b'n' => self.eat_lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if !pairs.iter().any(|(k, _)| *k == key) {
                pairs.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?,
                            );
                            self.pos += 4;
                        }
                        b => return Err(format!("bad escape \\{}", b as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {token:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            meta: BenchMeta {
                git_sha: "abc1234".into(),
                threads: 3,
                cpu: vec!["avx2".into(), "fma".into()],
                simd: "avx2+fma".into(),
                quick: true,
            },
            cases: vec![
                BenchCase {
                    name: "dot_simd_d256".into(),
                    iters: 30,
                    wall_ns_p50: 12_345,
                    wall_ns_p99: 45_678,
                    throughput_items_per_s: 8.25e7,
                    inferences: 0,
                    bytes_allocated: 0,
                },
                BenchCase {
                    name: "ingest_window".into(),
                    iters: 5,
                    wall_ns_p50: 1_000_000,
                    wall_ns_p99: 1_500_000,
                    throughput_items_per_s: 700.0000000001,
                    inferences: 1_234,
                    bytes_allocated: 987_654,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_exactly() {
        let r = sample_report();
        r.validate().unwrap();
        let text = r.encode();
        let back = BenchReport::decode(&text).unwrap();
        assert_eq!(back, r);
        // And a second generation is byte-stable.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn decode_accepts_reordered_fields_and_escapes() {
        let text = r#"{
            "cases": [{"bytes_allocated": 1, "inferences": 2, "iters": 3,
                       "wall_ns_p99": 9, "wall_ns_p50": 4,
                       "throughput_items_per_s": 1.5e3,
                       "name": "weird \"name\"A"}],
            "meta": {"quick": false, "simd": "scalar-fallback",
                     "cpu": [], "threads": 1, "git_sha": "deadbee"},
            "schema_version": 1
        }"#;
        let r = BenchReport::decode(text).unwrap();
        assert_eq!(r.cases[0].name, "weird \"name\"A");
        assert_eq!(r.cases[0].throughput_items_per_s, 1500.0);
        assert_eq!(r.meta.simd, "scalar-fallback");
        r.validate().unwrap();
    }

    #[test]
    fn validator_rejects_bad_documents() {
        let good = sample_report();
        let mut dup = good.clone();
        dup.cases.push(dup.cases[0].clone());
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let mut inverted = good.clone();
        inverted.cases[0].wall_ns_p50 = inverted.cases[0].wall_ns_p99 + 1;
        assert!(inverted.validate().unwrap_err().contains("p50"));

        let mut nan = good.clone();
        nan.cases[0].throughput_items_per_s = f64::NAN;
        assert!(nan.validate().unwrap_err().contains("finite"));

        let mut weird_simd = good.clone();
        weird_simd.meta.simd = "avx512".into();
        assert!(weird_simd.validate().unwrap_err().contains("simd"));

        let mut empty = good.clone();
        empty.cases.clear();
        assert!(empty.validate().is_err());
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(BenchReport::decode("").is_err());
        assert!(BenchReport::decode("{}").is_err());
        assert!(BenchReport::decode("{\"schema_version\": 99}").is_err());
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn timing_and_case_shapes() {
        let t = time_iters(5, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(t.iters, 5);
        assert!(t.p50_ns <= t.p99_ns);
        let c = BenchCase::from_timing("x", t, 1_000, 2, 3);
        assert_eq!(c.inferences, 2);
        assert_eq!(c.bytes_allocated, 3);
        assert!(c.throughput_items_per_s > 0.0);
        assert!(speedup(t, t) > 0.99 && speedup(t, t) < 1.01 || t.p50_ns == 0);
    }
}
