//! Shared experiment machinery: prepared videos with pair sets and truth,
//! selector execution with REC/FPS aggregation, and parameter sweeps.

use serde::Serialize;
use std::collections::BTreeSet;
use tm_core::{build_window_pairs, CandidateSelector, SelectionInput, WindowPairs};
use tm_datasets::{prepare, DatasetSpec, PreparedVideo};
use tm_metrics::recall;
use tm_reid::{AppearanceModel, CostModel, Device, GatePolicy, ReidSession};
use tm_track::TrackerKind;
use tm_types::TrackPair;

/// A prepared video together with its window pair sets and the global
/// polyonymous truth `P*` (all pairs of tracks attributed to one actor).
#[derive(Debug, Clone)]
pub struct VideoRun {
    /// The prepared video.
    pub video: PreparedVideo,
    /// `P_c` per window for the configured `L`.
    pub windows: Vec<WindowPairs>,
    /// Global truth `P*`.
    pub truth: BTreeSet<TrackPair>,
}

impl VideoRun {
    /// Prepares a video and builds its pair sets for window length `L`.
    pub fn new(video: PreparedVideo, window_len: u64) -> Self {
        let windows = build_window_pairs(&video.tracks, video.n_frames, window_len)
            .expect("window length is validated by the caller");
        let tracks: Vec<&tm_types::Track> = video.tracks.iter().collect();
        let truth = video.correspondence.all_polyonymous(&tracks);
        Self {
            video,
            windows,
            truth,
        }
    }

    /// Total pairs across windows.
    pub fn n_pairs(&self) -> usize {
        self.windows.iter().map(|w| w.pairs.len()).sum()
    }
}

/// Aggregate outcome of running one selector over a set of videos.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunOutcome {
    /// Recall against the global polyonymous truth, averaged over videos
    /// that have any polyonymous pairs.
    pub rec: f64,
    /// Frames processed per simulated second.
    pub fps: f64,
    /// Total simulated runtime in seconds.
    pub runtime_s: f64,
    /// Total BBox-pair distance evaluations.
    pub distance_evals: u64,
    /// Total candidates returned.
    pub n_candidates: usize,
    /// ReID feature inferences executed.
    pub inferences: u64,
    /// Feature requests served from the cache (the paper's reuse effect).
    pub cache_hits: u64,
}

impl RunOutcome {
    /// Feature-cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.inferences + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// What one video's worker produced; folded in video order so the
/// aggregate is bit-identical to the serial loop for any thread count.
struct VideoOutcome {
    elapsed_ms: f64,
    frames: u64,
    evals: u64,
    n_candidates: usize,
    inferences: u64,
    cache_hits: u64,
    rec: Option<f64>,
}

/// Runs a selector over every window of every video, one ReID session per
/// video (features are reused across that video's windows), and aggregates
/// REC and FPS.
///
/// Videos fan out over worker threads (`TMERGE_THREADS`, see `tm_par`);
/// per-video results are collected into index-ordered buffers and folded in
/// video order, so the outcome is bit-identical to a serial run. Each video
/// keeps its own simulated clock, and the clocks are summed — parallelism
/// changes wall-clock only, never the reported FPS/REC.
pub fn run_selector(
    runs: &[VideoRun],
    selector: &dyn CandidateSelector,
    k: f64,
    cost: CostModel,
    device: Device,
) -> RunOutcome {
    run_selector_gated(runs, selector, k, cost, device, GatePolicy::Off)
}

/// [`run_selector`] with an extraction gate installed on every per-video
/// session (`GatePolicy::Off` is exactly `run_selector`). Gate decision
/// counters flush once per decided window — the `AssignStats` cadence —
/// and the saved charges are attributed to the selector as
/// `reid.gate.saved_charges.<slug>`.
pub fn run_selector_gated(
    runs: &[VideoRun],
    selector: &dyn CandidateSelector,
    k: f64,
    cost: CostModel,
    device: Device,
    gate: GatePolicy,
) -> RunOutcome {
    let outcomes = tm_par::par_map(runs, |run| {
        let model = run.video.model();
        let mut session = ReidSession::new(&model, cost, device).with_gate(gate);
        session.gate_update_plan(&run.video.tracks);
        let obs = tm_obs::current();
        let mut candidates: Vec<TrackPair> = Vec::new();
        let mut evals = 0u64;
        for wp in &run.windows {
            if wp.pairs.is_empty() {
                continue;
            }
            let input = SelectionInput {
                pairs: &wp.pairs,
                tracks: &run.video.tracks,
                k,
                voi: None,
            };
            let result = selector
                .select(&input, &mut session)
                .expect("clean backend: selection cannot fail");
            let delta = session.flush_gate_obs();
            if obs.enabled() && delta.saved_charges() > 0 {
                obs.counter(
                    &format!("reid.gate.saved_charges.{}", selector.obs_slug()),
                    delta.saved_charges(),
                );
            }
            evals += result.distance_evals;
            candidates.extend(result.candidates);
        }
        VideoOutcome {
            elapsed_ms: session.elapsed_ms(),
            frames: run.video.n_frames,
            evals,
            n_candidates: candidates.len(),
            inferences: session.stats().inferences,
            cache_hits: session.stats().cache_hits,
            rec: if run.truth.is_empty() {
                None
            } else {
                Some(recall(candidates.iter(), &run.truth))
            },
        }
    });
    let mut total_ms = 0.0;
    let mut total_frames = 0u64;
    let mut total_evals = 0u64;
    let mut n_candidates = 0usize;
    let mut inferences = 0u64;
    let mut cache_hits = 0u64;
    let mut recs: Vec<f64> = Vec::new();
    for o in outcomes {
        total_ms += o.elapsed_ms;
        total_frames += o.frames;
        total_evals += o.evals;
        n_candidates += o.n_candidates;
        inferences += o.inferences;
        cache_hits += o.cache_hits;
        recs.extend(o.rec);
    }
    let rec = if recs.is_empty() {
        1.0
    } else {
        recs.iter().sum::<f64>() / recs.len() as f64
    };
    let runtime_s = total_ms / 1000.0;
    let fps = if runtime_s > 0.0 {
        total_frames as f64 / runtime_s
    } else {
        f64::INFINITY
    };
    RunOutcome {
        rec,
        fps,
        runtime_s,
        distance_evals: total_evals,
        n_candidates,
        inferences,
        cache_hits,
    }
}

/// One point of a parameter sweep (a REC–FPS curve).
#[derive(Debug, Clone, Serialize)]
pub struct CurvePoint {
    /// Human-readable parameter value (e.g. `η=0.05` or `τ=10000`).
    pub param: String,
    /// The outcome at this parameter.
    #[serde(flatten)]
    pub outcome: RunOutcome,
}

/// Interpolated FPS at a target REC from a sweep (assumes the sweep spans
/// the target; returns `None` when no point reaches it).
///
/// Points are sorted by REC; the FPS is linearly interpolated between the
/// two bracketing points, which mirrors how the paper reads Table II's
/// "FPS at REC = x" off its curves.
pub fn fps_at_rec(points: &[CurvePoint], target: f64) -> Option<f64> {
    let mut sorted: Vec<&CurvePoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.outcome
            .rec
            .partial_cmp(&b.outcome.rec)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if sorted.is_empty() || sorted.last().unwrap().outcome.rec < target {
        return None;
    }
    // First point at or above the target.
    let hi_idx = sorted
        .iter()
        .position(|p| p.outcome.rec >= target)
        .expect("checked above");
    if hi_idx == 0 {
        return Some(sorted[0].outcome.fps);
    }
    let lo = &sorted[hi_idx - 1].outcome;
    let hi = &sorted[hi_idx].outcome;
    if (hi.rec - lo.rec).abs() < 1e-12 {
        return Some(hi.fps);
    }
    let t = (target - lo.rec) / (hi.rec - lo.rec);
    Some(lo.fps + t * (hi.fps - lo.fps))
}

/// A whole dataset prepared with one tracker.
#[derive(Debug, Clone)]
pub struct DatasetRun {
    /// Dataset name.
    pub name: &'static str,
    /// Prepared videos with pair sets and truth.
    pub runs: Vec<VideoRun>,
    /// Window length used.
    pub window_len: u64,
}

impl DatasetRun {
    /// Prepares every video of a dataset with the given tracker and window
    /// length (`None` = the dataset's default).
    pub fn prepare(spec: &DatasetSpec, tracker: TrackerKind, window_len: Option<u64>) -> Self {
        let window_len = window_len.unwrap_or(spec.window_len);
        let runs = spec
            .videos
            .iter()
            .map(|v| VideoRun::new(prepare(v, tracker), window_len))
            .collect();
        Self {
            name: spec.name,
            runs,
            window_len,
        }
    }

    /// Total frames across videos.
    pub fn total_frames(&self) -> u64 {
        self.runs.iter().map(|r| r.video.n_frames).sum()
    }
}

/// Builds a fresh appearance model handle for the first video (used by
/// kernels that need *a* model).
pub fn any_model(ds: &DatasetRun) -> AppearanceModel {
    ds.runs[0].video.model()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rec: f64, fps: f64) -> CurvePoint {
        CurvePoint {
            param: format!("rec={rec}"),
            outcome: RunOutcome {
                rec,
                fps,
                runtime_s: 1.0,
                distance_evals: 0,
                n_candidates: 0,
                inferences: 0,
                cache_hits: 0,
            },
        }
    }

    #[test]
    fn fps_at_rec_interpolates() {
        let pts = vec![point(0.5, 100.0), point(0.9, 20.0), point(0.7, 60.0)];
        // Exact hit.
        assert!((fps_at_rec(&pts, 0.7).unwrap() - 60.0).abs() < 1e-9);
        // Midpoint between 0.7 and 0.9 → midpoint FPS.
        assert!((fps_at_rec(&pts, 0.8).unwrap() - 40.0).abs() < 1e-9);
        // Below the lowest point → the fastest point's FPS.
        assert!((fps_at_rec(&pts, 0.3).unwrap() - 100.0).abs() < 1e-9);
        // Unreachable target.
        assert!(fps_at_rec(&pts, 0.95).is_none());
    }

    #[test]
    fn fps_at_rec_empty() {
        assert!(fps_at_rec(&[], 0.5).is_none());
    }
}
