//! # tm-bench
//!
//! The experiment harness: reproduces **every table and figure** of the
//! paper's evaluation (§V). Each experiment lives in [`experiments`] as a
//! function returning a serializable result, with a thin binary per
//! table/figure in `src/bin/` that prints the paper-format rows and writes
//! JSON to `results/`.
//!
//! | Paper exhibit | Binary |
//! |---|---|
//! | Fig. 3 (REC–K of BL) | `fig03_rec_k` |
//! | Fig. 4 (BL scaling with video length) | `fig04_bl_scaling` |
//! | Fig. 5 (REC–FPS, 4 algorithms × 3 datasets) | `fig05_rec_fps` |
//! | Fig. 6 (REC–FPS batched, B ∈ {10, 100}) | `fig06_rec_fps_batched` |
//! | Table II (FPS at REC = 0.80 / 0.93) | `table2_fps` |
//! | Fig. 7 (TMerge-B runtime & REC vs τ_max) | `fig07_tau_sweep` |
//! | Fig. 8 (ablation: BetaInit / ULB) | `fig08_ablation` |
//! | Fig. 9 (REC vs window length L) | `fig09_window_len` |
//! | Fig. 10 (REC–FPS vs thr_S) | `fig10_thr_s` |
//! | Fig. 11 (polyonymous rate ± TMerge) | `fig11_poly_rate` |
//! | Fig. 12 (IDF1/IDP/IDR ± TMerge) | `fig12_id_metrics` |
//! | Fig. 13 (query recall ± TMerge) | `fig13_query_recall` |
//! | §IV-E regret bound (extension) | `regret_curve` |
//!
//! Run everything: `cargo run --release -p tm-bench --bin run_all`.
//!
//! *Runtime* and *FPS* come from the deterministic simulated cost model
//! (`tm_reid::CostModel`, DESIGN.md §6); Criterion benches in `benches/`
//! measure real wall-clock for the algorithmic kernels.

pub mod experiments;
pub mod harness;
pub mod perf;
pub mod report;

pub use harness::{CurvePoint, DatasetRun, RunOutcome, VideoRun};
