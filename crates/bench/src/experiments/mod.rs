//! One module per paper exhibit. Every function takes an [`ExpConfig`] and
//! returns a serializable result (so the binaries can print and persist it
//! and the integration tests can assert on the shapes).

pub mod corr;
pub mod fig03;
pub mod fig04;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod quality;
pub mod regret;
pub mod sweep;

use tm_datasets::DatasetSpec;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpConfig {
    /// Quick mode: fewer videos and coarser parameter grids. Used by the
    /// integration tests; the result *shapes* are the same.
    pub quick: bool,
    /// Base seed for algorithm randomness (trials average over seeds
    /// derived from it).
    pub seed: u64,
    /// Number of independent trials averaged per stochastic algorithm
    /// (the paper averages 10; quick mode uses 1).
    pub trials: u64,
}

impl ExpConfig {
    /// Full scale (used by `run_all` and the per-figure binaries).
    pub fn full() -> Self {
        Self {
            quick: false,
            seed: 7,
            trials: 2,
        }
    }

    /// Quick scale for tests.
    pub fn quick() -> Self {
        Self {
            quick: true,
            seed: 7,
            trials: 1,
        }
    }

    /// Parses `--quick` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// Limits a dataset to the number of videos this scale uses.
    pub fn limit(&self, mut spec: DatasetSpec, full: usize) -> DatasetSpec {
        let n = if self.quick { 2.min(full) } else { full };
        spec.videos.truncate(n);
        spec
    }

    /// The τ_max grid for bandit sweeps.
    pub fn tau_grid(&self) -> Vec<u64> {
        if self.quick {
            vec![1_000, 5_000, 20_000]
        } else {
            vec![500, 1_000, 2_000, 5_000, 10_000, 20_000, 35_000, 50_000]
        }
    }

    /// The η grid for PS sweeps.
    pub fn eta_grid(&self) -> Vec<f64> {
        if self.quick {
            vec![0.0005, 0.01, 0.1]
        } else {
            vec![0.00005, 0.0002, 0.0005, 0.002, 0.01, 0.05, 0.25]
        }
    }
}
