//! Fig. 8 — ablation study: TMerge vs. TMerge without BetaInit vs. TMerge
//! without ULB (REC–FPS curves on MOT-17).

use crate::experiments::{sweep::averaged_outcome, ExpConfig};
use crate::harness::{CurvePoint, DatasetRun};
use serde::Serialize;
use std::collections::BTreeMap;
use tm_core::{TMerge, TMergeConfig};
use tm_datasets::mot17;
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;

/// The ablation curves, keyed by variant name.
#[derive(Debug, Clone, Serialize)]
pub struct Fig08 {
    /// Variant → REC–FPS points.
    pub curves: BTreeMap<String, Vec<CurvePoint>>,
}

/// The three variants of the figure.
pub fn variants() -> Vec<(&'static str, TMergeConfig)> {
    let base = TMergeConfig::default();
    vec![
        ("TMerge", base),
        (
            "TMerge w/o BetaInit",
            TMergeConfig {
                thr_s: None,
                ..base
            },
        ),
        (
            "TMerge w/o ULB",
            TMergeConfig {
                use_ulb: false,
                ..base
            },
        ),
    ]
}

/// Computes the ablation curves.
pub fn fig08(cfg: &ExpConfig) -> Fig08 {
    let spec = cfg.limit(mot17(), 7);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let cost = CostModel::calibrated();
    let mut curves = BTreeMap::new();
    let taus = cfg.tau_grid();
    for (name, variant) in variants() {
        let points = tm_par::par_map(&taus, |&tau| {
            let out = averaged_outcome(&ds, cost, Device::Cpu, cfg.trials, cfg.seed, &|seed| {
                Box::new(TMerge::new(TMergeConfig {
                    tau_max: tau,
                    seed,
                    ..variant
                }))
            });
            CurvePoint {
                param: format!("tau={tau}"),
                outcome: out,
            }
        });
        curves.insert(name.to_string(), points);
    }
    Fig08 { curves }
}
