//! REC–FPS sweeps: Fig. 5 (CPU algorithms), Fig. 6 (batched algorithms)
//! and Table II (FPS at fixed REC targets).

use crate::experiments::ExpConfig;
use crate::harness::{fps_at_rec, run_selector, CurvePoint, DatasetRun, RunOutcome};
use serde::Serialize;
use std::collections::BTreeMap;
use tm_core::{
    Baseline, CandidateSelector, LcbConfig, LowerConfidenceBound, ProportionalSampling, PsConfig,
    TMerge, TMergeConfig,
};
use tm_datasets::{kitti, mot17, pathtrack};
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;

/// The paper's default candidate budget (§V-A).
pub const K: f64 = 0.05;

/// REC–FPS curves of every algorithm on one dataset/device.
#[derive(Debug, Clone, Serialize)]
pub struct AlgoCurves {
    /// Dataset name.
    pub dataset: String,
    /// Device label (`CPU`, `GPU B=10`, ...).
    pub device: String,
    /// Algorithm name → sweep points.
    pub curves: BTreeMap<String, Vec<CurvePoint>>,
}

/// Averages an outcome over `trials` differently-seeded selector builds.
///
/// Trials fan out over worker threads and are folded in trial order, so the
/// average is bit-identical to a serial loop for any `TMERGE_THREADS`.
pub fn averaged_outcome(
    ds: &DatasetRun,
    cost: CostModel,
    device: Device,
    trials: u64,
    base_seed: u64,
    build: &(dyn Fn(u64) -> Box<dyn CandidateSelector> + Sync),
) -> RunOutcome {
    let seeds: Vec<u64> = (0..trials.max(1)).map(|t| base_seed + 1000 * t).collect();
    let outcomes = tm_par::par_map(&seeds, |&seed| {
        let selector = build(seed);
        run_selector(&ds.runs, selector.as_ref(), K, cost, device)
    });
    let mut acc: Option<RunOutcome> = None;
    for out in outcomes {
        acc = Some(match acc {
            None => out,
            Some(a) => RunOutcome {
                rec: a.rec + out.rec,
                fps: a.fps + out.fps,
                runtime_s: a.runtime_s + out.runtime_s,
                distance_evals: a.distance_evals + out.distance_evals,
                n_candidates: a.n_candidates + out.n_candidates,
                inferences: a.inferences + out.inferences,
                cache_hits: a.cache_hits + out.cache_hits,
            },
        });
    }
    let mut a = acc.expect("trials ≥ 1");
    let n = trials.max(1) as f64;
    a.rec /= n;
    a.fps /= n;
    a.runtime_s /= n;
    a.distance_evals = (a.distance_evals as f64 / n) as u64;
    a.n_candidates = (a.n_candidates as f64 / n) as usize;
    a
}

/// Builds the four algorithms' REC–FPS curves on one dataset/device.
///
/// Sweep points within each algorithm's grid fan out over worker threads;
/// points are collected in grid order, so curve JSON is identical to a
/// serial sweep.
pub fn rec_fps_curves(ds: &DatasetRun, device: Device, cfg: &ExpConfig) -> AlgoCurves {
    let cost = CostModel::calibrated();
    let mut curves: BTreeMap<String, Vec<CurvePoint>> = BTreeMap::new();

    // BL: exact — a single point.
    let bl = run_selector(&ds.runs, &Baseline, K, cost, device);
    curves.insert(
        "BL".into(),
        vec![CurvePoint {
            param: "exact".into(),
            outcome: bl,
        }],
    );

    // PS: sweep η.
    let etas = cfg.eta_grid();
    let ps_points = tm_par::par_map(&etas, |&eta| {
        let out = averaged_outcome(ds, cost, device, cfg.trials, cfg.seed, &|seed| {
            Box::new(ProportionalSampling::new(PsConfig { eta, seed }))
        });
        CurvePoint {
            param: format!("eta={eta}"),
            outcome: out,
        }
    });
    curves.insert("PS".into(), ps_points);

    // LCB: sweep τ_max.
    let taus = cfg.tau_grid();
    let lcb_points = tm_par::par_map(&taus, |&tau| {
        let out = averaged_outcome(ds, cost, device, cfg.trials, cfg.seed, &|seed| {
            Box::new(LowerConfidenceBound::new(LcbConfig {
                tau_max: tau,
                seed,
                record_history: false,
            }))
        });
        CurvePoint {
            param: format!("tau={tau}"),
            outcome: out,
        }
    });
    curves.insert("LCB".into(), lcb_points);

    // TMerge: sweep τ_max.
    let tm_points = tm_par::par_map(&taus, |&tau| {
        let out = averaged_outcome(ds, cost, device, cfg.trials, cfg.seed, &|seed| {
            Box::new(TMerge::new(TMergeConfig {
                tau_max: tau,
                seed,
                ..TMergeConfig::default()
            }))
        });
        CurvePoint {
            param: format!("tau={tau}"),
            outcome: out,
        }
    });
    curves.insert("TMerge".into(), tm_points);

    AlgoCurves {
        dataset: ds.name.to_string(),
        device: match device {
            Device::Cpu => "CPU".into(),
            Device::Gpu { batch } => format!("GPU B={batch}"),
        },
        curves,
    }
}

/// Fig. 5: CPU REC–FPS curves on the three datasets.
pub fn fig05(cfg: &ExpConfig) -> Vec<AlgoCurves> {
    let datasets = [
        cfg.limit(mot17(), 7),
        cfg.limit(kitti(), 8),
        cfg.limit(pathtrack(), if cfg.quick { 2 } else { 5 }),
    ];
    tm_par::par_map(&datasets, |spec| {
        let ds = DatasetRun::prepare(spec, TrackerKind::Tracktor, None);
        rec_fps_curves(&ds, Device::Cpu, cfg)
    })
}

/// Fig. 6: batched (`-B`) REC–FPS curves, `B ∈ {10, 100}`, on the three
/// datasets.
pub fn fig06(cfg: &ExpConfig) -> Vec<AlgoCurves> {
    let datasets = [
        cfg.limit(mot17(), 7),
        cfg.limit(kitti(), 8),
        cfg.limit(pathtrack(), if cfg.quick { 2 } else { 5 }),
    ];
    tm_par::par_map(&datasets, |spec| {
        let ds = DatasetRun::prepare(spec, TrackerKind::Tracktor, None);
        [10usize, 100]
            .iter()
            .map(|&batch| rec_fps_curves(&ds, Device::Gpu { batch }, cfg))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One Table II row: an algorithm's FPS at the two REC targets.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Method name (BL, PS, LCB, TMerge, and `-B` variants).
    pub method: String,
    /// FPS at REC = 0.80 (`None` → the method never reaches it, printed
    /// as `-` like the paper's BL row).
    pub fps_at_080: Option<f64>,
    /// FPS at REC = 0.93.
    pub fps_at_093: Option<f64>,
}

/// Table II: FPS at REC ∈ {0.80, 0.93} on MOT-17, CPU and GPU (B = 10,
/// 100).
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// CPU methods.
    pub cpu: Vec<Table2Row>,
    /// GPU methods per batch size.
    pub gpu: BTreeMap<String, Vec<Table2Row>>,
}

fn rows_from_curves(curves: &AlgoCurves, suffix: &str) -> Vec<Table2Row> {
    ["BL", "PS", "LCB", "TMerge"]
        .iter()
        .map(|name| -> Table2Row {
            let pts = &curves.curves[*name];
            // BL is exact and cannot trade accuracy for speed: it has a
            // single operating point, reported only at the highest REC
            // target it clears (the paper prints "-" for BL at 0.80).
            if *name == "BL" {
                let bl = &pts[0].outcome;
                return Table2Row {
                    method: format!("{name}{suffix}"),
                    fps_at_080: None,
                    fps_at_093: (bl.rec >= 0.93).then_some(bl.fps),
                };
            }
            Table2Row {
                method: format!("{name}{suffix}"),
                fps_at_080: fps_at_rec(pts, 0.80),
                fps_at_093: fps_at_rec(pts, 0.93),
            }
        })
        .collect()
}

/// Computes Table II. The three device configurations (CPU, GPU B=10,
/// GPU B=100) run concurrently against one prepared dataset.
pub fn table2(cfg: &ExpConfig) -> Table2 {
    let spec = cfg.limit(mot17(), 7);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let devices = [
        Device::Cpu,
        Device::Gpu { batch: 10 },
        Device::Gpu { batch: 100 },
    ];
    let all = tm_par::par_map(&devices, |&device| rec_fps_curves(&ds, device, cfg));
    let cpu = rows_from_curves(&all[0], "");
    let mut gpu = BTreeMap::new();
    for (curves, batch) in all[1..].iter().zip([10usize, 100]) {
        gpu.insert(format!("B={batch}"), rows_from_curves(curves, "-B"));
    }
    Table2 { cpu, gpu }
}
