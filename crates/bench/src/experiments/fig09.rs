//! Fig. 9 — sensitivity to the window length `L` on PathTrack.
//!
//! With `L < 2·L_max` (L_max = 1000 for the PathTrack-like suite) some
//! polyonymous pairs never co-occur in any window's pair set (Eq. 1) and
//! can never be found, depressing REC for both BL and TMerge; for
//! `L ≥ 2·L_max` both algorithms are insensitive to `L`.

use crate::experiments::{sweep::K, ExpConfig};
use crate::harness::{run_selector, DatasetRun};
use serde::Serialize;
use tm_core::{Baseline, TMerge, TMergeConfig};
use tm_datasets::pathtrack;
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;

/// REC of both algorithms at one window length.
#[derive(Debug, Clone, Serialize)]
pub struct WindowLenPoint {
    /// The window length `L`.
    pub window_len: u64,
    /// BL recall.
    pub bl_rec: f64,
    /// TMerge recall.
    pub tmerge_rec: f64,
    /// Total pairs formed at this `L` (diagnostic).
    pub n_pairs: usize,
}

/// Computes the `L` sensitivity series.
pub fn fig09(cfg: &ExpConfig) -> Vec<WindowLenPoint> {
    let spec = cfg.limit(pathtrack(), if cfg.quick { 2 } else { 4 });
    let lens: Vec<u64> = if cfg.quick {
        vec![1_000, 2_000]
    } else {
        vec![1_000, 1_500, 2_000, 3_000, 4_000]
    };
    let cost = CostModel::calibrated();
    tm_par::par_map(&lens, |&window_len| {
        let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, Some(window_len));
        let bl = run_selector(&ds.runs, &Baseline, K, cost, Device::Cpu);
        let tm = TMerge::new(TMergeConfig {
            tau_max: 10_000,
            seed: cfg.seed,
            ..TMergeConfig::default()
        });
        let tmerge = run_selector(&ds.runs, &tm, K, cost, Device::Cpu);
        WindowLenPoint {
            window_len,
            bl_rec: bl.rec,
            tmerge_rec: tmerge.rec,
            n_pairs: ds.runs.iter().map(|r| r.n_pairs()).sum(),
        }
    })
}
