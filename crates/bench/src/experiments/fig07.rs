//! Fig. 7 — Runtime and REC of TMerge-B (B = 10) as τ_max grows, on
//! MOT-17, with the BL-B total runtime as the reference line.

use crate::experiments::{sweep::K, ExpConfig};
use crate::harness::{run_selector, DatasetRun};
use serde::Serialize;
use tm_core::{Baseline, TMerge, TMergeConfig};
use tm_datasets::mot17;
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;

/// One τ_max point.
#[derive(Debug, Clone, Serialize)]
pub struct TauPoint {
    /// The iteration budget.
    pub tau_max: u64,
    /// Recall achieved.
    pub rec: f64,
    /// Simulated runtime in seconds (all videos).
    pub runtime_s: f64,
    /// Feature-cache hit rate (the reuse effect the paper credits for the
    /// flattening runtime).
    pub hit_rate: f64,
}

/// The figure's data: the TMerge-B series plus the BL-B reference.
#[derive(Debug, Clone, Serialize)]
pub struct Fig07 {
    /// TMerge-B (B = 10) points.
    pub points: Vec<TauPoint>,
    /// Total BL-B runtime on the same videos (the paper reports 2762 s).
    pub bl_b_runtime_s: f64,
    /// BL-B recall (the ceiling TMerge approaches).
    pub bl_rec: f64,
}

/// Computes the τ_max sweep.
pub fn fig07(cfg: &ExpConfig) -> Fig07 {
    let spec = cfg.limit(mot17(), 7);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let device = Device::Gpu { batch: 10 };
    let cost = CostModel::calibrated();
    let taus: Vec<u64> = if cfg.quick {
        vec![1_000, 10_000]
    } else {
        vec![500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000]
    };
    let points = tm_par::par_map(&taus, |&tau| {
        // Re-run per point with a fresh session (hit-rate diagnostics
        // need per-point stats, so no trial averaging here; REC noise
        // across videos is already averaged).
        let tm = TMerge::new(TMergeConfig {
            tau_max: tau,
            seed: cfg.seed,
            ..TMergeConfig::default()
        });
        let out = run_selector(&ds.runs, &tm, K, cost, device);
        TauPoint {
            tau_max: tau,
            rec: out.rec,
            runtime_s: out.runtime_s,
            hit_rate: out.hit_rate(),
        }
    });
    let bl = run_selector(&ds.runs, &Baseline, K, cost, device);
    Fig07 {
        points,
        bl_b_runtime_s: bl.runtime_s,
        bl_rec: bl.rec,
    }
}
