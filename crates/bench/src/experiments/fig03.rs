//! Fig. 3 — the REC–K curves of the exact baseline on the three datasets.
//!
//! For each video the exact ranking (Eq. 6) is computed once; REC at every
//! K is then read off the ranking prefix, exactly as the paper derives the
//! trade-off curve.

use crate::experiments::ExpConfig;
use crate::harness::{DatasetRun, VideoRun};
use serde::Serialize;
use tm_core::{score::exact_scores, selector::top_m_by_score, SelectionInput};
use tm_datasets::{kitti, mot17, pathtrack};
use tm_metrics::recall;
use tm_reid::{CostModel, Device, ReidSession};

/// One dataset's REC–K series.
#[derive(Debug, Clone, Serialize)]
pub struct RecKCurve {
    /// Dataset name.
    pub dataset: String,
    /// `(K, REC)` points.
    pub points: Vec<(f64, f64)>,
}

/// The K grid of the figure.
pub fn k_grid() -> Vec<f64> {
    vec![0.005, 0.01, 0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.2]
}

fn rec_k_for_video(run: &VideoRun, ks: &[f64]) -> Vec<f64> {
    let model = run.video.model();
    // Accuracy-only pass: the cost model is irrelevant to REC–K.
    let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    // Exact ranking per window, then per-K candidate prefixes.
    let mut per_window: Vec<Vec<(tm_types::TrackPair, f64)>> = Vec::new();
    for wp in &run.windows {
        if wp.pairs.is_empty() {
            continue;
        }
        let input = SelectionInput {
            pairs: &wp.pairs,
            tracks: &run.video.tracks,
            k: 1.0,
            voi: None,
        };
        per_window.push(exact_scores(&input, &mut session).expect("valid pairs"));
    }
    ks.iter()
        .map(|&k| {
            let mut candidates = Vec::new();
            for scores in &per_window {
                let m = ((k * scores.len() as f64).ceil() as usize).min(scores.len());
                candidates.extend(top_m_by_score(scores, m));
            }
            recall(candidates.iter(), &run.truth)
        })
        .collect()
}

/// Computes the REC–K curves.
pub fn fig03(cfg: &ExpConfig) -> Vec<RecKCurve> {
    let ks = k_grid();
    let datasets = [
        cfg.limit(mot17(), 7),
        cfg.limit(kitti(), 8),
        cfg.limit(pathtrack(), if cfg.quick { 2 } else { 5 }),
    ];
    tm_par::par_map(&datasets, |spec| {
        let ds = DatasetRun::prepare(spec, tm_track::TrackerKind::Tracktor, None);
        // Average per-video REC at each K (videos without polyonymous
        // pairs contribute nothing to the average). Videos fan out over
        // threads; the fold runs in video order for determinism.
        let per_video = tm_par::par_map(&ds.runs, |run| {
            if run.truth.is_empty() {
                None
            } else {
                Some(rec_k_for_video(run, &ks))
            }
        });
        let mut sums = vec![0.0f64; ks.len()];
        let mut n = 0usize;
        for recs in per_video.into_iter().flatten() {
            for (s, r) in sums.iter_mut().zip(recs) {
                *s += r;
            }
            n += 1;
        }
        RecKCurve {
            dataset: ds.name.to_string(),
            points: ks
                .iter()
                .zip(&sums)
                .map(|(&k, &s)| (k, if n == 0 { 1.0 } else { s / n as f64 }))
                .collect(),
        }
    })
}
