//! §IV-C correlation analysis (footnote 4): the Pearson correlation of the
//! exact track-pair score with the *spatial* distance `DisS` (≥ 0.3 in the
//! paper, motivating BetaInit) and with the *temporal* distance `DisT`
//! (< 0.1, which is why BetaInit ignores it).

use crate::experiments::ExpConfig;
use crate::harness::DatasetRun;
use serde::Serialize;
use tm_core::{score::exact_scores, score::PairBoxes, SelectionInput};
use tm_datasets::{kitti, mot17, pathtrack};
use tm_metrics::pearson;
use tm_reid::{CostModel, Device, ReidSession};
use tm_track::TrackerKind;

/// One dataset's correlations.
#[derive(Debug, Clone, Serialize)]
pub struct CorrRow {
    /// Dataset name.
    pub dataset: String,
    /// Pearson correlation of score with spatial distance `DisS`.
    pub corr_spatial: f64,
    /// Pearson correlation of score with temporal distance `DisT`.
    pub corr_temporal: f64,
    /// Fraction of *polyonymous* pairs with `DisS < thr_S` (= 200) — the
    /// statistic BetaInit's warm start actually relies on.
    pub poly_within_thr: f64,
    /// Fraction of *distinct* pairs with `DisS < thr_S`.
    pub distinct_within_thr: f64,
    /// Sample size (pairs pooled over videos).
    pub n_pairs: usize,
}

/// Computes score–DisS and score–DisT correlations on the three datasets.
pub fn corr_analysis(cfg: &ExpConfig) -> Vec<CorrRow> {
    let datasets = [
        cfg.limit(mot17(), 7),
        cfg.limit(kitti(), 8),
        cfg.limit(pathtrack(), if cfg.quick { 1 } else { 3 }),
    ];
    tm_par::par_map(&datasets, |spec| {
        let ds = DatasetRun::prepare(spec, TrackerKind::Tracktor, None);
        const THR_S: f64 = 200.0;
        // Per-video samples, computed concurrently and concatenated in
        // video order (the serial pooling order, so Pearson is identical).
        struct VideoSamples {
            scores: Vec<f64>,
            dis_s: Vec<f64>,
            dis_t: Vec<f64>,
            poly_hit: (usize, usize), // (within thr, total)
            distinct_hit: (usize, usize),
        }
        let per_video = tm_par::par_map(&ds.runs, |run| {
            let model = run.video.model();
            let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
            let mut v = VideoSamples {
                scores: Vec::new(),
                dis_s: Vec::new(),
                dis_t: Vec::new(),
                poly_hit: (0, 0),
                distinct_hit: (0, 0),
            };
            for wp in &run.windows {
                if wp.pairs.is_empty() {
                    continue;
                }
                let input = SelectionInput {
                    pairs: &wp.pairs,
                    tracks: &run.video.tracks,
                    k: 1.0,
                    voi: None,
                };
                for (pair, score) in exact_scores(&input, &mut session).expect("valid") {
                    let pb = PairBoxes::resolve(pair, &run.video.tracks).expect("valid");
                    let (Some(s), Some(t)) = (pb.spatial_distance(), pb.temporal_distance()) else {
                        continue;
                    };
                    v.scores.push(score);
                    v.dis_s.push(s);
                    v.dis_t.push(t as f64);
                    let bucket = if run.truth.contains(&pair) {
                        &mut v.poly_hit
                    } else {
                        &mut v.distinct_hit
                    };
                    bucket.1 += 1;
                    if s < THR_S {
                        bucket.0 += 1;
                    }
                }
            }
            v
        });
        let mut scores = Vec::new();
        let mut dis_s = Vec::new();
        let mut dis_t = Vec::new();
        let mut poly_hit = (0usize, 0usize);
        let mut distinct_hit = (0usize, 0usize);
        for v in per_video {
            scores.extend(v.scores);
            dis_s.extend(v.dis_s);
            dis_t.extend(v.dis_t);
            poly_hit.0 += v.poly_hit.0;
            poly_hit.1 += v.poly_hit.1;
            distinct_hit.0 += v.distinct_hit.0;
            distinct_hit.1 += v.distinct_hit.1;
        }
        CorrRow {
            dataset: ds.name.to_string(),
            corr_spatial: pearson(&scores, &dis_s).unwrap_or(0.0),
            corr_temporal: pearson(&scores, &dis_t).unwrap_or(0.0),
            poly_within_thr: poly_hit.0 as f64 / poly_hit.1.max(1) as f64,
            distinct_within_thr: distinct_hit.0 as f64 / distinct_hit.1.max(1) as f64,
            n_pairs: scores.len(),
        }
    })
}
