//! End-to-end quality experiments: Fig. 11 (polyonymous rate per tracker
//! ± TMerge), Fig. 12 (identity metrics ± TMerge) and Fig. 13 (query
//! recall ± TMerge), all on the MOT-17-like suite.
//!
//! Candidate merges are verified before application (the paper's "further
//! human inspection", §I/§III) by the exact correspondence oracle — the
//! simulator-world equivalent of a human confirming that two fragments show
//! the same object.

use crate::experiments::{sweep::K, ExpConfig};
use crate::harness::VideoRun;
use serde::Serialize;
use tm_core::{run_pipeline, PipelineConfig, SelectorKind, TMergeConfig};
use tm_datasets::{mot17, prepare, DatasetSpec};
use tm_metrics::{
    clear_mot, hota, identity_metrics, polyonymous_rate, ClearMotConfig, Correspondence,
};
use tm_query::{co_occurrence_recall, count_recall};
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;
use tm_types::TrackSet;

fn pipeline_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        window_len: 2000,
        k: K,
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 10_000,
            seed,
            ..TMergeConfig::default()
        }),
        device: Device::Gpu { batch: 10 },
        cost: CostModel::calibrated(),
        gate: tm_reid::GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    }
}

/// Runs the verified TMerge pipeline on a prepared video, returning the
/// merged track set.
fn merged_tracks(run: &VideoRun, seed: u64) -> TrackSet {
    let model = run.video.model();
    let corr = &run.video.correspondence;
    let verifier = |p: &tm_types::TrackPair| corr.is_polyonymous(p);
    run_pipeline(
        &run.video.tracks,
        run.video.n_frames,
        &model,
        &pipeline_config(seed),
        Some(&verifier),
    )
    .expect("valid pipeline config")
    .merged
}

/// Fig. 11 — polyonymous rate of a tracker's output, before and after
/// TMerge.
#[derive(Debug, Clone, Serialize)]
pub struct PolyRateRow {
    /// Tracker name.
    pub tracker: String,
    /// `|P*| / |P|` without TMerge.
    pub rate_without: f64,
    /// `|P* \ P̂*| / |P|` with TMerge (Eq. in §V-G).
    pub rate_with: f64,
}

/// Computes Fig. 11 for the trackers the paper compares (Tracktor,
/// DeepSORT, UMA).
pub fn fig11(cfg: &ExpConfig) -> Vec<PolyRateRow> {
    let spec = cfg.limit(mot17(), 7);
    let trackers = [
        TrackerKind::Tracktor,
        TrackerKind::DeepSort,
        TrackerKind::Uma,
    ];
    tm_par::par_map(&trackers, |&kind| {
        let per_video = tm_par::par_map(&spec.videos, |video| {
            let run = VideoRun::new(prepare(video, kind), spec.window_len);
            let model = run.video.model();
            let report = run_pipeline(
                &run.video.tracks,
                run.video.n_frames,
                &model,
                &pipeline_config(cfg.seed),
                None,
            )
            .expect("valid pipeline config");
            let found: std::collections::BTreeSet<_> = report.candidates.iter().copied().collect();
            (
                run.n_pairs(),
                run.truth.len(),
                run.truth.difference(&found).count(),
            )
        });
        let mut n_pairs = 0usize;
        let mut n_poly = 0usize;
        let mut n_poly_left = 0usize;
        for (pairs, poly, left) in per_video {
            n_pairs += pairs;
            n_poly += poly;
            n_poly_left += left;
        }
        PolyRateRow {
            tracker: kind.name().to_string(),
            rate_without: polyonymous_rate(n_poly, n_pairs),
            rate_with: polyonymous_rate(n_poly_left, n_pairs),
        }
    })
}

/// Fig. 12 — identity metrics of Tracktor on MOT-17 with and without
/// TMerge (plus MOTA/IDS from CLEAR-MOT as supporting numbers).
#[derive(Debug, Clone, Serialize)]
pub struct IdMetricsResult {
    /// IDF1/IDP/IDR without TMerge.
    pub without: IdTriple,
    /// IDF1/IDP/IDR with TMerge.
    pub with: IdTriple,
    /// ID switches without / with TMerge (CLEAR-MOT).
    pub id_switches: (u64, u64),
    /// MOTA without / with TMerge.
    pub mota: (f64, f64),
    /// HOTA without / with TMerge (extension metric; fragmentation moves
    /// its association component only).
    pub hota: (f64, f64),
    /// HOTA's association accuracy AssA without / with TMerge.
    pub ass_a: (f64, f64),
}

/// A compact IDF1/IDP/IDR triple.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IdTriple {
    /// Identity F1.
    pub idf1: f64,
    /// Identity precision.
    pub idp: f64,
    /// Identity recall.
    pub idr: f64,
}

/// Computes Fig. 12.
pub fn fig12(cfg: &ExpConfig) -> IdMetricsResult {
    let spec = cfg.limit(mot17(), 7);
    let n = spec.videos.len() as f64;
    // Per-video metric pairs (without, with), computed concurrently and
    // folded in video order.
    let per_video = tm_par::par_map(&spec.videos, |video| {
        let run = VideoRun::new(prepare(video, TrackerKind::Tracktor), spec.window_len);
        let merged = merged_tracks(&run, cfg.seed);
        [&run.video.tracks, &merged].map(|tracks| {
            let id = identity_metrics(&run.video.gt_tracks, tracks, 0.5);
            let cm = clear_mot(&run.video.gt_tracks, tracks, ClearMotConfig::default());
            let h = hota(&run.video.gt_tracks, tracks);
            (id, cm, h)
        })
    });
    let mut acc = [(0.0, 0.0, 0.0); 2];
    let mut idsw = [0u64; 2];
    let mut mota = [0.0f64; 2];
    let mut hota_acc = [0.0f64; 2];
    let mut ass_acc = [0.0f64; 2];
    for both in per_video {
        for (i, (id, cm, h)) in both.into_iter().enumerate() {
            acc[i].0 += id.idf1;
            acc[i].1 += id.idp;
            acc[i].2 += id.idr;
            idsw[i] += cm.id_switches;
            mota[i] += cm.mota;
            hota_acc[i] += h.hota;
            ass_acc[i] += h.ass_a;
        }
    }
    let triple = |(a, b, c): (f64, f64, f64)| IdTriple {
        idf1: a / n,
        idp: b / n,
        idr: c / n,
    };
    IdMetricsResult {
        without: triple(acc[0]),
        with: triple(acc[1]),
        id_switches: (idsw[0], idsw[1]),
        mota: (mota[0] / n, mota[1] / n),
        hota: (hota_acc[0] / n, hota_acc[1] / n),
        ass_a: (ass_acc[0] / n, ass_acc[1] / n),
    }
}

/// Fig. 13 — recall of the two §V-H queries with and without TMerge.
#[derive(Debug, Clone, Serialize)]
pub struct QueryRecallResult {
    /// *Count* query (objects visible > 200 frames): recall without /
    /// with TMerge.
    pub count: (f64, f64),
    /// *Co-occurring Objects* (3 objects jointly > 50 frames): recall
    /// without / with TMerge.
    pub co_occurrence: (f64, f64),
}

/// Count-query duration threshold (frames), as in the paper's example.
pub const COUNT_MIN_FRAMES: u64 = 200;
/// Co-occurrence group size, as in the paper's example.
pub const CO_OCCUR_GROUP: usize = 3;
/// Co-occurrence minimum joint duration (frames).
pub const CO_OCCUR_MIN_FRAMES: u64 = 50;

/// Computes Fig. 13.
pub fn fig13(cfg: &ExpConfig) -> QueryRecallResult {
    let spec: DatasetSpec = cfg.limit(mot17(), 7);
    let n = spec.videos.len() as f64;
    let per_video = tm_par::par_map(&spec.videos, |video| {
        let run = VideoRun::new(prepare(video, TrackerKind::Tracktor), spec.window_len);
        let merged = merged_tracks(&run, cfg.seed);
        // The merged set changes ids; recompute its attribution.
        let merged_corr = Correspondence::from_tracks(&merged, 0.5);
        let gt = &run.video.gt_tracks;
        let count = (
            count_recall(
                &run.video.tracks,
                gt,
                COUNT_MIN_FRAMES,
                run.video.correspondence.as_map(),
            ),
            count_recall(&merged, gt, COUNT_MIN_FRAMES, merged_corr.as_map()),
        );
        let co = (
            co_occurrence_recall(
                &run.video.tracks,
                gt,
                CO_OCCUR_GROUP,
                CO_OCCUR_MIN_FRAMES,
                run.video.correspondence.as_map(),
            ),
            co_occurrence_recall(
                &merged,
                gt,
                CO_OCCUR_GROUP,
                CO_OCCUR_MIN_FRAMES,
                merged_corr.as_map(),
            ),
        );
        (count, co)
    });
    let mut count = (0.0, 0.0);
    let mut co = (0.0, 0.0);
    for ((c0, c1), (o0, o1)) in per_video {
        count.0 += c0;
        count.1 += c1;
        co.0 += o0;
        co.1 += o1;
    }
    QueryRecallResult {
        count: (count.0 / n, count.1 / n),
        co_occurrence: (co.0 / n, co.1 / n),
    }
}
