//! End-to-end quality experiments: Fig. 11 (polyonymous rate per tracker
//! ± TMerge), Fig. 12 (identity metrics ± TMerge) and Fig. 13 (query
//! recall ± TMerge), all on the MOT-17-like suite.
//!
//! Candidate merges are verified before application (the paper's "further
//! human inspection", §I/§III) by the exact correspondence oracle — the
//! simulator-world equivalent of a human confirming that two fragments show
//! the same object.

use crate::experiments::{sweep::K, ExpConfig};
use crate::harness::VideoRun;
use serde::Serialize;
use tm_core::{run_pipeline, PipelineConfig, SelectorKind, TMergeConfig};
use tm_datasets::{mot17, prepare, DatasetSpec};
use tm_metrics::{clear_mot, hota, identity_metrics, polyonymous_rate, ClearMotConfig, Correspondence};
use tm_query::{co_occurrence_recall, count_recall};
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;
use tm_types::TrackSet;

fn pipeline_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        window_len: 2000,
        k: K,
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 10_000,
            seed,
            ..TMergeConfig::default()
        }),
        device: Device::Gpu { batch: 10 },
        cost: CostModel::calibrated(),
    }
}

/// Runs the verified TMerge pipeline on a prepared video, returning the
/// merged track set.
fn merged_tracks(run: &VideoRun, seed: u64) -> TrackSet {
    let model = run.video.model();
    let corr = &run.video.correspondence;
    let verifier = |p: &tm_types::TrackPair| corr.is_polyonymous(p);
    run_pipeline(
        &run.video.tracks,
        run.video.n_frames,
        &model,
        &pipeline_config(seed),
        Some(&verifier),
    )
    .expect("valid pipeline config")
    .merged
}

/// Fig. 11 — polyonymous rate of a tracker's output, before and after
/// TMerge.
#[derive(Debug, Clone, Serialize)]
pub struct PolyRateRow {
    /// Tracker name.
    pub tracker: String,
    /// `|P*| / |P|` without TMerge.
    pub rate_without: f64,
    /// `|P* \ P̂*| / |P|` with TMerge (Eq. in §V-G).
    pub rate_with: f64,
}

/// Computes Fig. 11 for the trackers the paper compares (Tracktor,
/// DeepSORT, UMA).
pub fn fig11(cfg: &ExpConfig) -> Vec<PolyRateRow> {
    let spec = cfg.limit(mot17(), 7);
    [TrackerKind::Tracktor, TrackerKind::DeepSort, TrackerKind::Uma]
        .into_iter()
        .map(|kind| {
            let mut n_pairs = 0usize;
            let mut n_poly = 0usize;
            let mut n_poly_left = 0usize;
            for video in &spec.videos {
                let run = VideoRun::new(prepare(video, kind), spec.window_len);
                let model = run.video.model();
                let report = run_pipeline(
                    &run.video.tracks,
                    run.video.n_frames,
                    &model,
                    &pipeline_config(cfg.seed),
                    None,
                )
                .expect("valid pipeline config");
                let found: std::collections::BTreeSet<_> =
                    report.candidates.iter().copied().collect();
                n_pairs += run.n_pairs();
                n_poly += run.truth.len();
                n_poly_left += run.truth.difference(&found).count();
            }
            PolyRateRow {
                tracker: kind.name().to_string(),
                rate_without: polyonymous_rate(n_poly, n_pairs),
                rate_with: polyonymous_rate(n_poly_left, n_pairs),
            }
        })
        .collect()
}

/// Fig. 12 — identity metrics of Tracktor on MOT-17 with and without
/// TMerge (plus MOTA/IDS from CLEAR-MOT as supporting numbers).
#[derive(Debug, Clone, Serialize)]
pub struct IdMetricsResult {
    /// IDF1/IDP/IDR without TMerge.
    pub without: IdTriple,
    /// IDF1/IDP/IDR with TMerge.
    pub with: IdTriple,
    /// ID switches without / with TMerge (CLEAR-MOT).
    pub id_switches: (u64, u64),
    /// MOTA without / with TMerge.
    pub mota: (f64, f64),
    /// HOTA without / with TMerge (extension metric; fragmentation moves
    /// its association component only).
    pub hota: (f64, f64),
    /// HOTA's association accuracy AssA without / with TMerge.
    pub ass_a: (f64, f64),
}

/// A compact IDF1/IDP/IDR triple.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IdTriple {
    /// Identity F1.
    pub idf1: f64,
    /// Identity precision.
    pub idp: f64,
    /// Identity recall.
    pub idr: f64,
}

/// Computes Fig. 12.
pub fn fig12(cfg: &ExpConfig) -> IdMetricsResult {
    let spec = cfg.limit(mot17(), 7);
    let mut acc = [(0.0, 0.0, 0.0); 2];
    let mut idsw = [0u64; 2];
    let mut mota = [0.0f64; 2];
    let mut hota_acc = [0.0f64; 2];
    let mut ass_acc = [0.0f64; 2];
    let n = spec.videos.len() as f64;
    for video in &spec.videos {
        let run = VideoRun::new(prepare(video, TrackerKind::Tracktor), spec.window_len);
        let merged = merged_tracks(&run, cfg.seed);
        for (i, tracks) in [&run.video.tracks, &merged].into_iter().enumerate() {
            let id = identity_metrics(&run.video.gt_tracks, tracks, 0.5);
            acc[i].0 += id.idf1;
            acc[i].1 += id.idp;
            acc[i].2 += id.idr;
            let cm = clear_mot(&run.video.gt_tracks, tracks, ClearMotConfig::default());
            idsw[i] += cm.id_switches;
            mota[i] += cm.mota;
            let h = hota(&run.video.gt_tracks, tracks);
            hota_acc[i] += h.hota;
            ass_acc[i] += h.ass_a;
        }
    }
    let triple = |(a, b, c): (f64, f64, f64)| IdTriple {
        idf1: a / n,
        idp: b / n,
        idr: c / n,
    };
    IdMetricsResult {
        without: triple(acc[0]),
        with: triple(acc[1]),
        id_switches: (idsw[0], idsw[1]),
        mota: (mota[0] / n, mota[1] / n),
        hota: (hota_acc[0] / n, hota_acc[1] / n),
        ass_a: (ass_acc[0] / n, ass_acc[1] / n),
    }
}

/// Fig. 13 — recall of the two §V-H queries with and without TMerge.
#[derive(Debug, Clone, Serialize)]
pub struct QueryRecallResult {
    /// *Count* query (objects visible > 200 frames): recall without /
    /// with TMerge.
    pub count: (f64, f64),
    /// *Co-occurring Objects* (3 objects jointly > 50 frames): recall
    /// without / with TMerge.
    pub co_occurrence: (f64, f64),
}

/// Count-query duration threshold (frames), as in the paper's example.
pub const COUNT_MIN_FRAMES: u64 = 200;
/// Co-occurrence group size, as in the paper's example.
pub const CO_OCCUR_GROUP: usize = 3;
/// Co-occurrence minimum joint duration (frames).
pub const CO_OCCUR_MIN_FRAMES: u64 = 50;

/// Computes Fig. 13.
pub fn fig13(cfg: &ExpConfig) -> QueryRecallResult {
    let spec: DatasetSpec = cfg.limit(mot17(), 7);
    let mut count = (0.0, 0.0);
    let mut co = (0.0, 0.0);
    let n = spec.videos.len() as f64;
    for video in &spec.videos {
        let run = VideoRun::new(prepare(video, TrackerKind::Tracktor), spec.window_len);
        let merged = merged_tracks(&run, cfg.seed);
        // The merged set changes ids; recompute its attribution.
        let merged_corr = Correspondence::from_tracks(&merged, 0.5);
        let gt = &run.video.gt_tracks;
        count.0 += count_recall(
            &run.video.tracks,
            gt,
            COUNT_MIN_FRAMES,
            run.video.correspondence.as_map(),
        );
        count.1 += count_recall(&merged, gt, COUNT_MIN_FRAMES, merged_corr.as_map());
        co.0 += co_occurrence_recall(
            &run.video.tracks,
            gt,
            CO_OCCUR_GROUP,
            CO_OCCUR_MIN_FRAMES,
            run.video.correspondence.as_map(),
        );
        co.1 += co_occurrence_recall(
            &merged,
            gt,
            CO_OCCUR_GROUP,
            CO_OCCUR_MIN_FRAMES,
            merged_corr.as_map(),
        );
    }
    QueryRecallResult {
        count: (count.0 / n, count.1 / n),
        co_occurrence: (co.0 / n, co.1 / n),
    }
}
