//! Fig. 4 — baseline runtime and accumulated track pairs as the video
//! length grows (PathTrack-style scenes, L = 2000).
//!
//! Demonstrates why BL cannot scale: both the pair count and the (simulated)
//! runtime grow steeply and in lockstep with the video length.

use crate::experiments::ExpConfig;
use crate::harness::VideoRun;
use serde::Serialize;
use tm_core::Baseline;
use tm_datasets::{pathtrack, prepare};
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;

/// One point of the scaling series.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Video length in frames.
    pub n_frames: u64,
    /// Track pairs accumulated across windows.
    pub n_pairs: usize,
    /// Simulated BL runtime in seconds.
    pub runtime_s: f64,
}

/// Computes the scaling series.
pub fn fig04(cfg: &ExpConfig) -> Vec<ScalingPoint> {
    let lengths: Vec<u64> = if cfg.quick {
        vec![1_000, 2_000]
    } else {
        vec![2_000, 4_000, 6_000, 8_000, 10_000]
    };
    let base = pathtrack();
    tm_par::par_map(&lengths, |&n_frames| {
        // Scale the cast with the length so scene density stays fixed
        // (a longer video sees proportionally more passers-by).
        let mut spec = base.videos[0].clone();
        spec.scene.n_frames = n_frames;
        spec.scene.n_actors = (40 * n_frames / 3600).max(8) as usize;
        let run = VideoRun::new(prepare(&spec, TrackerKind::Tracktor), base.window_len);
        let outcome = crate::harness::run_selector(
            std::slice::from_ref(&run),
            &Baseline,
            crate::experiments::sweep::K,
            CostModel::calibrated(),
            Device::Cpu,
        );
        ScalingPoint {
            n_frames,
            n_pairs: run.n_pairs(),
            runtime_s: outcome.runtime_s,
        }
    })
}
