//! §IV-E — the average-regret analysis (an extension exhibit: the paper
//! states the `O(√(|P_c|·ln τ / τ))` bound; this experiment measures the
//! empirical average regret and prints it against the bound's shape).

use crate::experiments::ExpConfig;
use crate::harness::DatasetRun;
use serde::Serialize;
use tm_core::selector::CandidateSelector;
use tm_core::{score::exact_scores, SelectionInput, TMerge, TMergeConfig};
use tm_datasets::mot17;
use tm_reid::{CostModel, Device, ReidSession};
use tm_track::TrackerKind;

/// One τ point of the regret curve.
#[derive(Debug, Clone, Serialize)]
pub struct RegretPoint {
    /// Iterations executed.
    pub tau: u64,
    /// Empirical average regret `R(τ)` (Eq. in §IV-E).
    pub avg_regret: f64,
    /// The `√(|P_c|·ln τ / τ)` bound shape (unit constant).
    pub bound_shape: f64,
}

/// The regret series of one window.
#[derive(Debug, Clone, Serialize)]
pub struct RegretCurve {
    /// Number of pairs in the window.
    pub n_pairs: usize,
    /// The minimum normalized exact score `s̃_min`.
    pub s_min: f64,
    /// Sampled points of `R(τ)`.
    pub points: Vec<RegretPoint>,
}

/// Measures the empirical average regret of TMerge on the first MOT-17
/// window.
pub fn regret_curve(cfg: &ExpConfig) -> RegretCurve {
    let spec = cfg.limit(mot17(), 1);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let run = &ds.runs[0];
    let wp = run
        .windows
        .iter()
        .find(|w| !w.pairs.is_empty())
        .expect("MOT-17 video has pairs");
    let input = SelectionInput {
        pairs: &wp.pairs,
        tracks: &run.video.tracks,
        k: 0.05,
        voi: None,
    };
    let model = run.video.model();

    // Ground-truth s̃_min from exact scores (free session — this is the
    // analysis harness, not the algorithm).
    let mut oracle = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let scores = exact_scores(&input, &mut oracle).expect("valid pairs");
    let s_min = scores.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);

    // A single long TMerge run with history recording.
    let tau_max = if cfg.quick { 5_000 } else { 50_000 };
    let tm = TMerge::new(TMergeConfig {
        tau_max,
        seed: cfg.seed,
        use_ulb: false, // keep sampling alive for the whole horizon
        record_history: true,
        ..TMergeConfig::default()
    });
    let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let result = tm
        .select(&input, &mut session)
        .expect("clean backend: selection cannot fail");

    // Prefix means of (d̃_τ − s̃_min), sampled at log-spaced τ.
    let mut points = Vec::new();
    let mut cum = 0.0;
    let mut next_sample = 10u64;
    for (i, d) in result.history.iter().enumerate() {
        cum += d - s_min;
        let tau = (i + 1) as u64;
        if tau == next_sample || i + 1 == result.history.len() {
            points.push(RegretPoint {
                tau,
                avg_regret: cum / tau as f64,
                bound_shape: (wp.pairs.len() as f64 * (tau.max(2) as f64).ln() / tau as f64).sqrt(),
            });
            next_sample = (next_sample as f64 * 1.6).ceil() as u64;
        }
    }
    RegretCurve {
        n_pairs: wp.pairs.len(),
        s_min,
        points,
    }
}
