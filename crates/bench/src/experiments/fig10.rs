//! Fig. 10 — sensitivity to the BetaInit threshold `thr_S` (REC–FPS on
//! MOT-17 for thr_S ∈ {off, 100, 200, 300}).

use crate::experiments::{sweep::averaged_outcome, ExpConfig};
use crate::harness::{CurvePoint, DatasetRun};
use serde::Serialize;
use std::collections::BTreeMap;
use tm_core::{TMerge, TMergeConfig};
use tm_datasets::mot17;
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;

/// REC–FPS curves keyed by the `thr_S` label.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// `thr_S` label → points.
    pub curves: BTreeMap<String, Vec<CurvePoint>>,
}

/// Computes the thr_S sensitivity curves.
pub fn fig10(cfg: &ExpConfig) -> Fig10 {
    let spec = cfg.limit(mot17(), 7);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let cost = CostModel::calibrated();
    let settings: Vec<(String, Option<f64>)> = vec![
        ("off".into(), None),
        ("thr_S=100".into(), Some(100.0)),
        ("thr_S=200".into(), Some(200.0)),
        ("thr_S=300".into(), Some(300.0)),
    ];
    // All (thr_S, τ) combinations fan out together; each setting's points
    // are collected in grid order.
    let taus = cfg.tau_grid();
    let per_setting = tm_par::par_map(&settings, |(_, thr_s)| {
        tm_par::par_map(&taus, |&tau| {
            let out = averaged_outcome(&ds, cost, Device::Cpu, cfg.trials, cfg.seed, &|seed| {
                Box::new(TMerge::new(TMergeConfig {
                    tau_max: tau,
                    thr_s: *thr_s,
                    seed,
                    ..TMergeConfig::default()
                }))
            });
            CurvePoint {
                param: format!("tau={tau}"),
                outcome: out,
            }
        })
    });
    let mut curves = BTreeMap::new();
    for ((label, _), points) in settings.iter().zip(per_setting) {
        curves.insert(label.clone(), points);
    }
    Fig10 { curves }
}
