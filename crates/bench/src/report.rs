//! Result reporting: aligned stdout tables plus JSON files in `results/`.
//!
//! Progress and warning lines go through [`tm_obs`] log routing: without a
//! sink they fall through to stdout/stderr exactly as before; under
//! [`observed`] (or any recorder scope) they are captured and replayable,
//! so tests and batch drivers can silence or inspect them.

use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tm_obs::{Level, Obs, Recorder};

/// Directory the experiment binaries write their JSON results to.
pub fn results_dir() -> PathBuf {
    // Walk up from the crate to the workspace root when run via cargo.
    let candidates = ["results", "../results", "../../results"];
    for c in candidates {
        if Path::new(c).is_dir() {
            return PathBuf::from(c);
        }
    }
    // Create ./results as a fallback.
    let p = PathBuf::from("results");
    let _ = fs::create_dir_all(&p);
    p
}

/// Serializes a result structure to `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let obs = tm_obs::current();
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                obs.log(
                    Level::Warn,
                    &format!("could not write {}: {e}", path.display()),
                );
            } else {
                obs.log(Level::Info, &format!("(saved {})", path.display()));
            }
        }
        Err(e) => obs.log(Level::Warn, &format!("could not serialize {name}: {e}")),
    }
}

/// Prints a header box for an experiment.
pub fn header(title: &str) {
    tm_obs::current().log(Level::Info, &format!("\n=== {title} ==="));
}

/// Runs an experiment under a fresh per-run [`Recorder`] scope and writes
/// the deterministic metrics snapshot (plus the advisory wall-clock
/// report) to `results/<name>.metrics.txt`, next to the experiment's
/// `results/<name>.json`. Log lines captured during the run are replayed
/// to the process streams afterwards so CLI output is unchanged.
pub fn observed<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let rec = Arc::new(Recorder::new());
    let out = tm_obs::scoped(Obs::new(rec.clone()), f);
    for (level, msg) in rec.logs() {
        match level {
            Level::Info => println!("{msg}"),
            Level::Warn => eprintln!("warning: {msg}"),
        }
    }
    let mut body = rec.snapshot();
    let wall = rec.wall_report();
    if !wall.is_empty() {
        body.push_str("# wall-clock below is advisory and run-dependent\n");
        body.push_str(&wall);
    }
    let path = results_dir().join(format!("{name}.metrics.txt"));
    if let Err(e) = fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(metrics {})", path.display());
    }
    out
}

/// Prints an aligned table: a header row and data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i.min(n - 1)]))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with 2 decimals (FPS, seconds).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals (REC, rates).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.94999), "0.950");
    }

    #[test]
    fn table_does_not_panic_on_ragged_rows() {
        table(
            &["a", "b"],
            &[vec!["1".into()], vec!["1".into(), "2".into(), "3".into()]],
        );
    }
}
