//! Dense-vs-gated assignment and full tracker steps at 10/50/200 objects
//! per frame.
//!
//! Two geometries per size:
//!
//! * **sparse** — objects spread over a wide scene, so well under 25% of
//!   track×detection pairs plausibly overlap. The gated path should beat
//!   the dense path here, increasingly with scene size.
//! * **dense** — every object crammed into one small cluster, so nearly
//!   every pair overlaps and gating can prune nothing. The gated path must
//!   stay within 1.1× of the dense path (acceptance bound).
//!
//! Both solver benches measure the full per-frame work from box lists:
//! the dense arm builds the IoU cost matrix and thresholds it through the
//! reference solver (the pre-gating production path); the gated arm runs
//! `iou_threshold_matches` with a reused scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use tm_track::assign::{iou_threshold_matches, BoxMatchScratch};
use tm_track::hungarian::assign_with_threshold_reference;
use tm_track::{
    track_video, ByteTrack, ByteTrackConfig, Sort, SortConfig, Tracker, TracktorLike,
    TracktorLikeConfig,
};
use tm_types::{ids::classes, BBox, Detection, FrameIdx, GtObjectId};

/// `n` boxes jittered around distinct anchors spread over a scene whose
/// side scales with √n — keeps density constant, so plausible pairs stay
/// well below 25% at n ≥ 20.
fn sparse_boxes(n: usize, rng: &mut StdRng) -> Vec<BBox> {
    let side = 40.0 * (n as f64).sqrt().ceil();
    let per_row = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            let cx = (i % per_row) as f64 / per_row as f64 * side + rng.random_range(-4.0..4.0);
            let cy = (i / per_row) as f64 / per_row as f64 * side + rng.random_range(-4.0..4.0);
            BBox::from_center(cx, cy, 20.0, 20.0)
        })
        .collect()
}

/// `n` boxes all jittered around one point — nearly every pair overlaps.
fn dense_boxes(n: usize, rng: &mut StdRng) -> Vec<BBox> {
    (0..n)
        .map(|_| {
            BBox::from_center(
                100.0 + rng.random_range(-8.0..8.0),
                100.0 + rng.random_range(-8.0..8.0),
                20.0,
                20.0,
            )
        })
        .collect()
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    for &n in &[10usize, 50, 200] {
        for (geom, maker) in [
            (
                "sparse",
                sparse_boxes as fn(usize, &mut StdRng) -> Vec<BBox>,
            ),
            ("dense", dense_boxes),
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let rows = maker(n, &mut rng);
            let cols = maker(n, &mut rng);
            let max_cost = 0.7;

            group.bench_with_input(
                BenchmarkId::new(format!("dense_reference/{geom}"), n),
                &(&rows, &cols),
                |b, (rows, cols)| {
                    b.iter(|| {
                        let cost: Vec<Vec<f64>> = rows
                            .iter()
                            .map(|r| cols.iter().map(|c| 1.0 - r.iou(c)).collect())
                            .collect();
                        black_box(assign_with_threshold_reference(&cost, max_cost))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("gated/{geom}"), n),
                &(&rows, &cols),
                |b, (rows, cols)| {
                    let mut scratch = BoxMatchScratch::new();
                    b.iter(|| {
                        black_box(iou_threshold_matches(rows, cols, max_cost, &mut scratch).len())
                    })
                },
            );
        }
    }
    group.finish();
}

/// A short synthetic video: `n` objects drifting right, redetected each
/// frame with positional jitter.
fn detection_frames(n: usize, n_frames: usize, sparse: bool) -> Vec<Vec<Detection>> {
    let mut rng = StdRng::seed_from_u64(11);
    let anchors = if sparse {
        sparse_boxes(n, &mut rng)
    } else {
        dense_boxes(n, &mut rng)
    };
    (0..n_frames)
        .map(|f| {
            anchors
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let drift = f as f64 * 1.5;
                    let jitter = rng.random_range(-1.0..1.0);
                    Detection::of_actor(
                        FrameIdx(f as u64),
                        BBox::new(b.x + drift + jitter, b.y + jitter, b.w, b.h),
                        0.9,
                        classes::PEDESTRIAN,
                        1.0,
                        GtObjectId(i as u64 + 1),
                    )
                })
                .collect()
        })
        .collect()
}

type TrackerFactory = Box<dyn Fn() -> Box<dyn Tracker>>;

fn bench_tracker_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker_video_30f");
    group.sample_size(10);
    for &n in &[10usize, 50, 200] {
        let frames = detection_frames(n, 30, true);
        let trackers: Vec<(&str, TrackerFactory)> = vec![
            (
                "sort",
                Box::new(|| Box::new(Sort::new(SortConfig::default()))),
            ),
            (
                "byte_track",
                Box::new(|| Box::new(ByteTrack::new(ByteTrackConfig::default()))),
            ),
            (
                "tracktor",
                Box::new(|| Box::new(TracktorLike::new(TracktorLikeConfig::default()))),
            ),
        ];
        for (name, make) in &trackers {
            group.bench_with_input(BenchmarkId::new(*name, n), &frames, |b, frames| {
                b.iter(|| {
                    let mut t = make();
                    black_box(track_video(t.as_mut(), frames).len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solver, bench_tracker_steps);
criterion_main!(benches);
