//! Zero-overhead guard for the observability layer (`tm-obs`).
//!
//! The production hot paths run with an ambient **no-op** handle (no sink
//! installed) unless a caller scopes a recorder. This bench pins that
//! configuration against *frozen seed reimplementations* of the two
//! kernels the earlier PRs optimized — the flat Hungarian solve and the
//! dense exact scorer — exactly as they stood before instrumentation
//! landed: no `AssignStats` accumulation in the solver, no observability
//! handle in the scoring session.
//!
//! Custom `harness = false` main (not statistical Criterion): each side is
//! timed as best-of-`REPS` over a fixed batch, which is robust to
//! scheduler noise at the cost of confidence intervals we don't need —
//! the assertion is a coarse ≤2% ceiling, not a point estimate.
//!
//! Run with: `cargo bench -p tm-bench --bench obs_overhead`

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tm_core::score::{exact_scores, sum_pairwise_unit_distances};
use tm_core::SelectionInput;
use tm_reid::{
    AppearanceConfig, AppearanceModel, Attempt, BoxKey, CostModel, Device, Feature,
    InferenceBackend, ReidSession, SimClock, NORMALIZER,
};
use tm_track::assign::{min_cost_assignment_flat, AssignmentScratch};
use tm_types::{
    ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
};

/// Allowed slowdown of the instrumented (no-op sink) path over the frozen
/// seed path.
const MAX_REGRESSION: f64 = 1.02;
/// Best-of repetitions per side.
const REPS: usize = 15;

// ---------------------------------------------------------------------------
// Frozen seed solver: `min_cost_assignment_flat` as of the pre-obs tree —
// byte-for-byte the production arithmetic, minus the `stats` accumulation.
// ---------------------------------------------------------------------------

mod seed_solver {
    #[derive(Default)]
    pub struct Scratch {
        u: Vec<f64>,
        v: Vec<f64>,
        matched_row: Vec<usize>,
        way: Vec<usize>,
        min_slack: Vec<f64>,
        used: Vec<bool>,
        pub row_to_col: Vec<Option<usize>>,
        col_to_row: Vec<Option<usize>>,
        transpose: Vec<f64>,
    }

    fn kuhn_munkres(n: usize, m: usize, cost: &[f64], s: &mut Scratch) {
        s.u.clear();
        s.u.resize(n + 1, 0.0);
        s.v.clear();
        s.v.resize(m + 1, 0.0);
        s.matched_row.clear();
        s.matched_row.resize(m + 1, 0);
        s.way.clear();
        s.way.resize(m + 1, 0);
        s.min_slack.clear();
        s.min_slack.resize(m + 1, f64::INFINITY);
        s.used.clear();
        s.used.resize(m + 1, false);
        let Scratch {
            u,
            v,
            matched_row,
            way,
            min_slack,
            used,
            ..
        } = s;
        kuhn_munkres_sweep(
            n,
            m,
            cost,
            &mut u[..n + 1],
            &mut v[..m + 1],
            &mut matched_row[..m + 1],
            &mut way[..m + 1],
            &mut min_slack[..m + 1],
            &mut used[..m + 1],
        );
        s.row_to_col.clear();
        s.row_to_col.resize(n, None);
        for j in 1..=m {
            if s.matched_row[j] != 0 {
                s.row_to_col[s.matched_row[j] - 1] = Some(j - 1);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn kuhn_munkres_sweep(
        n: usize,
        m: usize,
        cost: &[f64],
        u: &mut [f64],
        v: &mut [f64],
        matched_row: &mut [usize],
        way: &mut [usize],
        min_slack: &mut [f64],
        used: &mut [bool],
    ) {
        for i in 1..=n {
            matched_row[0] = i;
            let mut j0 = 0usize;
            min_slack.fill(f64::INFINITY);
            used.fill(false);
            loop {
                used[j0] = true;
                let i0 = matched_row[j0];
                let row = &cost[(i0 - 1) * m..i0 * m];
                let u_i0 = u[i0];
                let mut delta = f64::INFINITY;
                let mut j1 = 0usize;
                for j in 1..=m {
                    if used[j] {
                        continue;
                    }
                    let slack = row[j - 1] - u_i0 - v[j];
                    if slack < min_slack[j] {
                        min_slack[j] = slack;
                        way[j] = j0;
                    }
                    if min_slack[j] < delta {
                        delta = min_slack[j];
                        j1 = j;
                    }
                }
                for j in 0..=m {
                    if used[j] {
                        u[matched_row[j]] += delta;
                        v[j] -= delta;
                    } else {
                        min_slack[j] -= delta;
                    }
                }
                j0 = j1;
                if matched_row[j0] == 0 {
                    break;
                }
            }
            loop {
                let j1 = way[j0];
                matched_row[j0] = matched_row[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }
    }

    fn solve_dense(n: usize, m: usize, cost: &[f64], s: &mut Scratch) {
        if n == 0 {
            s.row_to_col.clear();
            return;
        }
        if m == 0 {
            s.row_to_col.clear();
            s.row_to_col.resize(n, None);
            return;
        }
        if n > m {
            let mut tr = std::mem::take(&mut s.transpose);
            tr.clear();
            tr.reserve(n * m);
            for j in 0..m {
                tr.extend((0..n).map(|i| cost[i * m + j]));
            }
            kuhn_munkres(m, n, &tr, s);
            s.transpose = tr;
            s.col_to_row.clear();
            s.col_to_row.extend_from_slice(&s.row_to_col);
            s.row_to_col.clear();
            s.row_to_col.resize(n, None);
            for (j, row) in s.col_to_row.iter().enumerate() {
                if let Some(i) = row {
                    s.row_to_col[*i] = Some(j);
                }
            }
        } else {
            kuhn_munkres(n, m, cost, s);
        }
    }

    pub fn min_cost_assignment_flat(
        cost: &[f64],
        n_rows: usize,
        n_cols: usize,
        scratch: &mut Scratch,
    ) -> Vec<Option<usize>> {
        assert_eq!(cost.len(), n_rows * n_cols);
        solve_dense(n_rows, n_cols, cost, scratch);
        scratch.row_to_col.clone()
    }
}

// ---------------------------------------------------------------------------
// Frozen seed scorer: `exact_scores` against a session with no
// observability handle — a feature cache, a simulated clock, and the same
// `CostModel` charges, nothing else.
// ---------------------------------------------------------------------------

struct SeedSession<'m> {
    backend: &'m dyn InferenceBackend,
    cost: CostModel,
    device: Device,
    clock: SimClock,
    features: HashMap<BoxKey, Arc<Feature>>,
    epoch: u64,
}

impl<'m> SeedSession<'m> {
    fn new(model: &'m AppearanceModel, cost: CostModel, device: Device) -> Self {
        Self {
            backend: model,
            cost,
            device,
            clock: SimClock::new(),
            features: HashMap::new(),
            epoch: 0,
        }
    }

    /// The seed retry ladder on the clean-backend happy path: one attempt
    /// through the backend seam, latency charge, finiteness check.
    fn observe_retry(&mut self, key: BoxKey, tb: &TrackBox) -> Feature {
        let at = Attempt {
            epoch: self.epoch,
            attempt: 0,
            key,
        };
        let reply = self.backend.try_observe(tb, &at);
        self.clock.charge(reply.extra_ms);
        match reply.outcome {
            Ok(f) if f.is_finite() => f,
            _ => unreachable!("the appearance model is a clean backend"),
        }
    }

    /// The seed `try_ensure_features` (private cache): set-deduplicated
    /// misses, each extracted through the backend, one inference charge.
    fn ensure_features(&mut self, wanted: &[(TrackId, &TrackBox)]) {
        let mut seen: HashSet<BoxKey> = HashSet::new();
        let mut misses: Vec<(BoxKey, &TrackBox)> = Vec::new();
        for (t, b) in wanted {
            let key = BoxKey::new(*t, b.frame);
            if !seen.insert(key) || self.features.contains_key(&key) {
                continue;
            }
            misses.push((key, b));
        }
        if misses.is_empty() {
            return;
        }
        let n = misses.len();
        let mut computed: Vec<(BoxKey, Arc<Feature>)> = Vec::with_capacity(n);
        for (key, b) in misses {
            let f = self.observe_retry(key, b);
            computed.push((key, Arc::new(f)));
        }
        for (key, f) in computed {
            self.features.insert(key, f);
        }
        self.clock.charge(self.cost.infer_cost_ms(n, self.device));
    }

    fn cached_feature(&self, tid: TrackId, frame: FrameIdx) -> Option<&Arc<Feature>> {
        self.features.get(&BoxKey::new(tid, frame))
    }

    fn charge_distance_batch(&mut self, n: usize) {
        self.clock
            .charge(self.cost.distance_cost_ms(n, self.device));
    }
}

/// The seed `exact_scores`: identical control flow and arithmetic to
/// `tm_core::score::exact_scores` (group rounds, lazy dense packing,
/// blocked kernel, serial charges + `par_map` arithmetic), against the
/// uninstrumented [`SeedSession`].
fn seed_exact_scores(
    pairs: &[TrackPair],
    tracks: &TrackSet,
    session: &mut SeedSession<'_>,
) -> Vec<(TrackPair, f64)> {
    use tm_core::score::PairBoxes;
    enum Task {
        Empty,
        Dense {
            a: TrackId,
            b: TrackId,
            total: u64,
            dim: usize,
        },
    }
    let batch = session.device.batch();
    let mut dense: HashMap<TrackId, Vec<f64>> = HashMap::new();
    let mut dim = 0usize;
    let mut tasks: Vec<(TrackPair, Task)> = Vec::with_capacity(pairs.len());
    for group in pairs.chunks(batch.max(1)) {
        let resolved: Vec<PairBoxes<'_>> = group
            .iter()
            .map(|&p| PairBoxes::resolve(p, tracks).expect("tracks present"))
            .collect();
        let mut missing: Vec<(TrackId, &TrackBox)> = Vec::new();
        for pb in &resolved {
            for t in [pb.a, pb.b] {
                if !dense.contains_key(&t.id) {
                    missing.extend(t.boxes.iter().map(|b| (t.id, b)));
                }
            }
        }
        session.ensure_features(&missing);
        for pb in &resolved {
            for t in [pb.a, pb.b] {
                if dense.contains_key(&t.id) {
                    continue;
                }
                let mut flat = Vec::new();
                for b in &t.boxes {
                    let f = session.cached_feature(t.id, b.frame).expect("ensured");
                    dim = f.dim();
                    flat.extend_from_slice(f.as_slice());
                }
                dense.insert(t.id, flat);
            }
        }
        for pb in &resolved {
            let total = pb.total_bbox_pairs();
            if total == 0 || dim == 0 {
                tasks.push((pb.pair, Task::Empty));
                continue;
            }
            session.charge_distance_batch(total as usize);
            tasks.push((
                pb.pair,
                Task::Dense {
                    a: pb.a.id,
                    b: pb.b.id,
                    total,
                    dim,
                },
            ));
        }
    }
    tm_par::par_map(&tasks, |(pair, task)| match task {
        Task::Empty => (*pair, 1.0),
        Task::Dense { a, b, total, dim } => {
            let sum = sum_pairwise_unit_distances(&dense[a], &dense[b], *dim);
            (*pair, sum / (NORMALIZER * *total as f64))
        }
    })
}

// ---------------------------------------------------------------------------
// Timing + workloads
// ---------------------------------------------------------------------------

/// Best-of-`REPS` wall time of `f`, which must consume its own inputs.
fn best_of(mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Deterministic pseudo-random f64 in [0, 1) (splitmix64 bits).
fn rnd(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

fn check(label: &str, instrumented: Duration, seed: Duration) -> bool {
    let ratio = instrumented.as_secs_f64() / seed.as_secs_f64();
    println!(
        "{label}: noop-sink {:>10.3?}  seed {:>10.3?}  ratio {ratio:.4}",
        instrumented, seed
    );
    if ratio > MAX_REGRESSION {
        eprintln!("FAIL {label}: {ratio:.4} exceeds the {MAX_REGRESSION} ceiling");
        return false;
    }
    true
}

fn bench_solver() -> bool {
    const N: usize = 48;
    const M: usize = 64;
    const MATRICES: usize = 24;
    let mut state = 0x5eed_0b50_u64 ^ 0xdead_beef;
    let mats: Vec<Vec<f64>> = (0..MATRICES)
        .map(|_| (0..N * M).map(|_| rnd(&mut state)).collect())
        .collect();

    // Same answers before timing anything.
    let mut scratch = AssignmentScratch::new();
    let mut seed_scratch = seed_solver::Scratch::default();
    for m in &mats {
        assert_eq!(
            min_cost_assignment_flat(m, N, M, &mut scratch),
            seed_solver::min_cost_assignment_flat(m, N, M, &mut seed_scratch),
            "frozen seed solver diverged — the comparison is meaningless"
        );
    }

    let instrumented = best_of(|| {
        for m in &mats {
            std::hint::black_box(min_cost_assignment_flat(m, N, M, &mut scratch));
        }
    });
    let seed = best_of(|| {
        for m in &mats {
            std::hint::black_box(seed_solver::min_cost_assignment_flat(
                m,
                N,
                M,
                &mut seed_scratch,
            ));
        }
    });
    check("min_cost_assignment_flat", instrumented, seed)
}

fn make_track(id: u64, actor: u64, start: u64, n: usize) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

fn bench_scorer() -> bool {
    const N_TRACKS: u64 = 16;
    const BOXES: usize = 24;
    let model = AppearanceModel::new(AppearanceConfig::default());
    let tracks = TrackSet::from_tracks(
        (1..=N_TRACKS)
            .map(|id| make_track(id, id % 5, (id - 1) * 40, BOXES))
            .collect(),
    );
    let mut pairs = Vec::new();
    for a in 1..=N_TRACKS {
        for b in (a + 1)..=N_TRACKS {
            pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
        }
    }
    let input = SelectionInput {
        pairs: &pairs,
        tracks: &tracks,
        k: 1.0,
        voi: None,
    };
    let cost = CostModel::calibrated();

    // Same answers before timing anything.
    {
        let mut prod = ReidSession::new(&model, cost, Device::Cpu);
        let got = exact_scores(&input, &mut prod).expect("clean backend");
        let mut seed = SeedSession::new(&model, cost, Device::Cpu);
        let want = seed_exact_scores(&pairs, &tracks, &mut seed);
        assert_eq!(got.len(), want.len());
        for ((p1, s1), (p2, s2)) in got.iter().zip(&want) {
            assert_eq!(p1, p2);
            assert!(
                (s1 - s2).abs() < 1e-12,
                "frozen seed scorer diverged on {p1}: {s1} vs {s2}"
            );
        }
    }

    // Fresh sessions inside the timed body: the feature-extraction +
    // cache-probe path is part of what the seed comparison covers.
    let instrumented = best_of(|| {
        let mut s = ReidSession::new(&model, cost, Device::Cpu);
        std::hint::black_box(exact_scores(&input, &mut s).expect("clean backend"));
    });
    let seed = best_of(|| {
        let mut s = SeedSession::new(&model, cost, Device::Cpu);
        std::hint::black_box(seed_exact_scores(&pairs, &tracks, &mut s));
    });
    check("exact_scores", instrumented, seed)
}

fn main() {
    // The production default: no scope installed, `tm_obs::current()` is
    // the no-op handle. Serial fan-out so scheduler noise cannot eat the
    // 2% budget we're measuring.
    std::env::set_var(tm_par::THREADS_ENV, "1");
    assert!(
        !tm_obs::current().enabled(),
        "bench must run with the ambient no-op handle"
    );
    let ok = [bench_solver(), bench_scorer()];
    std::env::remove_var(tm_par::THREADS_ENV);
    if ok.iter().any(|r| !r) {
        std::process::exit(1);
    }
    println!("obs overhead within the {MAX_REGRESSION} ceiling on both kernels");
}
