//! Wall-clock benchmarks of whole pipeline stages on a small fixed world:
//! simulation, detection, tracking, and each candidate-selection algorithm
//! over one window.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tm_core::{
    Baseline, CandidateSelector, LcbConfig, LowerConfidenceBound, ProportionalSampling, PsConfig,
    SelectionInput, TMerge, TMergeConfig,
};
use tm_datasets::{crowd_scenario, SceneParams};
use tm_detect::{Detector, DetectorConfig};
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, ReidSession};
use tm_track::{track_video, Sort, SortConfig};
use tm_types::{ids::classes, Detection, TrackPair, TrackSet};

fn small_scene() -> SceneParams {
    SceneParams {
        n_frames: 300,
        width: 1400.0,
        height: 900.0,
        n_actors: 12,
        min_life: 100,
        max_life: 280,
        speed: (2.0, 5.0),
        actor_w: (35.0, 60.0),
        actor_h: (90.0, 150.0),
        loiter_fraction: 0.2,
        n_pillars: 2,
        pillar_w: (90.0, 150.0),
        n_glare: 1,
        class: classes::PEDESTRIAN,
        seed: 5,
    }
}

fn fixture() -> (
    AppearanceModel,
    TrackSet,
    Vec<TrackPair>,
    Vec<Vec<Detection>>,
) {
    let gt = crowd_scenario(&small_scene()).simulate();
    let detections = Detector::new(DetectorConfig::default()).detect(&gt, 1);
    let model = AppearanceModel::new(AppearanceConfig::default());
    let mut tracker = Sort::new(SortConfig::default());
    let tracks = track_video(&mut tracker, &detections);
    let pairs: Vec<TrackPair> = tm_core::build_window_pairs(&tracks, 300, 600)
        .unwrap()
        .into_iter()
        .flat_map(|w| w.pairs)
        .collect();
    (model, tracks, pairs, detections)
}

fn bench_front_end(c: &mut Criterion) {
    c.bench_function("simulate_300_frames", |b| {
        let scene = small_scene();
        b.iter(|| black_box(crowd_scenario(&scene).simulate()))
    });
    let gt = crowd_scenario(&small_scene()).simulate();
    c.bench_function("detect_300_frames", |b| {
        let det = Detector::new(DetectorConfig::default());
        b.iter(|| black_box(det.detect(&gt, 1)))
    });
    let (_, _, _, detections) = fixture();
    c.bench_function("sort_track_300_frames", |b| {
        b.iter(|| {
            let mut tracker = Sort::new(SortConfig::default());
            black_box(track_video(&mut tracker, &detections))
        })
    });
}

fn bench_selectors(c: &mut Criterion) {
    let (model, tracks, pairs, _) = fixture();
    let mut group = c.benchmark_group("selector_per_window");
    group.sample_size(10);
    let selectors: Vec<(&str, Box<dyn CandidateSelector>)> = vec![
        ("baseline", Box::new(Baseline)),
        (
            "ps_eta_0.02",
            Box::new(ProportionalSampling::new(PsConfig { eta: 0.02, seed: 1 })),
        ),
        (
            "lcb_tau_2000",
            Box::new(LowerConfidenceBound::new(LcbConfig {
                tau_max: 2_000,
                seed: 1,
                record_history: false,
            })),
        ),
        (
            "tmerge_tau_2000",
            Box::new(TMerge::new(TMergeConfig {
                tau_max: 2_000,
                seed: 1,
                ..TMergeConfig::default()
            })),
        ),
    ];
    for (name, selector) in &selectors {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let input = SelectionInput {
                    pairs: &pairs,
                    tracks: &tracks,
                    k: 0.05,
                    voi: None,
                };
                let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
                black_box(selector.select(&input, &mut session).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(end_to_end, bench_front_end, bench_selectors);
criterion_main!(end_to_end);
