//! Wall-clock micro-benchmarks of the algorithmic kernels (the simulated
//! cost model covers the paper's FPS comparisons; these measure the real
//! CPU cost of this implementation's hot paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use tm_core::sampling::WithoutReplacement;
use tm_core::{merge_mapping, UnionFind};
use tm_track::hungarian::min_cost_assignment;
use tm_track::{KalmanBoxFilter, KalmanConfig};
use tm_reid::{AppearanceConfig, AppearanceModel, Feature};
use tm_types::{BBox, FrameIdx, GtObjectId, TrackId, TrackPair};

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [8usize, 32, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.random_range(0.0..1.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| min_cost_assignment(black_box(cost)))
        });
    }
    group.finish();
}

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("kalman_predict_update", |b| {
        let mut kf = KalmanBoxFilter::new(
            &BBox::from_center(100.0, 100.0, 40.0, 80.0),
            KalmanConfig::default(),
        );
        let mut f = 0u64;
        b.iter(|| {
            f += 1;
            kf.predict();
            kf.update(&BBox::from_center(100.0 + f as f64, 100.0, 40.0, 80.0));
            black_box(kf.current_box())
        })
    });
}

fn bench_reid(c: &mut Criterion) {
    let model = AppearanceModel::new(AppearanceConfig::default());
    c.bench_function("reid_feature_inference", |b| {
        let mut f = 0u64;
        b.iter(|| {
            f += 1;
            black_box(model.observe(GtObjectId(f % 30), FrameIdx(f), 0.9))
        })
    });
    let fa = model.observe(GtObjectId(1), FrameIdx(0), 1.0);
    let fb = model.observe(GtObjectId(2), FrameIdx(0), 1.0);
    c.bench_function("reid_euclidean_distance", |b| {
        b.iter(|| black_box(&fa).euclidean(black_box(&fb)))
    });
    c.bench_function("feature_normalize_32d", |b| {
        let raw: Vec<f64> = (0..32).map(|i| i as f64 * 0.1 - 1.5).collect();
        b.iter(|| Feature::normalized(black_box(raw.clone())))
    });
}

fn bench_sampling(c: &mut Criterion) {
    c.bench_function("without_replacement_draw", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sampler = WithoutReplacement::new(u64::MAX / 2);
        b.iter(|| black_box(sampler.draw(&mut rng)))
    });
    c.bench_function("beta_posterior_draw", |b| {
        use rand_distr::{Beta, Distribution};
        let mut rng = StdRng::seed_from_u64(3);
        let beta = Beta::new(12.0, 30.0).unwrap();
        b.iter(|| black_box(beta.sample(&mut rng)))
    });
}

fn bench_union_find(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let pairs: Vec<TrackPair> = (0..500)
        .filter_map(|_| {
            TrackPair::new(
                TrackId(rng.random_range(0..200)),
                TrackId(rng.random_range(0..200)),
            )
        })
        .collect();
    c.bench_function("merge_mapping_500_pairs", |b| {
        b.iter(|| merge_mapping(black_box(&pairs)))
    });
    c.bench_function("union_find_union", |b| {
        let mut uf = UnionFind::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            uf.union(TrackId(i % 1000), TrackId((i * 7) % 1000))
        })
    });
}

criterion_group!(
    kernels,
    bench_hungarian,
    bench_kalman,
    bench_reid,
    bench_sampling,
    bench_union_find
);
criterion_main!(kernels);
