//! Wall-clock micro-benchmarks of the algorithmic kernels (the simulated
//! cost model covers the paper's FPS comparisons; these measure the real
//! CPU cost of this implementation's hot paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use tm_core::sampling::WithoutReplacement;
use tm_core::score::{
    exact_scores, exact_scores_reference, sum_pairwise_distances_naive, sum_pairwise_unit_distances,
};
use tm_core::{merge_mapping, SelectionInput, UnionFind};
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, Feature, ReidSession};
use tm_track::hungarian::min_cost_assignment;
use tm_track::{KalmanBoxFilter, KalmanConfig};
use tm_types::{
    ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
};

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [8usize, 32, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.random_range(0.0..1.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| min_cost_assignment(black_box(cost)))
        });
    }
    group.finish();
}

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("kalman_predict_update", |b| {
        let mut kf = KalmanBoxFilter::new(
            &BBox::from_center(100.0, 100.0, 40.0, 80.0),
            KalmanConfig::default(),
        );
        let mut f = 0u64;
        b.iter(|| {
            f += 1;
            kf.predict();
            kf.update(&BBox::from_center(100.0 + f as f64, 100.0, 40.0, 80.0));
            black_box(kf.current_box())
        })
    });
}

fn bench_reid(c: &mut Criterion) {
    let model = AppearanceModel::new(AppearanceConfig::default());
    c.bench_function("reid_feature_inference", |b| {
        let mut f = 0u64;
        b.iter(|| {
            f += 1;
            black_box(model.observe(GtObjectId(f % 30), FrameIdx(f), 0.9))
        })
    });
    let fa = model.observe(GtObjectId(1), FrameIdx(0), 1.0);
    let fb = model.observe(GtObjectId(2), FrameIdx(0), 1.0);
    c.bench_function("reid_euclidean_distance", |b| {
        b.iter(|| black_box(&fa).euclidean(black_box(&fb)))
    });
    c.bench_function("feature_normalize_32d", |b| {
        let raw: Vec<f64> = (0..32).map(|i| i as f64 * 0.1 - 1.5).collect();
        b.iter(|| Feature::normalized(black_box(raw.clone())))
    });
}

fn bench_sampling(c: &mut Criterion) {
    c.bench_function("without_replacement_draw", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sampler = WithoutReplacement::new(u64::MAX / 2);
        b.iter(|| black_box(sampler.draw(&mut rng)))
    });
    c.bench_function("beta_posterior_draw", |b| {
        use rand_distr::{Beta, Distribution};
        let mut rng = StdRng::seed_from_u64(3);
        let beta = Beta::new(12.0, 30.0).unwrap();
        b.iter(|| black_box(beta.sample(&mut rng)))
    });
}

fn bench_union_find(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let pairs: Vec<TrackPair> = (0..500)
        .filter_map(|_| {
            TrackPair::new(
                TrackId(rng.random_range(0..200)),
                TrackId(rng.random_range(0..200)),
            )
        })
        .collect();
    c.bench_function("merge_mapping_500_pairs", |b| {
        b.iter(|| merge_mapping(black_box(&pairs)))
    });
    c.bench_function("union_find_union", |b| {
        let mut uf = UnionFind::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            uf.union(TrackId(i % 1000), TrackId((i * 7) % 1000))
        })
    });
}

/// The two pairwise-sum kernels head-to-head on model-generated unit-norm
/// feature matrices (`n × n` row pairs, dim 32): the blocked dot-product
/// rewrite in `exact_scores` vs the reference subtract-square kernel.
fn bench_dense_score_kernel(c: &mut Criterion) {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let mut group = c.benchmark_group("pairwise_distance_sum");
    for n in [32usize, 128, 512] {
        let pack = |actor: u64, offset: u64| -> Vec<f64> {
            (0..n as u64)
                .flat_map(|f| {
                    model
                        .observe(GtObjectId(actor), FrameIdx(offset + f), 0.9)
                        .as_slice()
                        .to_vec()
                })
                .collect()
        };
        let fa = pack(1, 0);
        let fb = pack(2, 100_000);
        let dim = fa.len() / n;
        group.bench_with_input(BenchmarkId::new("blocked_dot", n), &n, |b, _| {
            b.iter(|| sum_pairwise_unit_distances(black_box(&fa), black_box(&fb), dim))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| sum_pairwise_distances_naive(black_box(&fa), black_box(&fb), dim))
        });
    }
    group.finish();
}

/// End-to-end exact scoring of a synthetic window (12 tracks × 40 boxes,
/// all 66 pairs): the parallel dense rewrite vs the serial reference.
fn bench_exact_scores(c: &mut Criterion) {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let tracks = TrackSet::from_tracks(
        (0..12u64)
            .map(|id| {
                Track::with_boxes(
                    TrackId(id + 1),
                    classes::PEDESTRIAN,
                    (0..40u64)
                        .map(|i| {
                            TrackBox::new(
                                FrameIdx(id * 1_000 + i),
                                BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                            )
                            .with_provenance(GtObjectId(id % 5))
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    let mut pairs_all = Vec::new();
    for i in 1..=12u64 {
        for j in (i + 1)..=12u64 {
            pairs_all.push(TrackPair::new(TrackId(i), TrackId(j)).unwrap());
        }
    }
    let input = SelectionInput {
        pairs: &pairs_all,
        tracks: &tracks,
        k: 1.0,
        voi: None,
    };
    let mut group = c.benchmark_group("exact_scores");
    group.bench_function("rewrite", |b| {
        b.iter(|| {
            let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
            black_box(exact_scores(&input, &mut session).unwrap())
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
            black_box(exact_scores_reference(&input, &mut session).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_hungarian,
    bench_kalman,
    bench_reid,
    bench_sampling,
    bench_union_find,
    bench_dense_score_kernel,
    bench_exact_scores
);
criterion_main!(kernels);
