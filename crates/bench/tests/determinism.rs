//! Parallel-vs-serial determinism: the experiment engine must produce
//! byte-identical JSON for any `TMERGE_THREADS` value. Every fan-out in the
//! harness collects into index-ordered buffers and folds in the serial
//! order, and the simulated clocks are per-video — so one worker thread and
//! many must serialize to the same bytes.
//!
//! The tests run real (quick-scale) experiments, so they are release-only,
//! matching the other heavy integration tests in this crate.

use std::sync::Mutex;
use tm_bench::experiments::{sweep, ExpConfig};
use tm_bench::harness::{run_selector, DatasetRun};
use tm_core::{Baseline, CandidateSelector, TMerge, TMergeConfig};
use tm_datasets::mot17;
use tm_reid::{CostModel, Device};
use tm_track::TrackerKind;

/// Serializes `TMERGE_THREADS` mutation across tests: concurrent
/// `set_var`/`var` from different test threads races in libc.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per thread-count setting and returns the JSON each
/// produced.
fn json_per_thread_count<T: serde::Serialize>(f: impl Fn() -> T) -> Vec<String> {
    let _guard = ENV_LOCK.lock().unwrap();
    let jsons = ["1", "4"]
        .iter()
        .map(|n| {
            std::env::set_var("TMERGE_THREADS", n);
            serde_json::to_string(&f()).expect("serializable result")
        })
        .collect();
    std::env::remove_var("TMERGE_THREADS");
    jsons
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn run_selector_is_bit_identical_across_thread_counts() {
    let cfg = ExpConfig::quick();
    let spec = cfg.limit(mot17(), 2);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let cost = CostModel::calibrated();
    let jsons = json_per_thread_count(|| {
        let tm = TMerge::new(TMergeConfig {
            tau_max: 2_000,
            seed: cfg.seed,
            ..TMergeConfig::default()
        });
        [
            run_selector(&ds.runs, &Baseline, sweep::K, cost, Device::Cpu),
            run_selector(&ds.runs, &tm, sweep::K, cost, Device::Gpu { batch: 10 }),
        ]
    });
    assert_eq!(
        jsons[0], jsons[1],
        "per-video fan-out must not change the aggregate outcome"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn sweep_is_bit_identical_across_thread_counts() {
    let cfg = ExpConfig {
        trials: 2, // exercise the trial fan-out inside averaged_outcome
        ..ExpConfig::quick()
    };
    let spec = cfg.limit(mot17(), 2);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let cost = CostModel::calibrated();
    let jsons = json_per_thread_count(|| {
        sweep::averaged_outcome(&ds, cost, Device::Cpu, cfg.trials, cfg.seed, &|seed| {
            Box::new(TMerge::new(TMergeConfig {
                tau_max: 2_000,
                seed,
                ..TMergeConfig::default()
            })) as Box<dyn CandidateSelector>
        })
    });
    assert_eq!(
        jsons[0], jsons[1],
        "trial fan-out must not change the averaged outcome"
    );
}
