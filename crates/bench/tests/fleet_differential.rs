//! Fleet-vs-solo differential harness.
//!
//! The contract under test: a `FleetIngester` driving N streams over a
//! shared cross-stream `BatchScheduler` must leave every stream's output
//! **byte-identical** to running that stream alone through its own
//! `StreamingMerger` with its own fault backend — decisions, accepted
//! merges, mapping, robustness counters and the simulated clock down to
//! the f64 bits — for any fault plan, any `TMERGE_THREADS`, any shard
//! interleaving. Batching may only change *which wall-clock moment* a
//! feature is computed at, never what any stream observes.

use std::sync::Mutex;
use tm_chaos::{FaultPlan, FaultyModel};
use tm_core::{
    run_pipeline_with_backend, FleetIngester, PipelineConfig, RobustnessConfig, RobustnessReport,
    SelectorKind, StreamConfig, StreamingMerger, TMerge, TMergeConfig, WindowDecision,
};
use tm_reid::{
    AppearanceConfig, AppearanceModel, BatchConfig, BatchScheduler, BatchingBackend, CostModel,
    Device, InferenceBackend,
};
use tm_types::{
    ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
};

/// Total length of every synthetic feed, frames.
const N_FRAMES: u64 = 700;
/// Window length `L`; windows advance every `L/2 = 100` frames.
const WINDOW_LEN: u64 = 200;
/// Irregular watermark schedule shared by every run.
const SCHEDULE: [u64; 3] = [250, 480, N_FRAMES];

/// Serializes `TMERGE_THREADS` mutation across tests: concurrent
/// `set_var`/`var` from different test threads races in libc.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under each thread-count setting.
fn with_thread_counts(mut f: impl FnMut(&str)) {
    let _guard = ENV_LOCK.lock().unwrap();
    for n in ["1", "4"] {
        std::env::set_var("TMERGE_THREADS", n);
        f(n);
    }
    std::env::remove_var("TMERGE_THREADS");
}

fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

/// The chaos suite's fragmented feed: admissible pairs in every window.
fn base_tracks() -> Vec<Track> {
    vec![
        track(1, 10, 0, 30, 0.0),
        track(2, 10, 80, 30, 160.0),
        track(3, 11, 0, 300, 400.0),
        track(4, 12, 100, 300, 800.0),
        track(5, 13, 250, 60, 1200.0),
        track(6, 13, 330, 40, 1360.0),
        track(7, 14, 420, 60, 0.0),
        track(8, 14, 500, 50, 160.0),
        track(9, 15, 350, 300, 400.0),
    ]
}

/// Stream `i`'s feed: the shared base scene (identical box content across
/// streams, so the batching layer can reuse features) plus one
/// stream-unique track so siblings are similar but not identical.
fn stream_tracks(i: usize) -> TrackSet {
    let mut tracks = base_tracks();
    tracks.push(track(
        100 + i as u64,
        50 + i as u64,
        120,
        40,
        2000.0 + i as f64 * 37.0,
    ));
    TrackSet::from_tracks(tracks)
}

fn selector() -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 1_500,
        seed: 4,
        ..TMergeConfig::default()
    })
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_len: WINDOW_LEN,
        k: 0.2,
        gate: tm_reid::GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    }
}

/// Everything a stream's run produces, in comparable form.
#[derive(Debug, PartialEq)]
struct StreamOutcome {
    decisions: Vec<WindowDecision>,
    accepted: Vec<TrackPair>,
    robustness: RobustnessReport,
    /// `elapsed_ms` bits: the clock must agree exactly, not approximately.
    elapsed_bits: u64,
    mapping: std::collections::HashMap<TrackId, TrackId>,
}

fn outcome(m: &mut StreamingMerger<'_, TMerge>) -> StreamOutcome {
    StreamOutcome {
        decisions: m.decisions().to_vec(),
        accepted: m.accepted().to_vec(),
        robustness: m.robustness(),
        elapsed_bits: m.elapsed_ms().to_bits(),
        mapping: m.mapping(),
    }
}

/// Reference: stream `i` alone, its fault backend installed directly.
fn solo(model: &AppearanceModel, tracks: &TrackSet, plan: FaultPlan) -> StreamOutcome {
    let faulty = FaultyModel::new(model, plan);
    let mut m = StreamingMerger::new(
        model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(),
        stream_config(),
    )
    .unwrap()
    .with_backend(&faulty);
    for f in SCHEDULE {
        m.advance(tracks, f).unwrap();
    }
    m.finish(tracks, N_FRAMES).unwrap();
    outcome(&mut m)
}

/// The fleet run: every stream's fault backend wrapped in a lane of one
/// shared batching scheduler. Returns per-stream outcomes plus how many
/// backend inferences the scheduler saved.
fn fleet(
    model: &AppearanceModel,
    feeds: &[TrackSet],
    plans: &[FaultPlan],
) -> (Vec<StreamOutcome>, u64) {
    let faulty: Vec<FaultyModel<'_>> = plans
        .iter()
        .map(|p| FaultyModel::new(model, p.clone()))
        .collect();
    let scheduler = BatchScheduler::new(model, BatchConfig::default());
    let lanes: Vec<BatchingBackend<'_>> = faulty.iter().map(|f| scheduler.backend(f)).collect();
    let backends: Vec<&dyn InferenceBackend> =
        lanes.iter().map(|l| l as &dyn InferenceBackend).collect();
    let mut fleet = FleetIngester::new(
        model,
        CostModel::calibrated(),
        Device::Cpu,
        stream_config(),
        |_| selector(),
        &backends,
    )
    .unwrap();
    for f in SCHEDULE {
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, f)).collect();
        fleet.advance(&refs).unwrap();
    }
    let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, N_FRAMES)).collect();
    fleet.finish(&refs).unwrap();
    let outs = (0..feeds.len())
        .map(|i| outcome(fleet.shard_mut(i)))
        .collect();
    (outs, scheduler.stats().saved())
}

fn assert_fleet_matches_solo(n_streams: usize, plan_for: impl Fn(usize) -> FaultPlan) -> u64 {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let feeds: Vec<TrackSet> = (0..n_streams).map(stream_tracks).collect();
    let solos: Vec<StreamOutcome> = feeds
        .iter()
        .enumerate()
        .map(|(i, t)| solo(&model, t, plan_for(i)))
        .collect();

    let mut saved_last = 0;
    with_thread_counts(|threads| {
        let plans: Vec<FaultPlan> = (0..n_streams).map(&plan_for).collect();
        let (outs, saved) = fleet(&model, &feeds, &plans);
        for (i, (got, want)) in outs.iter().zip(&solos).enumerate() {
            assert_eq!(
                got, want,
                "stream {i} of {n_streams} diverged from its solo run at TMERGE_THREADS={threads}"
            );
        }
        saved_last = saved;
    });
    saved_last
}

/// Fault-free fleets of 1, 2 and 8 streams: every stream byte-identical to
/// solo at both thread counts, and with 8 similar streams the shared
/// scheduler must actually reuse features across streams.
#[test]
fn clean_fleet_matches_solo_runs() {
    assert_fleet_matches_solo(1, |_| FaultPlan::none());
    assert_fleet_matches_solo(2, |_| FaultPlan::none());
    let saved = assert_fleet_matches_solo(8, |_| FaultPlan::none());
    assert!(
        saved > 0,
        "8 streams sharing a scene must reuse features across streams"
    );
}

/// Flaky backends (per-stream seeds): faults, retries and latency spikes
/// replay identically through the batching lanes.
#[test]
fn flaky_fleet_matches_solo_runs() {
    assert_fleet_matches_solo(2, |i| FaultPlan::flaky(100 + i as u64));
    assert_fleet_matches_solo(8, |i| FaultPlan::flaky(100 + i as u64));
    // Sanity: the flaky plans actually fired.
    let model = AppearanceModel::new(AppearanceConfig::default());
    let out = solo(&model, &stream_tracks(0), FaultPlan::flaky(100));
    assert!(out.robustness.backend_faults > 0, "{:?}", out.robustness);
}

/// One stream hard-down for two windows: it degrades and recovers exactly
/// as it would alone, and the outage never leaks into sibling streams.
#[test]
fn hard_down_stream_matches_solo_and_spares_siblings() {
    let plan_for = |i: usize| {
        if i == 1 {
            FaultPlan::none().with_hard_down(2, 4)
        } else {
            FaultPlan::none()
        }
    };
    assert_fleet_matches_solo(3, plan_for);
    // The solo reference itself degraded and re-verified, so the fleet
    // equality above covered the interesting path.
    let model = AppearanceModel::new(AppearanceConfig::default());
    let out = solo(&model, &stream_tracks(1), plan_for(1));
    assert_eq!(out.robustness.degraded_windows, 2, "{:?}", out.robustness);
    assert_eq!(out.robustness.reverified_windows, 2, "{:?}", out.robustness);
}

/// Fault-free cross-check against the offline walk: the fleet's stream
/// agrees with `run_pipeline_with_backend` on merges and clock. (Only
/// asserted fault-free: the offline walk skips empty windows' epochs, so
/// under faults the two paths can legitimately see different outages.)
#[test]
fn clean_fleet_stream_matches_offline_pipeline() {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let tracks = stream_tracks(0);
    let (outs, _) = fleet(&model, std::slice::from_ref(&tracks), &[FaultPlan::none()]);

    let faulty = FaultyModel::new(&model, FaultPlan::none());
    let offline = run_pipeline_with_backend(
        &tracks,
        N_FRAMES,
        &model,
        &PipelineConfig {
            window_len: WINDOW_LEN,
            k: 0.2,
            selector: SelectorKind::TMerge(TMergeConfig {
                tau_max: 1_500,
                seed: 4,
                ..TMergeConfig::default()
            }),
            device: Device::Cpu,
            cost: CostModel::calibrated(),
            gate: tm_reid::GatePolicy::Off,
            voi: tm_core::VoiMode::Off,
        },
        None,
        &faulty,
        &RobustnessConfig::default(),
    )
    .unwrap();

    let mut streaming: Vec<TrackPair> = outs[0].accepted.clone();
    let mut batch: Vec<TrackPair> = offline.accepted.clone();
    streaming.sort();
    batch.sort();
    assert_eq!(streaming, batch);
    assert!((f64::from_bits(outs[0].elapsed_bits) - offline.elapsed_ms).abs() < 1e-6);
}
