//! Global-vs-solo differential harness.
//!
//! The contract under test: attaching a `GlobalMerger` overlay to a fleet
//! must leave every shard's output **byte-identical** to the fleet (and
//! therefore to each stream's solo run, by the fleet differential) —
//! decisions, accepted merges, mapping, robustness counters and the
//! simulated clock down to the f64 bits — at every `TMERGE_THREADS`
//! setting. The overlay consumes the same feed references read-only and
//! runs its ReID through its own session, so shard state must be
//! untouched by construction; this harness pins that construction.
//!
//! Second contract: a single-camera world pushed through the global
//! merger produces *no* cross-camera state at all — camera 0's namespace
//! is the identity map, so the composed mapping equals the shard's own.

use std::collections::HashMap;
use std::sync::Mutex;
use tm_core::global::{compose_global_mapping, GlobalConfig, GlobalMerger};
use tm_core::{
    FleetIngester, RobustnessReport, StreamConfig, TMerge, TMergeConfig, WindowDecision,
};
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
use tm_synth::{MultiCameraWorld, WorldConfig};
use tm_types::{TrackId, TrackPair, TrackSet};

/// Serializes `TMERGE_THREADS` mutation across tests: concurrent
/// `set_var`/`var` from different test threads races in libc.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under each thread-count setting.
fn with_thread_counts(mut f: impl FnMut(&str)) {
    let _guard = ENV_LOCK.lock().unwrap();
    for n in ["1", "4"] {
        std::env::set_var("TMERGE_THREADS", n);
        f(n);
    }
    std::env::remove_var("TMERGE_THREADS");
}

fn world(cameras: u64) -> MultiCameraWorld {
    MultiCameraWorld::new(WorldConfig {
        cameras,
        actors: 5,
        hops: 3.min(cameras.saturating_sub(1)),
        ..WorldConfig::default()
    })
}

fn selector() -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 10_000,
        seed: 4,
        ..TMergeConfig::default()
    })
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_len: 200,
        k: 0.2,
        gate: tm_reid::GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    }
}

/// Everything one shard's run produces, in comparable form.
#[derive(Debug, PartialEq)]
struct ShardOutcome {
    decisions: Vec<WindowDecision>,
    accepted: Vec<TrackPair>,
    robustness: RobustnessReport,
    /// `elapsed_ms` bits: the clock must agree exactly, not approximately.
    elapsed_bits: u64,
    mapping: HashMap<TrackId, TrackId>,
}

/// Drives a fleet over the world's feeds on an irregular watermark
/// schedule, optionally with a global overlay advanced on the same
/// references, and returns per-shard outcomes (plus the overlay).
fn run_fleet<'a>(
    model: &'a AppearanceModel,
    feeds: &[TrackSet],
    horizon: u64,
    with_global: bool,
) -> (Vec<ShardOutcome>, Option<GlobalMerger<'a, TMerge>>) {
    let backends: Vec<&dyn tm_reid::InferenceBackend> = feeds.iter().map(|_| model as _).collect();
    let mut fleet = FleetIngester::new(
        model,
        CostModel::calibrated(),
        Device::Cpu,
        stream_config(),
        |_| selector(),
        &backends,
    )
    .unwrap();
    let mut global = with_global.then(|| {
        GlobalMerger::new(
            model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            GlobalConfig::default(),
        )
        .unwrap()
    });
    let schedule = [horizon / 3, 2 * horizon / 3, horizon];
    for f in schedule {
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, f)).collect();
        fleet.advance(&refs).unwrap();
        if let Some(g) = global.as_mut() {
            g.advance(&refs).unwrap();
        }
    }
    let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, horizon)).collect();
    fleet.finish(&refs).unwrap();
    if let Some(g) = global.as_mut() {
        g.finish(&refs).unwrap();
    }
    let outs = (0..feeds.len())
        .map(|i| {
            let m = fleet.shard_mut(i);
            ShardOutcome {
                decisions: m.decisions().to_vec(),
                accepted: m.accepted().to_vec(),
                robustness: m.robustness(),
                elapsed_bits: m.elapsed_ms().to_bits(),
                mapping: m.mapping(),
            }
        })
        .collect();
    (outs, global)
}

/// The tentpole invariant: with the overlay attached, every shard's
/// decisions, accepted pairs, mapping, counters and clock bits are
/// byte-identical to the fleet without it — at 1 and 4 threads.
#[test]
fn global_overlay_leaves_every_shard_byte_identical() {
    let w = world(6);
    let horizon = w.horizon();
    let feeds = w.all_camera_tracks(horizon);
    let model = AppearanceModel::new(AppearanceConfig::default());

    let (without, _) = run_fleet(&model, &feeds, horizon, false);
    with_thread_counts(|threads| {
        let (with, global) = run_fleet(&model, &feeds, horizon, true);
        let global = global.unwrap();
        assert!(
            !global.accepted().is_empty(),
            "the overlay must actually do cross-camera work for this test to mean anything"
        );
        for (i, (got, want)) in with.iter().zip(&without).enumerate() {
            assert_eq!(
                got, want,
                "shard {i} diverged once the global overlay was attached, \
                 at TMERGE_THREADS={threads}"
            );
        }
    });
}

/// The overlay's own run is thread-count invariant: same accepted links,
/// same decisions, same topology, same clock bits at 1 and 4 threads.
#[test]
fn global_overlay_is_thread_count_invariant() {
    let w = world(6);
    let horizon = w.horizon();
    let feeds = w.all_camera_tracks(horizon);
    let model = AppearanceModel::new(AppearanceConfig::default());

    let mut checkpoints: Vec<Vec<u8>> = Vec::new();
    with_thread_counts(|_| {
        let (_, global) = run_fleet(&model, &feeds, horizon, true);
        checkpoints.push(global.unwrap().checkpoint());
    });
    assert_eq!(
        checkpoints[0], checkpoints[1],
        "global state diverged across TMERGE_THREADS settings"
    );
}

/// A single-camera world through the global merger: no admissible pairs,
/// no accepted links, and the composed global mapping is exactly the
/// shard's own mapping (camera 0's namespace is the identity).
#[test]
fn single_camera_world_reproduces_the_shard_mapping() {
    let w = world(1);
    let horizon = w.horizon();
    let feeds = w.all_camera_tracks(horizon);
    assert_eq!(feeds.len(), 1);
    let model = AppearanceModel::new(AppearanceConfig::default());

    let (outs, global) = run_fleet(&model, &feeds, horizon, true);
    let global = global.unwrap();
    assert_eq!(global.accepted(), &[], "no spurious cross-camera merges");
    assert_eq!(global.pair_counts(), (0, 0), "no pairs even examined");
    assert!(global.topology().is_empty());
    let composed = compose_global_mapping(&[&outs[0].accepted], global.accepted());
    assert_eq!(
        composed, outs[0].mapping,
        "single-camera composed mapping must equal the shard mapping exactly"
    );
    assert!(!composed.is_empty(), "the shard merged fragments");
}
