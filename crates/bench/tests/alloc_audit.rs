//! Steady-state allocation audit: after warm-up, the scoring and
//! assignment hot paths must perform **zero** heap allocations.
//!
//! A counting global allocator ([`tm_bench::perf::CountingAlloc`]) is
//! installed for this whole test binary, and everything runs inside ONE
//! `#[test]` function: the default test harness runs `#[test]`s on
//! multiple threads, and any concurrent test's allocations would pollute
//! the counters.
//!
//! Thread fan-out is pinned with `tm_par::serial_scope` — not the
//! `TMERGE_THREADS` env var, because `std::env::var_os` itself allocates
//! when the variable is set, which would show up as a false positive
//! inside the audited region.

use tm_bench::perf::CountingAlloc;
use tm_core::score::{exact_scores_with, ScoreScratch};
use tm_core::selector::SelectionInput;
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, ReidSession};
use tm_track::assign::{
    iou_threshold_matches, min_cost_assignment_into, AssignmentScratch, BoxMatchScratch,
};
use tm_types::{
    ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

/// Runs `label`'s steady state: two warm rounds to grow every pool, then
/// the counters must stay flat over the audited rounds.
fn assert_zero_alloc(label: &str, mut round: impl FnMut()) {
    round();
    round();
    let before = CountingAlloc::snapshot();
    for _ in 0..5 {
        round();
    }
    let delta = before.delta();
    assert_eq!(
        (delta.calls, delta.bytes),
        (0, 0),
        "{label}: steady-state rounds allocated {} times / {} bytes",
        delta.calls,
        delta.bytes
    );
}

#[test]
fn steady_state_hot_paths_allocate_nothing() {
    tm_par::serial_scope(|| {
        // --- Scoring: one window's exact scores on a warm scratch. ---
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 12, 0.0),
            track(2, 10, 30, 12, 160.0),
            track(3, 11, 0, 12, 400.0),
            track(4, 12, 5, 12, 800.0),
        ]);
        let mut pairs = Vec::new();
        for a in 1..=4u64 {
            for b in (a + 1)..=4 {
                pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
            }
        }
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        // The session persists across windows (its feature cache is the
        // cross-window reuse of §IV-B), the scratch and output are reused.
        let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let mut scratch = ScoreScratch::new();
        let mut out = Vec::new();
        assert_zero_alloc("exact_scores_with", || {
            exact_scores_with(&input, &mut session, &mut scratch, &mut out).expect("score");
            assert_eq!(out.len(), pairs.len());
        });

        // --- Assignment: per-frame box matching, both paths. ---
        let cols: Vec<BBox> = (0..96)
            .map(|i| BBox::new((i % 12) as f64 * 130.0, (i / 12) as f64 * 130.0, 50.0, 90.0))
            .collect();
        let rows: Vec<BBox> = cols
            .iter()
            .step_by(3)
            .map(|b| BBox::new(b.x + 7.0, b.y + 5.0, b.w, b.h))
            .collect();
        let mut bm = BoxMatchScratch::new();
        assert_zero_alloc("iou_threshold_matches (gated)", || {
            let n = iou_threshold_matches(&rows, &cols, 0.5, &mut bm).len();
            assert_eq!(n, rows.len());
        });
        assert_zero_alloc("iou_threshold_matches (dense)", || {
            let n = iou_threshold_matches(&rows, &cols, 1.0, &mut bm).len();
            assert_eq!(n, rows.len());
        });

        // --- Dense assignment into a reused output buffer. ---
        let n = 24usize;
        let cost: Vec<f64> = (0..n * n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        let mut asg = AssignmentScratch::default();
        let mut assign_out = Vec::new();
        assert_zero_alloc("min_cost_assignment_into", || {
            min_cost_assignment_into(&cost, n, n, &mut asg, &mut assign_out);
            assert_eq!(assign_out.len(), n);
        });
    });
}
