//! Golden observability snapshot: the deterministic [`tm_obs::Recorder`]
//! aggregate of a dataset-suite selector run must be byte-identical for
//! `TMERGE_THREADS=1` and the default (all cores) fan-out.
//!
//! The snapshot only holds commutative integer aggregates — u64 counters
//! and simulated-clock histograms quantized to integer ticks — so the fold
//! order imposed by the scheduler cannot move a single bit. Wall-clock
//! histograms and log lines are order- and machine-dependent and are
//! deliberately excluded from `snapshot()` (DESIGN.md §11).
//!
//! `run_selector` is the pinned entry point because its workers use
//! private per-video ReID sessions; the shared-cache streaming pipeline's
//! hit/miss split is scheduling-dependent by design and is not pinned.
//!
//! The workload is real but quick-scale (two clipped videos), small
//! enough to run in debug builds too — unlike determinism.rs.

use std::sync::{Arc, Mutex};
use tm_bench::experiments::{sweep, ExpConfig};
use tm_bench::harness::{run_selector, run_selector_gated, DatasetRun};
use tm_core::{Baseline, TMerge, TMergeConfig};
use tm_datasets::mot17;
use tm_reid::{CostModel, Device, GateConfig, GatePolicy};
use tm_track::TrackerKind;

/// Serializes `TMERGE_THREADS` mutation across tests: concurrent
/// `set_var`/`var` from different test threads races in libc.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under a fresh recorder once per thread-count setting
/// (`None` = default, i.e. all cores) and returns each snapshot.
fn snapshot_per_thread_count(f: impl Fn()) -> Vec<String> {
    let _guard = ENV_LOCK.lock().unwrap();
    let snaps = [Some("1"), None]
        .iter()
        .map(|n| {
            match n {
                Some(n) => std::env::set_var(tm_par::THREADS_ENV, n),
                None => std::env::remove_var(tm_par::THREADS_ENV),
            }
            let rec = Arc::new(tm_obs::Recorder::new());
            tm_obs::scoped(tm_obs::Obs::new(rec.clone()), &f);
            rec.snapshot()
        })
        .collect();
    std::env::remove_var(tm_par::THREADS_ENV);
    snaps
}

#[test]
fn recorder_snapshot_is_byte_identical_across_thread_counts() {
    let cfg = ExpConfig::quick();
    let spec = cfg.limit(mot17(), 2);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let cost = CostModel::calibrated();
    let snaps = snapshot_per_thread_count(|| {
        let tm = TMerge::new(TMergeConfig {
            tau_max: 2_000,
            seed: cfg.seed,
            ..TMergeConfig::default()
        });
        run_selector(&ds.runs, &Baseline, sweep::K, cost, Device::Cpu);
        run_selector(&ds.runs, &tm, sweep::K, cost, Device::Gpu { batch: 10 });
    });

    // The pin is only meaningful if the instrumented layers actually fired.
    for key in [
        "counter selector.baseline.selections",
        "counter selector.tmerge.selections",
        "counter reid.distances",
    ] {
        assert!(
            snaps[0].lines().any(|l| l.starts_with(key)),
            "snapshot lost {key:?}; keys present:\n{}",
            snaps[0]
        );
    }
    assert_eq!(
        snaps[0], snaps[1],
        "recorder snapshot must not depend on the worker fan-out"
    );
}

/// The same pin with the extraction gate on: gate decisions are a pure
/// function of per-video tracker state, so the `reid.gate.*` counters —
/// including the per-selector charge attribution — must be byte-identical
/// at any `TMERGE_THREADS`.
#[test]
fn gated_recorder_snapshot_is_byte_identical_across_thread_counts() {
    let cfg = ExpConfig::quick();
    let spec = cfg.limit(mot17(), 2);
    let ds = DatasetRun::prepare(&spec, TrackerKind::Tracktor, None);
    let cost = CostModel::calibrated();
    let gate = GatePolicy::On(GateConfig::default());
    let snaps = snapshot_per_thread_count(|| {
        let tm = TMerge::new(TMergeConfig {
            tau_max: 2_000,
            seed: cfg.seed,
            ..TMergeConfig::default()
        });
        run_selector_gated(&ds.runs, &Baseline, sweep::K, cost, Device::Cpu, gate);
        run_selector_gated(
            &ds.runs,
            &tm,
            sweep::K,
            cost,
            Device::Gpu { batch: 10 },
            gate,
        );
    });

    for key in [
        "counter reid.gate.extract",
        "counter reid.gate.reuse",
        "counter reid.gate.saved_charges ",
        "counter reid.gate.saved_charges.baseline",
        "counter reid.gate.saved_charges.tmerge",
    ] {
        assert!(
            snaps[0].lines().any(|l| l.starts_with(key)),
            "snapshot lost {key:?}; keys present:\n{}",
            snaps[0]
        );
    }
    assert_eq!(
        snaps[0], snaps[1],
        "gated recorder snapshot must not depend on the worker fan-out"
    );
}
