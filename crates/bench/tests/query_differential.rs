//! Anytime-vs-pipeline differential and golden pins (DESIGN.md §17).
//!
//! Two contracts:
//!
//! * **Differential** — a full-budget anytime run with arm reweighting
//!   disabled is *exactly* the query-agnostic pipeline: same accepted
//!   pairs, same merge mapping, at any `TMERGE_THREADS`. The anytime layer
//!   may reorder windows and interleave query evaluation, but with no
//!   budget and no hints it must not change a single decision.
//! * **Golden** — the anytime answer (estimate, interval endpoints as raw
//!   `f64` bits, inferences spent) is bit-identical across thread counts,
//!   and an [`tm_query::AnytimeStream`] killed mid-feed and resumed from
//!   its `TMAQ` checkpoint envelope finishes bit-identical to an
//!   uninterrupted one — the interval trajectory rides the envelope.

use std::sync::Mutex;
use tm_core::{
    merge_mapping, PipelineConfig, SelectorKind, StreamConfig, StreamingMerger, TMerge,
    TMergeConfig, VoiMode,
};
use tm_query::{AnytimeConfig, AnytimeQuery, AnytimeStream, Query};
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, GatePolicy};
use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

/// Total length of the synthetic feed, frames.
const N_FRAMES: u64 = 700;
/// Window length `L`; windows advance every `L/2 = 100` frames.
const WINDOW_LEN: u64 = 200;
/// Irregular watermark schedule for the streaming golden.
const SCHEDULE: [u64; 3] = [250, 480, N_FRAMES];

/// Serializes `TMERGE_THREADS` mutation across tests: concurrent
/// `set_var`/`var` from different test threads races in libc.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_thread_counts(mut f: impl FnMut(&str)) {
    let _guard = ENV_LOCK.lock().unwrap();
    for n in ["1", "4"] {
        std::env::set_var("TMERGE_THREADS", n);
        f(n);
    }
    std::env::remove_var("TMERGE_THREADS");
}

fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

/// The chaos suite's fragmented feed: three split actors, admissible
/// pairs in every window.
fn tracks() -> TrackSet {
    TrackSet::from_tracks(vec![
        track(1, 10, 0, 30, 0.0),
        track(2, 10, 80, 30, 160.0),
        track(3, 11, 0, 300, 400.0),
        track(4, 12, 100, 300, 800.0),
        track(5, 13, 250, 60, 1200.0),
        track(6, 13, 330, 40, 1360.0),
        track(7, 14, 420, 60, 0.0),
        track(8, 14, 500, 50, 160.0),
        track(9, 15, 350, 300, 400.0),
    ])
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        window_len: WINDOW_LEN,
        k: 0.3,
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 400,
            seed: 7,
            ..TMergeConfig::default()
        }),
        ..PipelineConfig::default()
    }
}

fn queries() -> [Query; 3] {
    [
        Query::Count { min_frames: 200 },
        Query::CoOccurrence {
            group_size: 3,
            min_frames: 50,
        },
        Query::RegionTransit {
            region: BBox::new(0.0, 0.0, 600.0, 400.0),
            min_frames: 40,
        },
    ]
}

/// Full-budget, un-hinted anytime == query-agnostic pipeline, decision for
/// decision, at 1 and 4 threads.
#[test]
fn full_budget_anytime_matches_pipeline() {
    let ts = tracks();
    let config = pipeline_config();
    with_thread_counts(|threads| {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let report = tm_core::run_pipeline(&ts, N_FRAMES, &model, &config, None).unwrap();
        let mut pipeline_accepted = report.accepted.clone();
        pipeline_accepted.sort();
        for query in queries() {
            let driver = AnytimeQuery::new(
                config,
                AnytimeConfig {
                    budget: None,
                    stop_on_convergence: false,
                    reweight_arms: false,
                },
            );
            let ans = driver.run(&ts, N_FRAMES, &model, query).unwrap();
            let mut anytime_accepted = ans.accepted.clone();
            anytime_accepted.sort();
            assert_eq!(
                anytime_accepted, pipeline_accepted,
                "accepted sets diverged for {query:?} at {threads} threads"
            );
            assert_eq!(
                merge_mapping(&anytime_accepted),
                merge_mapping(&pipeline_accepted),
                "merge mappings diverged for {query:?} at {threads} threads"
            );
        }
    });
}

/// Answer bits (estimate, interval endpoints, spend) are identical across
/// thread counts, hinted and un-hinted.
#[test]
fn anytime_answer_bits_stable_across_thread_counts() {
    let ts = tracks();
    let config = pipeline_config();
    for reweight in [false, true] {
        for query in queries() {
            let mut pins: Vec<(u64, u64, u64, u64, bool)> = Vec::new();
            with_thread_counts(|_| {
                let model = AppearanceModel::new(AppearanceConfig::default());
                let driver = AnytimeQuery::new(
                    config,
                    AnytimeConfig {
                        budget: Some(900),
                        stop_on_convergence: true,
                        reweight_arms: reweight,
                    },
                );
                let ans = driver.run(&ts, N_FRAMES, &model, query).unwrap();
                pins.push((
                    ans.estimate,
                    ans.lo.to_bits(),
                    ans.hi.to_bits(),
                    ans.inferences_spent,
                    ans.converged,
                ));
            });
            assert_eq!(
                pins[0], pins[1],
                "anytime answer bits diverged across thread counts for {query:?} (reweight={reweight})"
            );
        }
    }
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_len: WINDOW_LEN,
        k: 0.3,
        gate: GatePolicy::Off,
        voi: VoiMode::Reweight,
    }
}

fn selector() -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 400,
        seed: 7,
        ..TMergeConfig::default()
    })
}

/// Kill/resume golden: an anytime stream checkpointed after any prefix of
/// the schedule and resumed from its `TMAQ` envelope finishes with the
/// same answer bits and the same interval trajectory as an uninterrupted
/// run — and the envelope round-trips byte-identically.
#[test]
fn anytime_stream_kill_resume_is_bit_identical() {
    let ts = tracks();
    let model = AppearanceModel::new(AppearanceConfig::default());
    let query = Query::Count { min_frames: 200 };
    let cfg = AnytimeConfig::default();

    // Uninterrupted reference.
    let merger = StreamingMerger::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(),
        stream_config(),
    )
    .unwrap();
    let mut reference = AnytimeStream::new(merger, query, cfg);
    for wm in SCHEDULE {
        reference.advance(&ts, wm).unwrap();
    }
    let ref_answer = reference.finish(&ts, N_FRAMES).unwrap();
    assert!(
        ref_answer.converged,
        "fault-free stream must converge exactly at finish"
    );
    assert_eq!(
        ref_answer.lo.to_bits(),
        (ref_answer.estimate as f64).to_bits()
    );
    assert_eq!(
        ref_answer.hi.to_bits(),
        (ref_answer.estimate as f64).to_bits()
    );

    for kill_after in 0..SCHEDULE.len() {
        let merger = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            stream_config(),
        )
        .unwrap();
        let mut stream = AnytimeStream::new(merger, query, cfg);
        for &wm in &SCHEDULE[..kill_after] {
            stream.advance(&ts, wm).unwrap();
        }
        let envelope = stream.checkpoint();
        drop(stream);

        let mut resumed = AnytimeStream::resume(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            &envelope,
        )
        .unwrap();
        // The envelope itself must round-trip byte-identically.
        assert_eq!(
            resumed.checkpoint(),
            envelope,
            "TMAQ envelope did not round-trip (kill after {kill_after} advances)"
        );
        for &wm in &SCHEDULE[kill_after..] {
            resumed.advance(&ts, wm).unwrap();
        }
        let answer = resumed.finish(&ts, N_FRAMES).unwrap();

        assert_eq!(
            answer.estimate, ref_answer.estimate,
            "estimate diverged after kill/resume at {kill_after}"
        );
        assert_eq!(answer.lo.to_bits(), ref_answer.lo.to_bits());
        assert_eq!(answer.hi.to_bits(), ref_answer.hi.to_bits());
        assert_eq!(answer.inferences_spent, ref_answer.inferences_spent);
        assert_eq!(answer.accepted, ref_answer.accepted);
        assert_eq!(
            answer.trajectory.len(),
            ref_answer.trajectory.len(),
            "trajectory length diverged after kill/resume at {kill_after}"
        );
        for (a, b) in answer.trajectory.iter().zip(&ref_answer.trajectory) {
            assert_eq!(a.spent, b.spent);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.lo.to_bits(), b.lo.to_bits());
            assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        }
    }
}

/// Corrupt or truncated envelopes are clean errors, never panics.
#[test]
fn corrupt_envelope_is_a_clean_error() {
    let ts = tracks();
    let model = AppearanceModel::new(AppearanceConfig::default());
    let merger = StreamingMerger::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(),
        stream_config(),
    )
    .unwrap();
    let mut stream = AnytimeStream::new(
        merger,
        Query::Count { min_frames: 200 },
        AnytimeConfig::default(),
    );
    stream.advance(&ts, 250).unwrap();
    let envelope = stream.checkpoint();

    for cut in [0, 1, 7, envelope.len() / 2, envelope.len() - 1] {
        let truncated = &envelope[..cut];
        assert!(
            AnytimeStream::<TMerge>::resume(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                truncated,
            )
            .is_err(),
            "truncation at {cut} must be an error"
        );
    }
    let mut flipped = envelope.clone();
    flipped[0] ^= 0xff;
    assert!(AnytimeStream::<TMerge>::resume(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(),
        &flipped,
    )
    .is_err());
}
