//! Metric/solver equivalence on the dataset suite: CLEAR-MOT, IDF1, and
//! HOTA computed through the gated, component-decomposed assignment path
//! must be byte-identical to the same metrics computed through the dense
//! reference Hungarian solver over real tracker output.
//!
//! Each reference below is a frozen reimplementation of the metric exactly
//! as it stood before the gated solver landed — dense per-frame cost
//! matrices, linear per-frame scans, `*_reference` solvers — so the
//! production results are pinned against an independent code path, not a
//! stored literal (the synthetic datasets are seeded RNG draws, and golden
//! literals would silently couple the test to the RNG implementation).
//!
//! One deliberate divergence: the pre-gating HOTA accumulated its
//! association sum in `HashMap` iteration order, which made AssA's last
//! bits vary run to run. Production now sums in sorted pair order; the
//! reference here does the same, because bit-equality against a
//! nondeterministic accumulation is not a meaningful contract.
//!
//! Real (quick-scale) tracker runs → release-only, like determinism.rs.

use std::collections::HashMap;
use tm_bench::experiments::ExpConfig;
use tm_bench::harness::DatasetRun;
use tm_datasets::mot17;
use tm_metrics::{
    clear_mot, hota, identity_metrics, ClearMot, ClearMotConfig, Hota, IdentityMetrics,
};
use tm_track::hungarian::{assign_with_threshold_reference, min_cost_assignment_reference};
use tm_track::TrackerKind;
use tm_types::{BBox, FrameIdx, GtObjectId, Track, TrackId, TrackSet};

/// Asserts two f64s are the *same bytes* — `==` would conflate `0.0` and
/// `-0.0` and can never hold for NaN.
fn assert_bits(a: f64, b: f64, what: &str) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{what}: {a:?} ({:#018x}) != {b:?} ({:#018x})",
        a.to_bits(),
        b.to_bits()
    );
}

// ---------------------------------------------------------------------------
// Reference CLEAR-MOT: dense per-frame Hungarian, linear sticky-pass scans.
// ---------------------------------------------------------------------------

fn clear_mot_ref(gt: &TrackSet, pred: &TrackSet, config: ClearMotConfig) -> ClearMot {
    let mut gt_frames: HashMap<FrameIdx, Vec<(GtObjectId, BBox)>> = HashMap::new();
    let mut last_frame = FrameIdx(0);
    for t in gt.iter() {
        for b in &t.boxes {
            gt_frames
                .entry(b.frame)
                .or_default()
                .push((GtObjectId(t.id.get()), b.bbox));
            last_frame = last_frame.max(b.frame);
        }
    }
    let mut pred_frames: HashMap<FrameIdx, Vec<(TrackId, BBox)>> = HashMap::new();
    for t in pred.iter() {
        for b in &t.boxes {
            pred_frames.entry(b.frame).or_default().push((t.id, b.bbox));
            last_frame = last_frame.max(b.frame);
        }
    }

    let mut correspondences: HashMap<GtObjectId, TrackId> = HashMap::new();
    let mut last_match: HashMap<GtObjectId, TrackId> = HashMap::new();
    let mut was_tracked: HashMap<GtObjectId, bool> = HashMap::new();

    let mut fn_count = 0u64;
    let mut fp_count = 0u64;
    let mut idsw = 0u64;
    let mut frag = 0u64;
    let mut matches = 0u64;
    let mut iou_sum = 0.0f64;
    let mut gt_total = 0u64;

    let empty_gt: Vec<(GtObjectId, BBox)> = Vec::new();
    let empty_pred: Vec<(TrackId, BBox)> = Vec::new();
    for f in 0..=last_frame.get() {
        let frame = FrameIdx(f);
        let gts = gt_frames.get(&frame).unwrap_or(&empty_gt);
        let preds = pred_frames.get(&frame).unwrap_or(&empty_pred);
        gt_total += gts.len() as u64;

        let mut gt_matched = vec![false; gts.len()];
        let mut pred_matched = vec![false; preds.len()];
        let mut frame_pairs: Vec<(usize, usize)> = Vec::new();

        for (gi, (gid, gbox)) in gts.iter().enumerate() {
            if let Some(tid) = correspondences.get(gid) {
                if let Some(pi) = preds.iter().position(|(p, _)| p == tid) {
                    if gbox.iou(&preds[pi].1) >= config.iou_threshold && !pred_matched[pi] {
                        gt_matched[gi] = true;
                        pred_matched[pi] = true;
                        frame_pairs.push((gi, pi));
                    }
                }
            }
        }

        let free_gt: Vec<usize> = (0..gts.len()).filter(|&i| !gt_matched[i]).collect();
        let free_pred: Vec<usize> = (0..preds.len()).filter(|&i| !pred_matched[i]).collect();
        if !free_gt.is_empty() && !free_pred.is_empty() {
            let cost: Vec<Vec<f64>> = free_gt
                .iter()
                .map(|&gi| {
                    free_pred
                        .iter()
                        .map(|&pi| 1.0 - gts[gi].1.iou(&preds[pi].1))
                        .collect()
                })
                .collect();
            for (r, c) in assign_with_threshold_reference(&cost, 1.0 - config.iou_threshold) {
                let gi = free_gt[r];
                let pi = free_pred[c];
                gt_matched[gi] = true;
                pred_matched[pi] = true;
                frame_pairs.push((gi, pi));
            }
        }

        let mut new_corr: HashMap<GtObjectId, TrackId> = HashMap::new();
        for (gi, pi) in frame_pairs {
            let (gid, gbox) = gts[gi];
            let (tid, pbox) = preds[pi];
            matches += 1;
            iou_sum += gbox.iou(&pbox);
            if let Some(&prev) = last_match.get(&gid) {
                if prev != tid {
                    idsw += 1;
                }
            }
            if let Some(false) = was_tracked.get(&gid) {
                frag += 1;
            }
            last_match.insert(gid, tid);
            new_corr.insert(gid, tid);
        }
        for (gi, (gid, _)) in gts.iter().enumerate() {
            was_tracked.insert(*gid, gt_matched[gi]);
            if !gt_matched[gi] {
                fn_count += 1;
            }
        }
        fp_count += pred_matched.iter().filter(|m| !**m).count() as u64;
        correspondences = new_corr;
    }

    let mota = if gt_total == 0 {
        0.0
    } else {
        1.0 - (fn_count + fp_count + idsw) as f64 / gt_total as f64
    };
    let motp = if matches == 0 {
        0.0
    } else {
        iou_sum / matches as f64
    };
    ClearMot {
        mota,
        motp,
        false_negatives: fn_count,
        false_positives: fp_count,
        id_switches: idsw,
        fragmentations: frag,
        gt_boxes: gt_total,
        matches,
    }
}

// ---------------------------------------------------------------------------
// Reference IDF1: dense gt × pred overlap matrix, reference solver.
// ---------------------------------------------------------------------------

fn identity_ref(gt: &TrackSet, pred: &TrackSet, iou_threshold: f64) -> IdentityMetrics {
    let gt_tracks: Vec<&Track> = gt.iter().collect();
    let pred_tracks: Vec<&Track> = pred.iter().collect();
    let total_gt: u64 = gt_tracks.iter().map(|t| t.len() as u64).sum();
    let total_pred: u64 = pred_tracks.iter().map(|t| t.len() as u64).sum();

    let idtp: u64 = if gt_tracks.is_empty() || pred_tracks.is_empty() {
        0
    } else {
        let mut pred_by_frame: HashMap<FrameIdx, Vec<(usize, BBox)>> = HashMap::new();
        for (pi, p) in pred_tracks.iter().enumerate() {
            for b in &p.boxes {
                pred_by_frame.entry(b.frame).or_default().push((pi, b.bbox));
            }
        }
        let mut overlap = vec![vec![0u64; pred_tracks.len()]; gt_tracks.len()];
        for (gi, g) in gt_tracks.iter().enumerate() {
            for b in &g.boxes {
                if let Some(cands) = pred_by_frame.get(&b.frame) {
                    for (pi, pb) in cands {
                        if b.bbox.iou(pb) >= iou_threshold {
                            overlap[gi][*pi] += 1;
                        }
                    }
                }
            }
        }
        let cost: Vec<Vec<f64>> = overlap
            .iter()
            .map(|row| row.iter().map(|&o| -(o as f64)).collect())
            .collect();
        min_cost_assignment_reference(&cost)
            .iter()
            .enumerate()
            .filter_map(|(gi, pi)| pi.map(|pi| overlap[gi][pi]))
            .sum()
    };

    let idfp = total_pred - idtp.min(total_pred);
    let idfn = total_gt - idtp.min(total_gt);
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    IdentityMetrics {
        idf1: ratio(2 * idtp, 2 * idtp + idfp + idfn),
        idp: ratio(idtp, idtp + idfp),
        idr: ratio(idtp, idtp + idfn),
        idtp,
        idfp,
        idfn,
    }
}

// ---------------------------------------------------------------------------
// Reference HOTA: dense per-frame Hungarian, sorted association sum.
// ---------------------------------------------------------------------------

fn hota_at_ref(gt: &TrackSet, pred: &TrackSet, alpha: f64) -> Hota {
    let mut gt_frames: HashMap<FrameIdx, Vec<(GtObjectId, BBox)>> = HashMap::new();
    let mut total_gt = 0u64;
    for t in gt.iter() {
        for b in &t.boxes {
            gt_frames
                .entry(b.frame)
                .or_default()
                .push((GtObjectId(t.id.get()), b.bbox));
            total_gt += 1;
        }
    }
    let mut pred_frames: HashMap<FrameIdx, Vec<(TrackId, BBox)>> = HashMap::new();
    let mut total_pred = 0u64;
    for t in pred.iter() {
        for b in &t.boxes {
            pred_frames.entry(b.frame).or_default().push((t.id, b.bbox));
            total_pred += 1;
        }
    }

    let mut tp = 0u64;
    let mut pair_matches: HashMap<(GtObjectId, TrackId), u64> = HashMap::new();
    for (frame, gts) in &gt_frames {
        let Some(preds) = pred_frames.get(frame) else {
            continue;
        };
        let cost: Vec<Vec<f64>> = gts
            .iter()
            .map(|(_, gb)| preds.iter().map(|(_, pb)| 1.0 - gb.iou(pb)).collect())
            .collect();
        for (gi, pi) in assign_with_threshold_reference(&cost, 1.0 - alpha) {
            tp += 1;
            *pair_matches.entry((gts[gi].0, preds[pi].0)).or_insert(0) += 1;
        }
    }
    let fn_count = total_gt - tp;
    let fp_count = total_pred - tp;
    let det_a = if tp + fn_count + fp_count == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_count + fp_count) as f64
    };

    let gt_sizes: HashMap<GtObjectId, u64> = gt
        .iter()
        .map(|t| (GtObjectId(t.id.get()), t.len() as u64))
        .collect();
    let pred_sizes: HashMap<TrackId, u64> = pred.iter().map(|t| (t.id, t.len() as u64)).collect();

    // Sorted pair order, matching production (see module docs).
    let mut pairs: Vec<(&(GtObjectId, TrackId), &u64)> = pair_matches.iter().collect();
    pairs.sort_unstable();
    let mut ass_sum = 0.0;
    for ((g, p), &m) in pairs {
        let tpa = m;
        let fna = gt_sizes[g] - tpa;
        let fpa = pred_sizes[p] - tpa;
        ass_sum += m as f64 * (tpa as f64 / (tpa + fna + fpa) as f64);
    }
    let ass_a = if tp == 0 { 0.0 } else { ass_sum / tp as f64 };
    Hota {
        hota: (det_a * ass_a).sqrt(),
        det_a,
        ass_a,
    }
}

fn hota_ref(gt: &TrackSet, pred: &TrackSet) -> Hota {
    let mut h = 0.0;
    let mut d = 0.0;
    let mut a = 0.0;
    let mut n = 0;
    let mut alpha = 0.05;
    while alpha < 0.96 {
        let at = hota_at_ref(gt, pred, alpha);
        h += at.hota;
        d += at.det_a;
        a += at.ass_a;
        n += 1;
        alpha += 0.05;
    }
    Hota {
        hota: h / n as f64,
        det_a: d / n as f64,
        ass_a: a / n as f64,
    }
}

// ---------------------------------------------------------------------------
// The pin: every tracker's output on the quick MOT-17 suite.
// ---------------------------------------------------------------------------

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real tracker pipelines")]
fn metrics_match_dense_reference_on_dataset_suite() {
    let cfg = ExpConfig::quick();
    let spec = cfg.limit(mot17(), 2);
    for tracker in [
        TrackerKind::Sort,
        TrackerKind::ByteTrack,
        TrackerKind::Tracktor,
    ] {
        let ds = DatasetRun::prepare(&spec, tracker, None);
        for run in &ds.runs {
            let gt = &run.video.gt_tracks;
            let pred = &run.video.tracks;
            let label = format!("{tracker:?}/{}", run.video.name);
            assert!(
                pred.iter().next().is_some(),
                "{label}: tracker produced no tracks — the pin would be vacuous"
            );

            let cm = clear_mot(gt, pred, ClearMotConfig::default());
            let cm_ref = clear_mot_ref(gt, pred, ClearMotConfig::default());
            assert_eq!(
                (
                    cm.false_negatives,
                    cm.false_positives,
                    cm.id_switches,
                    cm.fragmentations,
                    cm.gt_boxes,
                    cm.matches
                ),
                (
                    cm_ref.false_negatives,
                    cm_ref.false_positives,
                    cm_ref.id_switches,
                    cm_ref.fragmentations,
                    cm_ref.gt_boxes,
                    cm_ref.matches
                ),
                "{label}: CLEAR-MOT counts"
            );
            assert_bits(cm.mota, cm_ref.mota, &format!("{label}: MOTA"));
            assert_bits(cm.motp, cm_ref.motp, &format!("{label}: MOTP"));

            let id = identity_metrics(gt, pred, 0.5);
            let id_ref = identity_ref(gt, pred, 0.5);
            assert_eq!(
                (id.idtp, id.idfp, id.idfn),
                (id_ref.idtp, id_ref.idfp, id_ref.idfn),
                "{label}: identity counts"
            );
            assert_bits(id.idf1, id_ref.idf1, &format!("{label}: IDF1"));
            assert_bits(id.idp, id_ref.idp, &format!("{label}: IDP"));
            assert_bits(id.idr, id_ref.idr, &format!("{label}: IDR"));

            let h = hota(gt, pred);
            let h_ref = hota_ref(gt, pred);
            assert_bits(h.hota, h_ref.hota, &format!("{label}: HOTA"));
            assert_bits(h.det_a, h_ref.det_a, &format!("{label}: DetA"));
            assert_bits(h.ass_a, h_ref.ass_a, &format!("{label}: AssA"));
        }
    }
}
