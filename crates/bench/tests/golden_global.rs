//! Golden pin: fleet-wide global IDF1 on a fixed ten-camera world is
//! **bit-identical** across `TMERGE_THREADS` settings.
//!
//! The cross-camera resolution stack — per-shard merging, topology-gated
//! pair building, Thompson selection over the union'd feeds, union-find
//! relabelling, and the IDF1 assignment itself — is specified to be
//! deterministic regardless of how many threads the scoring kernels use.
//! This test runs the same world end to end at one and four threads and
//! compares the resulting per-camera and global IDF1 as raw `f64` bits
//! (`==` would conflate `0.0`/`-0.0` and can never hold for NaN), so any
//! reduction-order leak in a parallel kernel fails loudly here.
//!
//! The world and configuration mirror the `cross_camera` bench's
//! 10-camera city, so the pin covers exactly what `BENCH_global.json`
//! reports. Release-only, like the other golden suites.

use std::sync::Mutex;
use tm_core::global::{compose_global_mapping, GlobalConfig, GlobalMerger};
use tm_core::{FleetIngester, StreamConfig, TMerge, TMergeConfig};
use tm_metrics::global_identity_metrics;
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, InferenceBackend};
use tm_synth::{MultiCameraWorld, WorldConfig};
use tm_types::{TrackPair, TrackSet};

/// Serializes `TMERGE_THREADS` mutation across tests: concurrent
/// `set_var`/`var` from different test threads races in libc.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const CAMERAS: u64 = 10;

fn selector() -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 10_000 + 400 * CAMERAS,
        seed: 7,
        ..TMergeConfig::default()
    })
}

/// One full city resolution: per-camera and global IDF1, as bits.
fn resolve(w: &MultiCameraWorld) -> (u64, u64) {
    let horizon = w.horizon();
    let feeds = w.all_camera_tracks(horizon);
    let model = AppearanceModel::new(AppearanceConfig::default());
    let backends: Vec<&dyn InferenceBackend> = feeds.iter().map(|_| &model as _).collect();

    let mut fleet = FleetIngester::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        StreamConfig {
            window_len: 200,
            k: 0.2,
            gate: tm_reid::GatePolicy::Off,
            voi: tm_core::VoiMode::Off,
        },
        |_| selector(),
        &backends,
    )
    .unwrap();
    let mut global = GlobalMerger::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(),
        GlobalConfig {
            prior_max_dt: 150,
            ..GlobalConfig::default()
        },
    )
    .unwrap();

    let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, horizon)).collect();
    fleet.finish(&refs).unwrap();
    global.finish(&refs).unwrap();

    let shards: Vec<&[TrackPair]> = (0..feeds.len())
        .map(|i| fleet.shard(i).accepted())
        .collect();
    let per = compose_global_mapping(&shards, &[]);
    let full = compose_global_mapping(&shards, global.accepted());

    let gt = w.global_gt(horizon);
    let per_idf1 = global_identity_metrics(&gt, &feeds, &per, 0.5).idf1;
    let global_idf1 = global_identity_metrics(&gt, &feeds, &full, 0.5).idf1;
    (per_idf1.to_bits(), global_idf1.to_bits())
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: resolves a full ten-camera city per thread count"
)]
fn global_idf1_is_bit_identical_across_thread_counts() {
    let w = MultiCameraWorld::new(WorldConfig {
        cameras: CAMERAS,
        actors: CAMERAS * 3 / 5,
        hops: 4,
        ..WorldConfig::default()
    });

    let _guard = ENV_LOCK.lock().unwrap();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("TMERGE_THREADS", threads);
        runs.push(resolve(&w));
    }
    std::env::remove_var("TMERGE_THREADS");

    let [(per_1, glob_1), (per_4, glob_4)] = runs[..] else {
        unreachable!()
    };
    assert_eq!(
        per_1, per_4,
        "per-camera IDF1 bits diverged across TMERGE_THREADS: {per_1:#018x} != {per_4:#018x}"
    );
    assert_eq!(
        glob_1, glob_4,
        "global IDF1 bits diverged across TMERGE_THREADS: {glob_1:#018x} != {glob_4:#018x}"
    );
    // Sanity, so the pin can never go vacuous: the global overlay must
    // actually improve on per-camera identity on this world.
    assert!(
        f64::from_bits(glob_1) > f64::from_bits(per_1),
        "global IDF1 ({}) must exceed per-camera IDF1 ({})",
        f64::from_bits(glob_1),
        f64::from_bits(per_1)
    );
}
