//! Shape assertions on the quick-scale experiments — the properties the
//! paper's exhibits rest on, checked end-to-end through the harness.
//!
//! These run the real experiment code, so they are release-only (ignored
//! under debug assertions to keep `cargo test --workspace` fast; CI or
//! `cargo test --release -p tm-bench` exercises them).

use tm_bench::experiments::{self, ExpConfig};

fn cfg() -> ExpConfig {
    ExpConfig::quick()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn fig03_rec_is_monotone_in_k_and_high_at_5_percent() {
    let curves = experiments::fig03::fig03(&cfg());
    assert_eq!(curves.len(), 3);
    for c in &curves {
        for pair in c.points.windows(2) {
            assert!(
                pair[1].1 + 1e-9 >= pair[0].1,
                "{}: REC not monotone in K",
                c.dataset
            );
        }
        let rec_at_5 = c
            .points
            .iter()
            .find(|(k, _)| (*k - 0.05).abs() < 1e-9)
            .expect("grid contains K=0.05")
            .1;
        assert!(rec_at_5 > 0.7, "{}: REC@K=0.05 = {rec_at_5}", c.dataset);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn fig04_runtime_and_pairs_grow_with_length() {
    let points = experiments::fig04::fig04(&cfg());
    for pair in points.windows(2) {
        assert!(pair[1].n_pairs > pair[0].n_pairs);
        assert!(pair[1].runtime_s > pair[0].runtime_s);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn fig07_rec_saturates_and_runtime_grows() {
    let r = experiments::fig07::fig07(&cfg());
    assert!(r.points.len() >= 2);
    let first = &r.points[0];
    let last = r.points.last().unwrap();
    assert!(
        last.rec >= first.rec,
        "more budget must not lose recall on average"
    );
    assert!(last.runtime_s > first.runtime_s);
    // TMerge-B stays far below the BL-B reference runtime.
    assert!(last.runtime_s * 3.0 < r.bl_b_runtime_s);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn fig11_tmerge_cuts_every_trackers_rate() {
    let rows = experiments::quality::fig11(&cfg());
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(
            r.rate_with < r.rate_without / 2.0,
            "{}: rate {} -> {}",
            r.tracker,
            r.rate_without,
            r.rate_with
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn fig12_and_fig13_improve_with_tmerge() {
    let id = experiments::quality::fig12(&cfg());
    assert!(id.with.idf1 > id.without.idf1);
    assert!(id.with.idp >= id.without.idp);
    assert!(id.with.idr >= id.without.idr);
    let q = experiments::quality::fig13(&cfg());
    assert!(q.count.1 >= q.count.0);
    assert!(q.co_occurrence.1 >= q.co_occurrence.0);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn corr_spatial_prior_is_informative() {
    // §IV-C: the spatial prior must be informative — polyonymous pairs
    // concentrate below thr_S far more than distinct pairs (this is the
    // statistic BetaInit consumes; see the corr_analysis binary's note on
    // why the global Pearson magnitude differs from the paper's).
    let rows = experiments::corr::corr_analysis(&cfg());
    for r in &rows {
        assert!(
            r.corr_spatial > 0.0,
            "{}: spatial correlation has the wrong sign",
            r.dataset
        );
        // The separation magnitude depends on the RNG stream behind the
        // synthetic worlds: against real `rand::StdRng` the margin is > 0.2,
        // against the offline SplitMix64 stub (stubs/rand) it is ~0.1 on
        // PathTrack. Assert the portable invariant — strict separation —
        // rather than a stream-specific margin.
        assert!(
            r.poly_within_thr > r.distinct_within_thr,
            "{}: poly hit rate {} not above distinct {}",
            r.dataset,
            r.poly_within_thr,
            r.distinct_within_thr
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: runs real experiments")]
fn regret_decreases_with_tau() {
    let r = experiments::regret::regret_curve(&cfg());
    assert!(r.points.len() >= 3);
    let early = r.points[1].avg_regret;
    let late = r.points.last().unwrap().avg_regret;
    assert!(
        late < early,
        "average regret must shrink: {early} -> {late}"
    );
}
