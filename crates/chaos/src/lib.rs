//! # tm-chaos
//!
//! Deterministic fault injection for the TMerge ingestion path.
//!
//! Real deployments feed the merger from flaky infrastructure: ReID model
//! servers time out, GPU workers disappear for whole windows, trackers
//! deliver corrupt or out-of-order output. This crate simulates all of
//! that **deterministically** so robustness behaviour is testable:
//!
//! * [`FaultPlan`] — a seeded schedule of backend faults. Every decision
//!   (fail? corrupt? spike?) is a pure hash of `(seed, epoch, box,
//!   attempt)`, so a given plan produces the identical fault sequence on
//!   every run, on every thread count, with no RNG state threaded through.
//! * [`FaultyModel`] — wraps an [`tm_reid::AppearanceModel`] as an
//!   [`tm_reid::InferenceBackend`] that fails according to the plan. With
//!   [`FaultPlan::none`] it is bit-for-bit transparent: same features, zero
//!   extra latency — the zero-fault run is byte-identical to no wrapper.
//! * [`StreamFaults`] — mutates tracker output the way broken ingestion
//!   does (dropped observations, duplicated boxes, non-finite
//!   coordinates), for exercising `TrackSet::validate` and the degraded
//!   paths downstream.
//! * [`TenantChurn`] — a seeded join/leave/burst schedule over a tenant
//!   universe plus per-camera outage plans, so the serve layer's chaos
//!   soak drives tenant churn and camera hard-downs concurrently and
//!   reproducibly.

pub mod churn;
pub mod model;
pub mod plan;
pub mod stream;

pub use churn::{TenantChurn, TenantChurnConfig};
pub use model::FaultyModel;
pub use plan::FaultPlan;
pub use stream::StreamFaults;
