//! The faulty inference backend.

use crate::plan::FaultPlan;
use tm_reid::{
    AppearanceModel, Attempt, AttemptClass, BackendFault, BackendReply, Feature, InferenceBackend,
    SplitBackend,
};
use tm_types::TrackBox;

/// An [`InferenceBackend`] that runs the real appearance model but fails
/// according to a [`FaultPlan`].
///
/// Decision order per attempt: hard-down epoch → unavailable; else draw a
/// latency spike; then transient failure; then corruption; otherwise the
/// clean feature. With [`FaultPlan::none`] every reply is
/// `BackendReply::ok(model feature)` with `extra_ms == 0.0`, making the
/// wrapper bit-for-bit transparent.
#[derive(Debug)]
pub struct FaultyModel<'a> {
    model: &'a AppearanceModel,
    plan: FaultPlan,
}

impl<'a> FaultyModel<'a> {
    /// Wraps `model` under `plan`.
    pub fn new(model: &'a AppearanceModel, plan: FaultPlan) -> Self {
        Self { model, plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl InferenceBackend for FaultyModel<'_> {
    fn try_observe(&self, tb: &TrackBox, at: &Attempt) -> BackendReply {
        // Single source of truth: the classification below IS the fault
        // decision; only the Clean arm touches the model. Keeping the two
        // trait impls on one path is what makes the fleet's batching lane
        // (which answers Clean attempts from a shared cache) provably
        // bit-identical to this solo backend.
        match self.classify(at) {
            AttemptClass::Clean { extra_ms } => BackendReply {
                outcome: Ok(self.model.observe_track_box(tb)),
                extra_ms,
            },
            AttemptClass::Corrupt { feature, extra_ms } => BackendReply {
                outcome: Ok(feature),
                extra_ms,
            },
            AttemptClass::Fault { fault, extra_ms } => BackendReply::fault(fault, extra_ms),
        }
    }

    fn available(&self, epoch: u64) -> bool {
        !self.plan.is_hard_down(epoch)
    }
}

impl SplitBackend for FaultyModel<'_> {
    fn classify(&self, at: &Attempt) -> AttemptClass {
        if self.plan.is_hard_down(at.epoch) {
            return AttemptClass::Fault {
                fault: BackendFault::Unavailable,
                extra_ms: self.plan.fault_latency_ms,
            };
        }
        let spike = if self.plan.spikes(at) {
            self.plan.latency_spike_ms
        } else {
            0.0
        };
        if self.plan.fails_transiently(at) {
            return AttemptClass::Fault {
                fault: BackendFault::Transient("injected transient inference failure"),
                extra_ms: spike + self.plan.fault_latency_ms,
            };
        }
        if self.plan.corrupts(at) {
            return AttemptClass::Corrupt {
                feature: Feature::from_raw(vec![f64::NAN, f64::NAN]),
                extra_ms: spike,
            };
        }
        AttemptClass::Clean { extra_ms: spike }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, BoxKey};
    use tm_types::{BBox, FrameIdx, GtObjectId, TrackId};

    fn tb(frame: u64, actor: u64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(0.0, 0.0, 10.0, 10.0))
            .with_provenance(GtObjectId(actor))
    }

    fn at(epoch: u64, attempt: u32, t: u64, f: u64) -> Attempt {
        Attempt {
            epoch,
            attempt,
            key: BoxKey::new(TrackId(t), FrameIdx(f)),
        }
    }

    #[test]
    fn zero_plan_is_transparent() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let faulty = FaultyModel::new(&m, FaultPlan::none());
        for i in 0..50u64 {
            let b = tb(i, i % 5);
            let reply = faulty.try_observe(&b, &at(i % 3, 0, i + 1, i));
            assert_eq!(reply.extra_ms.to_bits(), 0.0f64.to_bits());
            let f = reply.outcome.expect("zero plan never fails");
            assert_eq!(f, m.observe_track_box(&b), "box {i}");
            assert!(faulty.available(i));
        }
    }

    #[test]
    fn hard_down_epochs_refuse_work() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let faulty = FaultyModel::new(&m, FaultPlan::none().with_hard_down(2, 4));
        assert!(faulty.available(1));
        assert!(!faulty.available(2));
        assert!(!faulty.available(3));
        assert!(faulty.available(4));
        let reply = faulty.try_observe(&tb(0, 1), &at(3, 0, 1, 0));
        assert_eq!(reply.outcome.unwrap_err(), BackendFault::Unavailable);
        // Same box, healthy epoch: fine.
        let reply = faulty.try_observe(&tb(0, 1), &at(4, 0, 1, 0));
        assert!(reply.outcome.is_ok());
    }

    #[test]
    fn corrupted_replies_are_non_finite() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let mut plan = FaultPlan::none();
        plan.corrupt_rate = 1.0;
        let faulty = FaultyModel::new(&m, plan);
        let f = faulty
            .try_observe(&tb(0, 1), &at(0, 0, 1, 0))
            .outcome
            .expect("corruption is an Ok reply");
        assert!(!f.is_finite());
    }

    #[test]
    fn classify_agrees_with_try_observe_on_every_branch() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let mut plan = FaultPlan::flaky(11);
        // Rates high enough that 400 attempts exercise every branch.
        plan.transient_failure_rate = 0.25;
        plan.corrupt_rate = 0.25;
        plan.latency_spike_rate = 0.25;
        let faulty = FaultyModel::new(&m, plan.with_hard_down(3, 4));
        let mut seen = [false; 3];
        for i in 0..400u64 {
            let a = at(i % 6, (i % 4) as u32, i + 1, i);
            let b = tb(i, i % 5);
            let reply = faulty.try_observe(&b, &a);
            match faulty.classify(&a) {
                AttemptClass::Clean { extra_ms } => {
                    seen[0] = true;
                    assert_eq!(reply.extra_ms.to_bits(), extra_ms.to_bits());
                    assert_eq!(reply.outcome.unwrap(), m.observe_track_box(&b));
                }
                AttemptClass::Corrupt { feature, extra_ms } => {
                    seen[1] = true;
                    assert_eq!(reply.extra_ms.to_bits(), extra_ms.to_bits());
                    let f = reply.outcome.unwrap();
                    assert!(!f.is_finite());
                    assert_eq!(f.as_slice().len(), feature.as_slice().len());
                }
                AttemptClass::Fault { fault, extra_ms } => {
                    seen[2] = true;
                    assert_eq!(reply.extra_ms.to_bits(), extra_ms.to_bits());
                    assert_eq!(reply.outcome.unwrap_err(), fault);
                }
            }
        }
        assert_eq!(seen, [true; 3], "all attempt classes exercised");
    }

    #[test]
    fn replays_are_identical() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let faulty = FaultyModel::new(&m, FaultPlan::flaky(7));
        for i in 0..200u64 {
            let a = at(i % 5, (i % 4) as u32, i, i * 2 + 1);
            let b = tb(i * 2 + 1, i % 3);
            let r1 = faulty.try_observe(&b, &a);
            let r2 = faulty.try_observe(&b, &a);
            assert_eq!(r1.extra_ms.to_bits(), r2.extra_ms.to_bits());
            match (r1.outcome, r2.outcome) {
                (Ok(f1), Ok(f2)) => assert_eq!(f1.as_slice().len(), f2.as_slice().len()),
                (Err(e1), Err(e2)) => assert_eq!(e1, e2),
                (a, b) => panic!("replay diverged: {a:?} vs {b:?}"),
            }
        }
    }
}
