//! The faulty inference backend.

use crate::plan::FaultPlan;
use tm_reid::{AppearanceModel, Attempt, BackendFault, BackendReply, Feature, InferenceBackend};
use tm_types::TrackBox;

/// An [`InferenceBackend`] that runs the real appearance model but fails
/// according to a [`FaultPlan`].
///
/// Decision order per attempt: hard-down epoch → unavailable; else draw a
/// latency spike; then transient failure; then corruption; otherwise the
/// clean feature. With [`FaultPlan::none`] every reply is
/// `BackendReply::ok(model feature)` with `extra_ms == 0.0`, making the
/// wrapper bit-for-bit transparent.
#[derive(Debug)]
pub struct FaultyModel<'a> {
    model: &'a AppearanceModel,
    plan: FaultPlan,
}

impl<'a> FaultyModel<'a> {
    /// Wraps `model` under `plan`.
    pub fn new(model: &'a AppearanceModel, plan: FaultPlan) -> Self {
        Self { model, plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl InferenceBackend for FaultyModel<'_> {
    fn try_observe(&self, tb: &TrackBox, at: &Attempt) -> BackendReply {
        if self.plan.is_hard_down(at.epoch) {
            return BackendReply::fault(BackendFault::Unavailable, self.plan.fault_latency_ms);
        }
        let spike = if self.plan.spikes(at) {
            self.plan.latency_spike_ms
        } else {
            0.0
        };
        if self.plan.fails_transiently(at) {
            return BackendReply::fault(
                BackendFault::Transient("injected transient inference failure"),
                spike + self.plan.fault_latency_ms,
            );
        }
        if self.plan.corrupts(at) {
            return BackendReply {
                outcome: Ok(Feature::from_raw(vec![f64::NAN, f64::NAN])),
                extra_ms: spike,
            };
        }
        BackendReply {
            outcome: Ok(self.model.observe_track_box(tb)),
            extra_ms: spike,
        }
    }

    fn available(&self, epoch: u64) -> bool {
        !self.plan.is_hard_down(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, BoxKey};
    use tm_types::{BBox, FrameIdx, GtObjectId, TrackId};

    fn tb(frame: u64, actor: u64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(0.0, 0.0, 10.0, 10.0))
            .with_provenance(GtObjectId(actor))
    }

    fn at(epoch: u64, attempt: u32, t: u64, f: u64) -> Attempt {
        Attempt {
            epoch,
            attempt,
            key: BoxKey::new(TrackId(t), FrameIdx(f)),
        }
    }

    #[test]
    fn zero_plan_is_transparent() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let faulty = FaultyModel::new(&m, FaultPlan::none());
        for i in 0..50u64 {
            let b = tb(i, i % 5);
            let reply = faulty.try_observe(&b, &at(i % 3, 0, i + 1, i));
            assert_eq!(reply.extra_ms.to_bits(), 0.0f64.to_bits());
            let f = reply.outcome.expect("zero plan never fails");
            assert_eq!(f, m.observe_track_box(&b), "box {i}");
            assert!(faulty.available(i));
        }
    }

    #[test]
    fn hard_down_epochs_refuse_work() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let faulty = FaultyModel::new(&m, FaultPlan::none().with_hard_down(2, 4));
        assert!(faulty.available(1));
        assert!(!faulty.available(2));
        assert!(!faulty.available(3));
        assert!(faulty.available(4));
        let reply = faulty.try_observe(&tb(0, 1), &at(3, 0, 1, 0));
        assert_eq!(reply.outcome.unwrap_err(), BackendFault::Unavailable);
        // Same box, healthy epoch: fine.
        let reply = faulty.try_observe(&tb(0, 1), &at(4, 0, 1, 0));
        assert!(reply.outcome.is_ok());
    }

    #[test]
    fn corrupted_replies_are_non_finite() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let mut plan = FaultPlan::none();
        plan.corrupt_rate = 1.0;
        let faulty = FaultyModel::new(&m, plan);
        let f = faulty
            .try_observe(&tb(0, 1), &at(0, 0, 1, 0))
            .outcome
            .expect("corruption is an Ok reply");
        assert!(!f.is_finite());
    }

    #[test]
    fn replays_are_identical() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let faulty = FaultyModel::new(&m, FaultPlan::flaky(7));
        for i in 0..200u64 {
            let a = at(i % 5, (i % 4) as u32, i, i * 2 + 1);
            let b = tb(i * 2 + 1, i % 3);
            let r1 = faulty.try_observe(&b, &a);
            let r2 = faulty.try_observe(&b, &a);
            assert_eq!(r1.extra_ms.to_bits(), r2.extra_ms.to_bits());
            match (r1.outcome, r2.outcome) {
                (Ok(f1), Ok(f2)) => assert_eq!(f1.as_slice().len(), f2.as_slice().len()),
                (Err(e1), Err(e2)) => assert_eq!(e1, e2),
                (a, b) => panic!("replay diverged: {a:?} vs {b:?}"),
            }
        }
    }
}
