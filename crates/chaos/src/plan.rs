//! Seeded fault schedules.

use tm_reid::Attempt;

/// Distinguishes the independent per-attempt decisions so one attempt can
/// (say) both spike and fail without the draws being correlated.
const SALT_TRANSIENT: u64 = 0x7261_6e73;
const SALT_CORRUPT: u64 = 0x636f_7272;
const SALT_SPIKE: u64 = 0x7370_696b;

/// A deterministic schedule of ReID-backend faults.
///
/// Rates are probabilities in `[0, 1]` evaluated **per attempt** by hashing
/// `(seed, epoch, box, attempt, salt)` — no mutable RNG state, so the same
/// plan replays the same faults regardless of threading or call order, and
/// a retry of the same attempt index sees the same outcome.
///
/// `hard_down` lists half-open `[start, end)` *epoch* ranges (the merging
/// layer uses its window cursor as the epoch) during which the backend
/// refuses all work — the scenario that trips the circuit breaker into
/// degraded mode.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed behind every decision hash.
    pub seed: u64,
    /// Probability an attempt fails transiently (timeout-style).
    pub transient_failure_rate: f64,
    /// Probability an attempt returns a feature full of NaNs.
    pub corrupt_rate: f64,
    /// Probability a (successful or failed) attempt takes a latency spike.
    pub latency_spike_rate: f64,
    /// Extra simulated milliseconds a latency spike costs.
    pub latency_spike_ms: f64,
    /// Simulated milliseconds burned by a failed attempt (time spent
    /// waiting on the timeout), on top of any spike.
    pub fault_latency_ms: f64,
    /// Half-open `[start, end)` epoch ranges of hard unavailability.
    pub hard_down: Vec<(u64, u64)>,
}

impl FaultPlan {
    /// The all-zero plan: no faults, no spikes, no outages. A backend
    /// driven by this plan behaves identically to the unwrapped model.
    pub fn none() -> Self {
        Self {
            seed: 0,
            transient_failure_rate: 0.0,
            corrupt_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_ms: 0.0,
            fault_latency_ms: 0.0,
            hard_down: Vec::new(),
        }
    }

    /// A mildly hostile plan for chaos suites: occasional transient
    /// failures, rare corruption, occasional latency spikes, no outages.
    pub fn flaky(seed: u64) -> Self {
        Self {
            seed,
            transient_failure_rate: 0.05,
            corrupt_rate: 0.02,
            latency_spike_rate: 0.05,
            latency_spike_ms: 40.0,
            fault_latency_ms: 25.0,
            hard_down: Vec::new(),
        }
    }

    /// Adds a hard-down epoch range (builder style).
    pub fn with_hard_down(mut self, start: u64, end: u64) -> Self {
        self.hard_down.push((start, end));
        self
    }

    /// True when `epoch` falls inside a hard-down range.
    pub fn is_hard_down(&self, epoch: u64) -> bool {
        self.hard_down.iter().any(|&(s, e)| s <= epoch && epoch < e)
    }

    /// True when the plan can never perturb anything.
    pub fn is_none(&self) -> bool {
        self.transient_failure_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.latency_spike_rate == 0.0
            && self.hard_down.is_empty()
    }

    /// Whether an attempt fails transiently.
    pub fn fails_transiently(&self, at: &Attempt) -> bool {
        unit(self.seed, SALT_TRANSIENT, at) < self.transient_failure_rate
    }

    /// Whether an attempt returns a corrupted (NaN) feature.
    pub fn corrupts(&self, at: &Attempt) -> bool {
        unit(self.seed, SALT_CORRUPT, at) < self.corrupt_rate
    }

    /// Whether an attempt takes a latency spike.
    pub fn spikes(&self, at: &Attempt) -> bool {
        unit(self.seed, SALT_SPIKE, at) < self.latency_spike_rate
    }
}

/// SplitMix64 finalizer — full-avalanche mixing of one word.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds several words into one hash.
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        h = mix(h.wrapping_add(w).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    h
}

/// A uniform draw in `[0, 1)` from the top 53 bits of the hash.
pub(crate) fn unit_from_words(words: &[u64]) -> f64 {
    (hash_words(words) >> 11) as f64 / (1u64 << 53) as f64
}

fn unit(seed: u64, salt: u64, at: &Attempt) -> f64 {
    unit_from_words(&[
        seed,
        salt,
        at.epoch,
        at.attempt as u64,
        at.key.track.get(),
        at.key.frame.get(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::BoxKey;
    use tm_types::{FrameIdx, TrackId};

    fn at(epoch: u64, attempt: u32, t: u64, f: u64) -> Attempt {
        Attempt {
            epoch,
            attempt,
            key: BoxKey::new(TrackId(t), FrameIdx(f)),
        }
    }

    #[test]
    fn zero_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for e in 0..20 {
            for a in 0..4 {
                let at = at(e, a, e * 7 + 1, e * 13 + 2);
                assert!(!p.fails_transiently(&at));
                assert!(!p.corrupts(&at));
                assert!(!p.spikes(&at));
            }
            assert!(!p.is_hard_down(e));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_dependent() {
        let p = FaultPlan::flaky(42);
        let a0 = at(3, 0, 5, 77);
        assert_eq!(p.fails_transiently(&a0), p.fails_transiently(&a0));
        // Across many attempts the rate must bite somewhere and spare
        // somewhere — i.e. decisions vary with the attempt coordinates.
        let mut fired = 0;
        for i in 0..2000u64 {
            if p.fails_transiently(&at(i % 7, (i % 4) as u32, i, i * 3)) {
                fired += 1;
            }
        }
        assert!(fired > 0 && fired < 2000, "fired {fired}/2000");
        // ~5% rate: loose sanity band.
        assert!((20..400).contains(&fired), "fired {fired}/2000");
    }

    #[test]
    fn seeds_change_the_schedule() {
        let p1 = FaultPlan::flaky(1);
        let p2 = FaultPlan::flaky(2);
        let differs = (0..500u64).any(|i| {
            let a = at(0, 0, i, i + 1);
            p1.fails_transiently(&a) != p2.fails_transiently(&a)
        });
        assert!(differs);
    }

    #[test]
    fn hard_down_ranges_are_half_open() {
        let p = FaultPlan::none()
            .with_hard_down(4, 6)
            .with_hard_down(10, 11);
        assert!(!p.is_hard_down(3));
        assert!(p.is_hard_down(4));
        assert!(p.is_hard_down(5));
        assert!(!p.is_hard_down(6));
        assert!(p.is_hard_down(10));
        assert!(!p.is_hard_down(11));
        assert!(!p.is_none());
    }
}
