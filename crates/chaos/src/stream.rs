//! Tracker-output stream mutators.
//!
//! Faults on the *data* side of ingestion: observations that never arrive,
//! boxes delivered twice, coordinates trashed in transit, and watermark
//! sequences that run backwards. These produce exactly the defects
//! `TrackSet::validate` and the streaming watermark guard are specified to
//! catch.

use crate::plan::unit_from_words;
use tm_types::{Track, TrackSet};

const SALT_DROP: u64 = 0x6472_6f70;
const SALT_DUP: u64 = 0x6475_7063;
const SALT_NAN: u64 = 0x6e61_6e62;
const SALT_REGRESS: u64 = 0x7265_6772;

/// A deterministic mutator of tracker output. Each box's fate is a pure
/// hash of `(seed, track, frame, salt)`, so a given configuration always
/// produces the same mutated set.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamFaults {
    /// Seed behind every decision hash.
    pub seed: u64,
    /// Probability an observation is dropped entirely.
    pub drop_rate: f64,
    /// Probability an observation is delivered twice (same frame —
    /// [`tm_types::TrackDefect::DuplicateFrame`]).
    pub duplicate_rate: f64,
    /// Probability a box's coordinates are trashed to NaN
    /// ([`tm_types::TrackDefect::NonFiniteBox`]).
    pub corrupt_rate: f64,
}

impl StreamFaults {
    /// No mutation at all.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }

    fn fires(&self, salt: u64, track: u64, frame: u64, rate: f64) -> bool {
        unit_from_words(&[self.seed, salt, track, frame]) < rate
    }

    /// Applies the faults to `tracks`, returning the mutated set. With all
    /// rates zero the output equals the input.
    pub fn apply(&self, tracks: &TrackSet) -> TrackSet {
        let mut out: Vec<Track> = Vec::with_capacity(tracks.len());
        for t in tracks.iter() {
            let mut mutated = Track::new(t.id, t.class);
            for b in &t.boxes {
                let (tid, frame) = (t.id.get(), b.frame.get());
                if self.fires(SALT_DROP, tid, frame, self.drop_rate) {
                    continue;
                }
                let mut b = *b;
                if self.fires(SALT_NAN, tid, frame, self.corrupt_rate) {
                    b.bbox.x = f64::NAN;
                }
                mutated.boxes.push(b);
                if self.fires(SALT_DUP, tid, frame, self.duplicate_rate) {
                    mutated.boxes.push(b);
                }
            }
            out.push(mutated);
        }
        TrackSet::from_tracks(out)
    }
}

/// A watermark schedule with injected regressions: walks `step`-sized
/// increments up to `total_frames`, but each tick has probability
/// `regress_rate` of reporting a *smaller* frames-available value than its
/// predecessor — the out-of-order delivery a streaming ingester must
/// reject cleanly (`TmError::FrameRegression`) rather than corrupt state.
pub fn regressing_watermarks(
    seed: u64,
    total_frames: u64,
    step: u64,
    regress_rate: f64,
) -> Vec<u64> {
    let step = step.max(1);
    let mut out = Vec::new();
    let mut frames = step;
    while frames < total_frames + step {
        let tick = frames.min(total_frames);
        if !out.is_empty() && unit_from_words(&[seed, SALT_REGRESS, tick]) < regress_rate {
            out.push(tick.saturating_sub(step).saturating_sub(1));
        }
        out.push(tick);
        frames += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{BBox, ClassId, FrameIdx, TrackBox, TrackDefect, TrackId};

    fn set() -> TrackSet {
        let mut tracks = Vec::new();
        for id in 1..=10u64 {
            let boxes = (0..30u64)
                .map(|f| TrackBox::new(FrameIdx(f), BBox::new(f as f64, 0.0, 8.0, 8.0)))
                .collect();
            tracks.push(Track::with_boxes(TrackId(id), ClassId(1), boxes));
        }
        TrackSet::from_tracks(tracks)
    }

    #[test]
    fn zero_rates_are_identity() {
        let s = set();
        assert_eq!(StreamFaults::none(9).apply(&s), s);
    }

    #[test]
    fn apply_is_deterministic() {
        let s = set();
        let f = StreamFaults {
            seed: 3,
            drop_rate: 0.2,
            duplicate_rate: 0.1,
            corrupt_rate: 0.1,
        };
        // NaN != NaN, so compare the box streams bitwise instead of with
        // TrackSet's PartialEq.
        let dump = |ts: &TrackSet| -> Vec<(u64, u64, [u64; 4])> {
            ts.iter()
                .flat_map(|t| {
                    t.boxes.iter().map(move |b| {
                        (
                            t.id.get(),
                            b.frame.get(),
                            [
                                b.bbox.x.to_bits(),
                                b.bbox.y.to_bits(),
                                b.bbox.w.to_bits(),
                                b.bbox.h.to_bits(),
                            ],
                        )
                    })
                })
                .collect()
        };
        assert_eq!(dump(&f.apply(&s)), dump(&f.apply(&s)));
    }

    #[test]
    fn duplicates_and_nans_fail_validation() {
        let s = set();
        let dup = StreamFaults {
            seed: 1,
            drop_rate: 0.0,
            duplicate_rate: 0.5,
            corrupt_rate: 0.0,
        }
        .apply(&s);
        match dup.validate().expect_err("duplicates must be rejected") {
            tm_types::TmError::InvalidTrack { defect, .. } => {
                assert_eq!(defect, TrackDefect::DuplicateFrame)
            }
            e => panic!("unexpected error {e:?}"),
        }
        let nan = StreamFaults {
            seed: 1,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            corrupt_rate: 0.5,
        }
        .apply(&s);
        match nan.validate().expect_err("NaNs must be rejected") {
            tm_types::TmError::InvalidTrack { defect, .. } => {
                assert_eq!(defect, TrackDefect::NonFiniteBox)
            }
            e => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn drops_shrink_but_stay_valid() {
        let s = set();
        let dropped = StreamFaults {
            seed: 2,
            drop_rate: 0.3,
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
        }
        .apply(&s);
        assert!(dropped.total_boxes() < s.total_boxes());
        dropped.validate().expect("drops alone keep tracks valid");
    }

    #[test]
    fn regressing_watermarks_regress_and_terminate() {
        let w = regressing_watermarks(5, 500, 50, 0.5);
        assert_eq!(*w.last().unwrap(), 500);
        assert!(w.windows(2).any(|p| p[1] < p[0]), "no regression in {w:?}");
        // Deterministic.
        assert_eq!(w, regressing_watermarks(5, 500, 50, 0.5));
        // Zero rate: strictly increasing.
        let clean = regressing_watermarks(5, 500, 50, 0.0);
        assert!(clean.windows(2).all(|p| p[1] > p[0]));
    }
}
