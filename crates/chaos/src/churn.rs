//! Seeded tenant-churn schedules for the serve layer.
//!
//! A long-running multi-tenant daemon faces a second axis of chaos beyond
//! backend faults: tenants join, leave, and burst-submit on their own
//! schedules, concurrently with camera outages. [`TenantChurn`] is the
//! deterministic source of all of it — every decision (is tenant `t`
//! active in cycle `c`? does it burst? when are its cameras hard-down?) is
//! a pure hash of `(seed, salt, coordinates)`, exactly like [`FaultPlan`]:
//! no RNG state, so a churn soak replays the identical tenant lifecycle at
//! any thread count and survives kill-and-resume without drift.
//!
//! Membership is evaluated per **epoch** (a fixed number of driver cycles)
//! so tenants stay joined long enough to make progress; bursts are per
//! cycle. Camera outages come back as ordinary [`FaultPlan`] hard-down
//! window ranges, so the serve soak drives churn and outages through the
//! same `FaultyModel` machinery the single-stream chaos suite uses.

use crate::plan::{unit_from_words, FaultPlan};

const SALT_MEMBER: u64 = 0x6d62_7273;
const SALT_BURST: u64 = 0x6275_7273;
const SALT_OUTAGE: u64 = 0x6f75_7467;
const SALT_OFFSET: u64 = 0x6f66_6673;

/// Tuning for a [`TenantChurn`] schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantChurnConfig {
    /// Seed behind every decision hash.
    pub seed: u64,
    /// Tenant id universe: ids `0..tenants` participate in the schedule.
    pub tenants: u64,
    /// The first `always_on` tenant ids are pinned active in every epoch —
    /// the "surviving tenants" whose final mappings soak tests compare
    /// against fault-free solo runs.
    pub always_on: u64,
    /// Driver cycles per membership epoch (clamped to ≥ 1). Membership
    /// only changes at epoch boundaries.
    pub epoch_cycles: u64,
    /// Probability a (non-pinned) tenant is active in an epoch.
    pub active_rate: f64,
    /// Probability a cycle is a burst for an active tenant.
    pub burst_rate: f64,
    /// Submission multiplier during a burst (1 = bursts disabled).
    pub burst_multiplier: u64,
    /// Probability a `(tenant, stream)` camera goes hard-down in one
    /// outage block (see [`TenantChurn::fault_plan`]).
    pub outage_rate: f64,
    /// Length of one hard-down range, in windows.
    pub outage_windows: u64,
}

impl Default for TenantChurnConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            tenants: 4,
            always_on: 1,
            epoch_cycles: 4,
            active_rate: 0.7,
            burst_rate: 0.15,
            burst_multiplier: 3,
            outage_rate: 0.4,
            outage_windows: 2,
        }
    }
}

/// A deterministic join/leave/burst schedule over a tenant universe, plus
/// per-camera outage plans. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantChurn {
    config: TenantChurnConfig,
}

impl TenantChurn {
    /// A schedule from the given tuning (epoch length clamped to ≥ 1).
    pub fn new(config: TenantChurnConfig) -> Self {
        let config = TenantChurnConfig {
            epoch_cycles: config.epoch_cycles.max(1),
            burst_multiplier: config.burst_multiplier.max(1),
            ..config
        };
        Self { config }
    }

    /// The effective (clamped) tuning.
    pub fn config(&self) -> &TenantChurnConfig {
        &self.config
    }

    /// The membership epoch containing `cycle`.
    pub fn epoch(&self, cycle: u64) -> u64 {
        cycle / self.config.epoch_cycles
    }

    /// Whether tenant `t` is active during `cycle`'s epoch.
    pub fn active(&self, tenant: u64, cycle: u64) -> bool {
        if tenant >= self.config.tenants {
            return false;
        }
        if tenant < self.config.always_on {
            return true;
        }
        unit_from_words(&[self.config.seed, SALT_MEMBER, tenant, self.epoch(cycle)])
            < self.config.active_rate
    }

    /// Whether tenant `t` joins at exactly this cycle (first cycle of an
    /// epoch in which it is active but was not in the previous epoch).
    pub fn joins(&self, tenant: u64, cycle: u64) -> bool {
        if !cycle.is_multiple_of(self.config.epoch_cycles) {
            return false;
        }
        let was = cycle >= self.config.epoch_cycles
            && self.active(tenant, cycle - self.config.epoch_cycles);
        self.active(tenant, cycle) && !was
    }

    /// Whether tenant `t` leaves at exactly this cycle (first cycle of an
    /// epoch in which it is inactive but was active in the previous one).
    pub fn leaves(&self, tenant: u64, cycle: u64) -> bool {
        if cycle == 0 || !cycle.is_multiple_of(self.config.epoch_cycles) {
            return false;
        }
        let was = self.active(tenant, cycle - self.config.epoch_cycles);
        !self.active(tenant, cycle) && was
    }

    /// The submission multiplier for tenant `t` in `cycle`: the burst
    /// multiplier when the per-cycle draw fires, else 1. Inactive tenants
    /// submit nothing regardless; callers gate on [`TenantChurn::active`].
    pub fn burst_multiplier(&self, tenant: u64, cycle: u64) -> u64 {
        let draw = unit_from_words(&[self.config.seed, SALT_BURST, tenant, cycle]);
        if draw < self.config.burst_rate {
            self.config.burst_multiplier
        } else {
            1
        }
    }

    /// The camera-outage plan for `(tenant, stream)` over windows
    /// `0..max_window`. The window axis is cut into blocks of
    /// `4 * outage_windows`; each block draws once for an outage and, when
    /// it fires, places one `outage_windows`-long hard-down range at a
    /// hashed offset inside the block. Ranges therefore never overlap and
    /// the backend always recovers between outages — the breaker-recovery
    /// path gets exercised, not starved.
    pub fn fault_plan(&self, tenant: u64, stream: u64, max_window: u64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((tenant << 16) | stream);
        let len = self.config.outage_windows.max(1);
        let block = 4 * len;
        let mut start_of_block = 0;
        while start_of_block < max_window {
            let b = start_of_block / block;
            let fires = unit_from_words(&[self.config.seed, SALT_OUTAGE, tenant, stream, b])
                < self.config.outage_rate;
            if fires {
                let slack = block - len;
                let offset =
                    (crate::plan::hash_words(&[self.config.seed, SALT_OFFSET, tenant, stream, b]))
                        % (slack + 1);
                let s = start_of_block + offset;
                plan = plan.with_hard_down(s, (s + len).min(max_window));
            }
            start_of_block += block;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn(seed: u64) -> TenantChurn {
        TenantChurn::new(TenantChurnConfig {
            seed,
            tenants: 6,
            ..TenantChurnConfig::default()
        })
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = churn(7);
        let b = churn(7);
        for t in 0..6 {
            for c in 0..64 {
                assert_eq!(a.active(t, c), b.active(t, c));
                assert_eq!(a.burst_multiplier(t, c), b.burst_multiplier(t, c));
            }
            assert_eq!(a.fault_plan(t, 0, 40), b.fault_plan(t, 0, 40));
        }
    }

    #[test]
    fn pinned_tenants_never_leave_and_membership_is_epoch_stable() {
        let ch = churn(3);
        for c in 0..200 {
            assert!(ch.active(0, c), "always_on tenant left at cycle {c}");
            assert!(!ch.leaves(0, c));
            assert!(!ch.active(99, c), "out-of-universe tenant active");
        }
        // Within an epoch, membership cannot change.
        for t in 0..6 {
            for e in 0..20u64 {
                let base = ch.active(t, e * 4);
                for c in e * 4..(e + 1) * 4 {
                    assert_eq!(ch.active(t, c), base);
                }
            }
        }
    }

    #[test]
    fn churn_actually_churns_and_bursts_fire() {
        let ch = churn(11);
        let joins: usize = (0..6)
            .map(|t| (0..200).filter(|&c| ch.joins(t, c)).count())
            .sum();
        let leaves: usize = (0..6)
            .map(|t| (0..200).filter(|&c| ch.leaves(t, c)).count())
            .sum();
        assert!(joins > 0, "no tenant ever joined");
        assert!(leaves > 0, "no tenant ever left");
        let bursts = (0..200).filter(|&c| ch.burst_multiplier(1, c) > 1).count();
        assert!(bursts > 0, "no bursts in 200 cycles");
        assert!(bursts < 200, "every cycle burst");
    }

    #[test]
    fn outage_ranges_are_bounded_separated_and_recoverable() {
        let ch = churn(5);
        for t in 0..4 {
            for s in 0..3 {
                let plan = ch.fault_plan(t, s, 64);
                let mut prev_end = 0;
                for &(lo, hi) in &plan.hard_down {
                    assert!(lo < hi && hi <= 64, "range ({lo},{hi}) out of bounds");
                    assert!(hi - lo <= 2, "outage longer than configured");
                    assert!(lo >= prev_end, "ranges overlap");
                    prev_end = hi;
                }
            }
        }
        // The configured 40% rate must fire somewhere across the matrix.
        let total: usize = (0..4)
            .flat_map(|t| (0..3).map(move |s| (t, s)))
            .map(|(t, s)| ch.fault_plan(t, s, 64).hard_down.len())
            .sum();
        assert!(total > 0, "no outages scheduled at all");
    }
}
