//! Motion models for simulated actors and moving occluders.
//!
//! A [`MotionModel`] maps a local frame counter `0..n` to a sequence of
//! centre positions. Models that have a stochastic component (random walk,
//! stop-and-go) draw from the RNG passed to [`MotionModel::positions`], so
//! the world is fully determined by the scenario seed.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use tm_types::Point;

/// How an actor's centre moves over its lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MotionModel {
    /// Constant-velocity straight-line motion — highway cars, purposeful
    /// pedestrians.
    Linear {
        /// Centre position at local frame 0.
        start: Point,
        /// Per-frame displacement in x.
        vx: f64,
        /// Per-frame displacement in y.
        vy: f64,
    },
    /// Piecewise-linear motion through a list of waypoints at constant
    /// speed — pedestrians crossing a plaza, vehicles turning.
    Waypoints {
        /// Waypoints visited in order; must contain at least one point.
        points: Vec<Point>,
        /// Distance covered per frame along the polyline.
        speed: f64,
    },
    /// Gaussian random walk around a drift line — loitering pedestrians.
    RandomWalk {
        /// Centre position at local frame 0.
        start: Point,
        /// Per-frame drift in x.
        drift_x: f64,
        /// Per-frame drift in y.
        drift_y: f64,
        /// Standard deviation of the per-frame Gaussian jitter.
        sigma: f64,
    },
    /// Constant-velocity motion interrupted by periodic stops — vehicles
    /// at traffic lights, pedestrians pausing at shop windows.
    StopAndGo {
        /// Centre position at local frame 0.
        start: Point,
        /// Per-frame displacement in x while moving.
        vx: f64,
        /// Per-frame displacement in y while moving.
        vy: f64,
        /// Move for this many frames...
        go_frames: u64,
        /// ...then stand still for this many frames, repeating.
        stop_frames: u64,
    },
    /// No motion at all — parked cars, fixed installations.
    Parked {
        /// The fixed centre position.
        at: Point,
    },
}

impl MotionModel {
    /// Convenience constructor for [`MotionModel::Linear`].
    pub fn linear(start: Point, vx: f64, vy: f64) -> Self {
        MotionModel::Linear { start, vx, vy }
    }

    /// Convenience constructor for [`MotionModel::Parked`].
    pub fn parked(at: Point) -> Self {
        MotionModel::Parked { at }
    }

    /// The centre position at each of `n` local frames.
    ///
    /// Stochastic models consume randomness from `rng`; deterministic
    /// models ignore it. Always returns exactly `n` points.
    pub fn positions<R: Rng + ?Sized>(&self, n: u64, rng: &mut R) -> Vec<Point> {
        let n = n as usize;
        match self {
            MotionModel::Linear { start, vx, vy } => (0..n)
                .map(|i| start.offset(*vx * i as f64, *vy * i as f64))
                .collect(),
            MotionModel::Parked { at } => vec![*at; n],
            MotionModel::Waypoints { points, speed } => waypoint_positions(points, *speed, n),
            MotionModel::RandomWalk {
                start,
                drift_x,
                drift_y,
                sigma,
            } => {
                let normal = Normal::new(0.0, sigma.max(0.0)).expect("sigma is finite");
                let mut pos = *start;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(pos);
                    pos = pos.offset(drift_x + normal.sample(rng), drift_y + normal.sample(rng));
                }
                out
            }
            MotionModel::StopAndGo {
                start,
                vx,
                vy,
                go_frames,
                stop_frames,
            } => {
                let cycle = (go_frames + stop_frames).max(1);
                let mut pos = *start;
                let mut out = Vec::with_capacity(n);
                for i in 0..n as u64 {
                    out.push(pos);
                    if i % cycle < *go_frames {
                        pos = pos.offset(*vx, *vy);
                    }
                }
                out
            }
        }
    }
}

/// Walks the waypoint polyline at constant speed, clamping at the final
/// waypoint once the path is exhausted.
fn waypoint_positions(points: &[Point], speed: f64, n: usize) -> Vec<Point> {
    match points {
        [] => vec![Point::default(); n],
        [only] => vec![*only; n],
        _ => {
            let mut out = Vec::with_capacity(n);
            let mut seg = 0usize; // current segment start index
            let mut along = 0.0; // distance travelled inside current segment
            for _ in 0..n {
                // Advance past zero-length / exhausted segments.
                while seg + 1 < points.len() {
                    let seg_len = points[seg].distance(&points[seg + 1]);
                    if along < seg_len || seg_len == 0.0 && along <= 0.0 {
                        break;
                    }
                    along -= seg_len;
                    seg += 1;
                }
                if seg + 1 >= points.len() {
                    out.push(*points.last().expect("non-empty"));
                } else {
                    let seg_len = points[seg].distance(&points[seg + 1]);
                    let t = if seg_len > 0.0 { along / seg_len } else { 0.0 };
                    out.push(points[seg].lerp(&points[seg + 1], t));
                    along += speed.max(0.0);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn linear_advances_by_velocity() {
        let m = MotionModel::linear(Point::new(0.0, 10.0), 2.0, -1.0);
        let p = m.positions(3, &mut rng());
        assert_eq!(
            p,
            vec![
                Point::new(0.0, 10.0),
                Point::new(2.0, 9.0),
                Point::new(4.0, 8.0),
            ]
        );
    }

    #[test]
    fn parked_never_moves() {
        let m = MotionModel::parked(Point::new(5.0, 5.0));
        let p = m.positions(4, &mut rng());
        assert!(p.iter().all(|&q| q == Point::new(5.0, 5.0)));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn waypoints_interpolate_and_clamp() {
        let m = MotionModel::Waypoints {
            points: vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            speed: 4.0,
        };
        let p = m.positions(6, &mut rng());
        assert_eq!(p[0], Point::new(0.0, 0.0));
        assert_eq!(p[1], Point::new(4.0, 0.0));
        assert_eq!(p[2], Point::new(8.0, 0.0));
        // Past the end: clamp at the final waypoint.
        assert_eq!(p[3], Point::new(10.0, 0.0));
        assert_eq!(p[5], Point::new(10.0, 0.0));
    }

    #[test]
    fn waypoints_cross_segment_boundaries() {
        let m = MotionModel::Waypoints {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(3.0, 10.0),
            ],
            speed: 2.0,
        };
        let p = m.positions(4, &mut rng());
        assert_eq!(p[2], Point::new(3.0, 1.0)); // 4 along: 3 on seg 0, 1 on seg 1
        assert_eq!(p[3], Point::new(3.0, 3.0));
    }

    #[test]
    fn empty_and_single_waypoints_are_safe() {
        let empty = MotionModel::Waypoints {
            points: vec![],
            speed: 1.0,
        };
        assert_eq!(empty.positions(2, &mut rng()).len(), 2);
        let single = MotionModel::Waypoints {
            points: vec![Point::new(1.0, 2.0)],
            speed: 1.0,
        };
        assert!(single
            .positions(3, &mut rng())
            .iter()
            .all(|&q| q == Point::new(1.0, 2.0)));
    }

    #[test]
    fn random_walk_is_seed_deterministic() {
        let m = MotionModel::RandomWalk {
            start: Point::new(0.0, 0.0),
            drift_x: 1.0,
            drift_y: 0.0,
            sigma: 2.0,
        };
        let a = m.positions(50, &mut StdRng::seed_from_u64(3));
        let b = m.positions(50, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        // Drift dominates in expectation.
        assert!(a.last().unwrap().x > 10.0);
    }

    #[test]
    fn random_walk_zero_sigma_is_linear() {
        let m = MotionModel::RandomWalk {
            start: Point::new(0.0, 0.0),
            drift_x: 1.5,
            drift_y: 0.5,
            sigma: 0.0,
        };
        let p = m.positions(3, &mut rng());
        assert_eq!(p[2], Point::new(3.0, 1.0));
    }

    #[test]
    fn stop_and_go_pauses() {
        let m = MotionModel::StopAndGo {
            start: Point::new(0.0, 0.0),
            vx: 1.0,
            vy: 0.0,
            go_frames: 2,
            stop_frames: 2,
        };
        let p = m.positions(7, &mut rng());
        let xs: Vec<f64> = p.iter().map(|q| q.x).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 2.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn positions_length_always_matches() {
        for m in [
            MotionModel::linear(Point::default(), 1.0, 1.0),
            MotionModel::parked(Point::default()),
            MotionModel::Waypoints {
                points: vec![Point::default()],
                speed: 1.0,
            },
        ] {
            assert_eq!(m.positions(0, &mut rng()).len(), 0);
            assert_eq!(m.positions(17, &mut rng()).len(), 17);
        }
    }
}
