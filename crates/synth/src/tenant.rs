//! Deterministic multi-tenant ingestion workloads for the serve layer.
//!
//! The serve-layer soak tests need tracker-shaped input for many tenants ×
//! streams × thousands of windows, cheap enough to generate on the fly and
//! **prefix-consistent**: asking for the first `n` frames of a stream must
//! return exactly the first `n` frames of the same world you get when
//! asking for more. That property is what lets a soak driver re-submit a
//! growing feed cycle after cycle (the streaming merger's contract) and
//! lets a kill-and-resume test regenerate the identical feed on the other
//! side of the restart without storing it.
//!
//! [`TenantWorkload`] skips the full scene/detector/tracker stack and
//! emits already-fragmented tracks directly: each actor walks a straight
//! lane at a bounded speed and its trajectory is cut into fixed-length
//! fragments separated by fixed gaps — the polyonymous-track pattern the
//! merger exists to repair. Fragment geometry is chosen so the degraded
//! spatio-temporal gate (≤ 100 px, ≤ 150 frames by default) accepts
//! same-actor pairs, meaning shed-load and breaker-degraded windows still
//! make progress on this workload. Everything is a pure function of
//! `(tenant, stream, actor, frame)` — no RNG state, no history.

use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

/// Tuning for a [`TenantWorkload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantWorkloadConfig {
    /// Actors per stream (each actor yields one fragment chain).
    pub actors: u64,
    /// Frames per fragment (clamped to ≥ 1).
    pub fragment_frames: u64,
    /// Gap between consecutive fragments of one actor, in frames. Keep
    /// `gap_frames * speed ≤ 100` and `gap_frames ≤ 150` if degraded-mode
    /// windows should still merge this workload.
    pub gap_frames: u64,
    /// Horizontal speed in px/frame.
    pub speed: f64,
}

impl Default for TenantWorkloadConfig {
    fn default() -> Self {
        Self {
            actors: 3,
            fragment_frames: 90,
            gap_frames: 30,
            speed: 2.0,
        }
    }
}

/// A deterministic, prefix-consistent multi-tenant track generator. See
/// the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantWorkload {
    config: TenantWorkloadConfig,
}

impl TenantWorkload {
    /// A workload from the given tuning (fragment length clamped to ≥ 1).
    pub fn new(config: TenantWorkloadConfig) -> Self {
        let config = TenantWorkloadConfig {
            fragment_frames: config.fragment_frames.max(1),
            actors: config.actors.max(1),
            ..config
        };
        Self { config }
    }

    /// The effective (clamped) tuning.
    pub fn config(&self) -> &TenantWorkloadConfig {
        &self.config
    }

    /// The true identity of `(tenant, stream, actor)` — what a perfect
    /// merger should collapse each actor's fragments onto.
    pub fn identity(tenant: u64, stream: u64, actor: u64) -> GtObjectId {
        GtObjectId(tenant * 1_000 + stream * 100 + actor)
    }

    /// Tracker output for one stream covering frames `0..frames`:
    /// fragments with at least one box before `frames`, truncated at
    /// `frames`. Prefix-consistent: for `a ≤ b`, every track returned for
    /// `a` appears for `b` with the identical id, class and leading boxes.
    pub fn tracks(&self, tenant: u64, stream: u64, frames: u64) -> TrackSet {
        let c = &self.config;
        let period = c.fragment_frames + c.gap_frames;
        let mut tracks = Vec::new();
        for actor in 0..c.actors {
            // A per-(tenant, stream, actor) phase staggers fragment
            // boundaries across actors, so no single window sees every
            // actor cut at once.
            let phase = splitmix(tenant ^ (stream << 20) ^ (actor << 40)) % period;
            let x0 = (splitmix(Self::identity(tenant, stream, actor).get()) % 200) as f64;
            let y = 100.0 + actor as f64 * 60.0;
            for k in 0.. {
                let start = k * period + phase;
                if start >= frames {
                    break;
                }
                let end = (start + c.fragment_frames).min(frames);
                let boxes: Vec<TrackBox> = (start..end)
                    .map(|f| {
                        TrackBox::new(
                            FrameIdx(f),
                            BBox::new(x0 + f as f64 * c.speed, y, 40.0, 80.0),
                        )
                        .with_provenance(Self::identity(tenant, stream, actor))
                    })
                    .collect();
                tracks.push(Track::with_boxes(
                    TrackId(actor * 10_000 + k + 1),
                    classes::PEDESTRIAN,
                    boxes,
                ));
            }
        }
        TrackSet::from_tracks(tracks)
    }

    /// Like [`TenantWorkload::tracks`], but emits only the fragments with
    /// at least one box at or after `lo_frame` — the rolling-snapshot shape
    /// a real tracker feeds a retention-bounded daemon, and the thing that
    /// keeps a 10k-window soak linear instead of quadratic in feed length.
    /// Every returned track is bit-identical to its counterpart in the full
    /// prefix feed (same id, class, boxes); older fragments are simply
    /// absent.
    pub fn tracks_range(&self, tenant: u64, stream: u64, lo_frame: u64, frames: u64) -> TrackSet {
        let c = &self.config;
        let period = c.fragment_frames + c.gap_frames;
        let mut tracks = Vec::new();
        for actor in 0..c.actors {
            let phase = splitmix(tenant ^ (stream << 20) ^ (actor << 40)) % period;
            let x0 = (splitmix(Self::identity(tenant, stream, actor).get()) % 200) as f64;
            let y = 100.0 + actor as f64 * 60.0;
            // First fragment index whose end can reach lo_frame.
            let k0 = (lo_frame.saturating_sub(phase + c.fragment_frames)) / period;
            for k in k0.. {
                let start = k * period + phase;
                if start >= frames {
                    break;
                }
                let end = (start + c.fragment_frames).min(frames);
                if end <= lo_frame {
                    continue;
                }
                let boxes: Vec<TrackBox> = (start..end)
                    .map(|f| {
                        TrackBox::new(
                            FrameIdx(f),
                            BBox::new(x0 + f as f64 * c.speed, y, 40.0, 80.0),
                        )
                        .with_provenance(Self::identity(tenant, stream, actor))
                    })
                    .collect();
                tracks.push(Track::with_boxes(
                    TrackId(actor * 10_000 + k + 1),
                    classes::PEDESTRIAN,
                    boxes,
                ));
            }
        }
        TrackSet::from_tracks(tracks)
    }
}

/// SplitMix64 finalizer (same mixing as `tm-chaos`' schedules; duplicated
/// here so the workload generator stays dependency-free).
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> TenantWorkload {
        TenantWorkload::new(TenantWorkloadConfig::default())
    }

    #[test]
    fn output_is_valid_and_deterministic() {
        let w = workload();
        let a = w.tracks(1, 0, 500);
        let b = w.tracks(1, 0, 500);
        a.validate().unwrap();
        assert_eq!(a.len(), b.len());
        for t in a.iter() {
            assert_eq!(t.boxes, b.get(t.id).unwrap().boxes);
        }
        // Distinct coordinates produce distinct worlds.
        let other = w.tracks(2, 0, 500);
        assert!(a.iter().zip(other.iter()).any(|(x, y)| x.boxes != y.boxes));
    }

    #[test]
    fn feeds_are_prefix_consistent() {
        let w = workload();
        let short = w.tracks(3, 1, 250);
        let long = w.tracks(3, 1, 700);
        assert!(short.len() <= long.len());
        for t in short.iter() {
            let full = long.get(t.id).expect("track vanished as the feed grew");
            assert_eq!(full.class, t.class);
            assert_eq!(
                &full.boxes[..t.boxes.len()],
                &t.boxes[..],
                "track {:?} rewrote its prefix",
                t.id
            );
            // Everything in the short feed is genuinely before the cut.
            assert!(t.boxes.iter().all(|b| b.frame.get() < 250));
        }
    }

    #[test]
    fn ranged_feeds_match_the_full_prefix() {
        let w = workload();
        let full = w.tracks(2, 1, 900);
        let ranged = w.tracks_range(2, 1, 400, 900);
        assert!(!ranged.is_empty() && ranged.len() < full.len());
        for t in ranged.iter() {
            assert_eq!(
                t.boxes,
                full.get(t.id).unwrap().boxes,
                "ranged fragment differs from the full feed"
            );
            assert!(t.boxes.last().unwrap().frame.get() >= 400);
        }
        // No fragment reaching past the cut was dropped.
        for t in full.iter() {
            if t.boxes.last().unwrap().frame.get() >= 400 {
                assert!(ranged.get(t.id).is_some(), "missing {:?}", t.id);
            }
        }
        // lo_frame = 0 degenerates to the full feed.
        assert_eq!(w.tracks_range(2, 1, 0, 900), full);
    }

    #[test]
    fn fragments_are_mergeable_under_the_degraded_gate() {
        let w = workload();
        let set = w.tracks(0, 0, 700);
        // Group fragments by actor (via provenance) and check consecutive
        // fragments sit within the default degraded gate: ≤ 150 frames
        // apart, ≤ 100 px apart.
        for actor in 0..w.config().actors {
            let identity = TenantWorkload::identity(0, 0, actor);
            let mut frags: Vec<_> = set
                .iter()
                .filter(|t| t.boxes.first().and_then(|b| b.provenance) == Some(identity))
                .collect();
            frags.sort_by_key(|t| t.first_frame());
            assert!(frags.len() >= 2, "fixture must fragment");
            for pair in frags.windows(2) {
                let tail = pair[0].boxes.last().unwrap();
                let head = pair[1].boxes.first().unwrap();
                let gap = head.frame.get() - tail.frame.get();
                assert!(gap > 0 && gap <= 150, "temporal gap {gap}");
                let dx = (head.bbox.x - tail.bbox.x).abs();
                assert!(dx <= 100.0, "spatial jump {dx}px");
            }
        }
    }
}
