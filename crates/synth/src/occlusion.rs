//! Occluders and glare events — the two scene phenomena the paper names as
//! root causes of track fragmentation (§I).
//!
//! An [`Occluder`] hides (part of) an actor geometrically; the detection
//! simulator then misses the actor for the occluded stretch, and once the
//! miss streak exceeds the tracker's patience the track is killed and the
//! object re-appears under a fresh TID — a polyonymous track pair.
//!
//! A [`GlareEvent`] models unfavourable lighting: inside its region and time
//! range, detection probability drops and ReID appearance noise rises.

use crate::motion::MotionModel;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tm_types::{BBox, FrameIdx};

/// A foreground object that hides actors behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Occluder {
    /// Fixed scene furniture: a pillar, a parked truck, a kiosk.
    Static {
        /// The occluding region, constant over the whole video.
        bbox: BBox,
    },
    /// A moving foreground object (e.g. a bus crossing the camera).
    Moving {
        /// Occluder width.
        w: f64,
        /// Occluder height.
        h: f64,
        /// Motion of the occluder's centre.
        motion: MotionModel,
        /// First frame the occluder exists.
        enter: FrameIdx,
        /// First frame after the occluder is gone (exclusive).
        exit: FrameIdx,
    },
}

impl Occluder {
    /// Convenience constructor for a static occluder.
    pub fn static_box(bbox: BBox) -> Self {
        Occluder::Static { bbox }
    }

    /// Materializes the occluder's box at every frame of an `n_frames`
    /// video. `None` where the occluder does not exist.
    pub fn boxes_per_frame<R: Rng + ?Sized>(
        &self,
        n_frames: u64,
        rng: &mut R,
    ) -> Vec<Option<BBox>> {
        match self {
            Occluder::Static { bbox } => vec![Some(*bbox); n_frames as usize],
            Occluder::Moving {
                w,
                h,
                motion,
                enter,
                exit,
            } => {
                let mut out = vec![None; n_frames as usize];
                let start = enter.get().min(n_frames);
                let end = exit.get().min(n_frames);
                if start >= end {
                    return out;
                }
                let centres = motion.positions(end - start, rng);
                for (i, c) in centres.iter().enumerate() {
                    out[(start + i as u64) as usize] = Some(BBox::from_center(c.x, c.y, *w, *h));
                }
                out
            }
        }
    }
}

/// Unfavourable lighting in a region for a stretch of frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlareEvent {
    /// The affected region of the camera frame.
    pub region: BBox,
    /// First affected frame.
    pub start: FrameIdx,
    /// First unaffected frame (exclusive).
    pub end: FrameIdx,
    /// Severity in `[0, 1]`: 1.0 washes detections out completely.
    pub intensity: f64,
}

impl GlareEvent {
    /// Creates a glare event, clamping intensity to `[0, 1]`.
    pub fn new(region: BBox, start: FrameIdx, end: FrameIdx, intensity: f64) -> Self {
        Self {
            region,
            start,
            end,
            intensity: intensity.clamp(0.0, 1.0),
        }
    }

    /// Glare severity applied to an object whose box is `bbox` at `frame`:
    /// the event's intensity scaled by how much of the box lies inside the
    /// glare region; 0 outside the time range.
    pub fn severity_at(&self, frame: FrameIdx, bbox: &BBox) -> f64 {
        if frame < self.start || frame >= self.end {
            return 0.0;
        }
        self.intensity * bbox.coverage_by(&self.region)
    }
}

/// Estimates the fraction of `target` covered by the union of `covers`,
/// by point sampling on a regular `GRID × GRID` lattice inside `target`.
///
/// Exact union-of-rectangles area is overkill here; an 8×8 lattice gives
/// visibility estimates within ~2% which is far below the noise the
/// detection simulator adds on top. Returns 0 for an empty target.
pub fn union_coverage(target: &BBox, covers: &[BBox]) -> f64 {
    const GRID: usize = 8;
    if target.is_empty() || covers.is_empty() {
        return 0.0;
    }
    let mut hit = 0usize;
    for gy in 0..GRID {
        // Sample at cell centres to avoid edge bias.
        let py = target.y + target.h * (gy as f64 + 0.5) / GRID as f64;
        for gx in 0..GRID {
            let px = target.x + target.w * (gx as f64 + 0.5) / GRID as f64;
            let p = tm_types::Point::new(px, py);
            if covers.iter().any(|c| c.contains(&p)) {
                hit += 1;
            }
        }
    }
    hit as f64 / (GRID * GRID) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tm_types::Point;

    #[test]
    fn static_occluder_exists_every_frame() {
        let o = Occluder::static_box(BBox::new(0.0, 0.0, 10.0, 10.0));
        let boxes = o.boxes_per_frame(5, &mut StdRng::seed_from_u64(0));
        assert_eq!(boxes.len(), 5);
        assert!(boxes.iter().all(|b| b.is_some()));
    }

    #[test]
    fn moving_occluder_respects_lifetime() {
        let o = Occluder::Moving {
            w: 10.0,
            h: 10.0,
            motion: MotionModel::linear(Point::new(0.0, 0.0), 5.0, 0.0),
            enter: FrameIdx(2),
            exit: FrameIdx(4),
        };
        let boxes = o.boxes_per_frame(6, &mut StdRng::seed_from_u64(0));
        assert!(boxes[0].is_none() && boxes[1].is_none());
        assert!(boxes[2].is_some() && boxes[3].is_some());
        assert!(boxes[4].is_none() && boxes[5].is_none());
        // Moves by vx between its frames.
        assert_eq!(boxes[2].unwrap().center(), Point::new(0.0, 0.0));
        assert_eq!(boxes[3].unwrap().center(), Point::new(5.0, 0.0));
    }

    #[test]
    fn moving_occluder_lifetime_clipped_to_video() {
        let o = Occluder::Moving {
            w: 1.0,
            h: 1.0,
            motion: MotionModel::parked(Point::new(0.0, 0.0)),
            enter: FrameIdx(10),
            exit: FrameIdx(50),
        };
        let boxes = o.boxes_per_frame(12, &mut StdRng::seed_from_u64(0));
        assert!(boxes[9].is_none());
        assert!(boxes[10].is_some() && boxes[11].is_some());
    }

    #[test]
    fn glare_severity_scales_with_overlap_and_time() {
        let g = GlareEvent::new(
            BBox::new(0.0, 0.0, 100.0, 100.0),
            FrameIdx(10),
            FrameIdx(20),
            0.8,
        );
        let fully_inside = BBox::new(10.0, 10.0, 20.0, 20.0);
        assert_eq!(g.severity_at(FrameIdx(9), &fully_inside), 0.0);
        assert_eq!(g.severity_at(FrameIdx(20), &fully_inside), 0.0);
        assert!((g.severity_at(FrameIdx(10), &fully_inside) - 0.8).abs() < 1e-12);
        let half_inside = BBox::new(90.0, 0.0, 20.0, 100.0);
        assert!((g.severity_at(FrameIdx(15), &half_inside) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn union_coverage_full_none_and_half() {
        let t = BBox::new(0.0, 0.0, 80.0, 80.0);
        assert_eq!(union_coverage(&t, &[]), 0.0);
        assert_eq!(
            union_coverage(&t, &[BBox::new(-1.0, -1.0, 100.0, 100.0)]),
            1.0
        );
        let half = union_coverage(&t, &[BBox::new(0.0, 0.0, 40.0, 80.0)]);
        assert!((half - 0.5).abs() < 0.05, "got {half}");
    }

    #[test]
    fn union_coverage_does_not_double_count() {
        let t = BBox::new(0.0, 0.0, 80.0, 80.0);
        let c = BBox::new(0.0, 0.0, 40.0, 80.0);
        // The same cover twice is still half coverage.
        let twice = union_coverage(&t, &[c, c]);
        assert!((twice - 0.5).abs() < 0.05, "got {twice}");
    }

    #[test]
    fn union_coverage_empty_target_is_zero() {
        let t = BBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(
            union_coverage(&t, &[BBox::new(-5.0, -5.0, 10.0, 10.0)]),
            0.0
        );
    }
}
