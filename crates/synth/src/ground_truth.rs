//! Exact per-frame ground truth produced by the world simulation.

use crate::scene::SceneConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tm_types::{BBox, ClassId, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

/// One actor's exact state in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GtInstance {
    /// The actor's true identity.
    pub actor: GtObjectId,
    /// Object class.
    pub class: ClassId,
    /// The actor's full box, possibly extending beyond the viewport.
    pub full_bbox: BBox,
    /// The box clipped to the viewport; `None` when fully out of frame.
    pub visible_bbox: Option<BBox>,
    /// Fraction of the actor visible: occlusion × frame truncation, `[0,1]`.
    pub visibility: f64,
    /// Glare severity affecting the actor this frame, `[0, 1]`.
    pub glare: f64,
}

/// All actor instances in one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GtFrame {
    /// The frame index.
    pub frame: FrameIdx,
    /// Every actor alive this frame (including invisible ones).
    pub instances: Vec<GtInstance>,
}

/// The complete ground truth of a simulated video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    config: SceneConfig,
    frames: Vec<GtFrame>,
}

impl GroundTruth {
    /// Assembles ground truth from per-frame data.
    pub fn new(config: SceneConfig, frames: Vec<GtFrame>) -> Self {
        Self { config, frames }
    }

    /// The scene configuration this truth was simulated under.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Per-frame ground truth, indexed by frame.
    pub fn frames(&self) -> &[GtFrame] {
        &self.frames
    }

    /// Number of simulated frames.
    pub fn n_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Instances of a specific frame (empty slice when out of range).
    pub fn instances_at(&self, frame: FrameIdx) -> &[GtInstance] {
        self.frames
            .get(frame.get() as usize)
            .map_or(&[], |f| f.instances.as_slice())
    }

    /// The ground-truth track of every actor, as a [`TrackSet`] whose
    /// [`TrackId`]s equal the actors' [`GtObjectId`]s.
    ///
    /// Only observations where the actor is at least `min_visibility`
    /// visible are included — an actor fully hidden behind a pillar has no
    /// observable box, and GT benchmarks (MOT-17 et al.) likewise annotate
    /// visibility and let evaluators threshold it. Actors that never clear
    /// the threshold produce no track.
    pub fn gt_tracks(&self, min_visibility: f64) -> TrackSet {
        let mut per_actor: BTreeMap<GtObjectId, Track> = BTreeMap::new();
        for f in &self.frames {
            for i in &f.instances {
                let Some(vb) = i.visible_bbox else { continue };
                if i.visibility < min_visibility {
                    continue;
                }
                per_actor
                    .entry(i.actor)
                    .or_insert_with(|| Track::new(TrackId(i.actor.get()), i.class))
                    .push(
                        TrackBox::new(f.frame, vb)
                            .with_provenance(i.actor)
                            .with_visibility(i.visibility),
                    );
            }
        }
        per_actor.into_values().collect()
    }

    /// The longest GT track span in frames — the paper's `L_max`, which
    /// constrains the window length (`L ≥ 2·L_max`, §II).
    pub fn l_max(&self, min_visibility: f64) -> u64 {
        self.gt_tracks(min_visibility)
            .iter()
            .map(Track::span)
            .max()
            .unwrap_or(0)
    }

    /// Total number of visible instances (≥ `min_visibility`) across all
    /// frames — the "BBoxes per video" statistic the paper reports.
    pub fn total_visible_instances(&self, min_visibility: f64) -> usize {
        self.frames
            .iter()
            .flat_map(|f| &f.instances)
            .filter(|i| i.visible_bbox.is_some() && i.visibility >= min_visibility)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::MotionModel;
    use crate::scene::{ActorSpec, Scenario};
    use tm_types::{ids::classes, Point};

    fn two_actor_gt() -> GroundTruth {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 20), 1);
        s.push_actor(ActorSpec::new(
            GtObjectId(3),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(0),
            FrameIdx(10),
            MotionModel::linear(Point::new(100.0, 400.0), 5.0, 0.0),
        ));
        s.push_actor(ActorSpec::new(
            GtObjectId(8),
            classes::CAR,
            80.0,
            60.0,
            FrameIdx(5),
            FrameIdx(20),
            MotionModel::linear(Point::new(800.0, 200.0), -10.0, 0.0),
        ));
        s.simulate()
    }

    #[test]
    fn gt_tracks_mirror_actor_lifetimes() {
        let gt = two_actor_gt();
        let tracks = gt.gt_tracks(0.1);
        assert_eq!(tracks.len(), 2);
        let a = tracks.get(TrackId(3)).unwrap();
        assert_eq!(a.first_frame(), Some(FrameIdx(0)));
        assert_eq!(a.last_frame(), Some(FrameIdx(9)));
        assert_eq!(a.class, classes::PEDESTRIAN);
        assert_eq!(a.majority_actor().unwrap().0, GtObjectId(3));
        let b = tracks.get(TrackId(8)).unwrap();
        assert_eq!(b.span(), 15);
    }

    #[test]
    fn l_max_is_longest_span() {
        let gt = two_actor_gt();
        assert_eq!(gt.l_max(0.1), 15);
    }

    #[test]
    fn instances_at_out_of_range_is_empty() {
        let gt = two_actor_gt();
        assert!(gt.instances_at(FrameIdx(999)).is_empty());
        assert_eq!(gt.instances_at(FrameIdx(0)).len(), 1);
        assert_eq!(gt.instances_at(FrameIdx(7)).len(), 2);
    }

    #[test]
    fn visibility_threshold_filters_tracks() {
        let gt = two_actor_gt();
        // An impossible threshold removes every track.
        assert!(gt.gt_tracks(1.1).is_empty());
    }

    #[test]
    fn total_visible_instances_counts_boxes() {
        let gt = two_actor_gt();
        // Actor 3 alive frames 0..10, actor 8 alive 5..20 → 10 + 15 boxes.
        assert_eq!(gt.total_visible_instances(0.0), 25);
    }
}
