//! Scene configuration and the simulation driver.

use crate::ground_truth::{GroundTruth, GtFrame, GtInstance};
use crate::motion::MotionModel;
use crate::occlusion::{union_coverage, GlareEvent, Occluder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tm_types::{BBox, ClassId, FrameIdx, GtObjectId};

/// Camera / video parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Viewport width in pixels.
    pub width: f64,
    /// Viewport height in pixels.
    pub height: f64,
    /// Number of frames to simulate.
    pub n_frames: u64,
    /// Frames per second of the notional camera (used only for reporting).
    pub fps: f64,
}

impl SceneConfig {
    /// Creates a config with the default 30 fps camera.
    pub fn new(width: f64, height: f64, n_frames: u64) -> Self {
        Self {
            width,
            height,
            n_frames,
            fps: 30.0,
        }
    }

    /// The camera viewport as a box at the origin.
    pub fn viewport(&self) -> BBox {
        BBox::new(0.0, 0.0, self.width, self.height)
    }
}

/// A ground-truth actor: one physical object with an identity, size,
/// lifetime and motion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorSpec {
    /// The actor's true identity.
    pub id: GtObjectId,
    /// Object class.
    pub class: ClassId,
    /// Box width in pixels.
    pub width: f64,
    /// Box height in pixels.
    pub height: f64,
    /// First frame the actor exists in the world.
    pub enter: FrameIdx,
    /// First frame after the actor leaves (exclusive).
    pub exit: FrameIdx,
    /// Motion of the actor's centre.
    pub motion: MotionModel,
}

impl ActorSpec {
    /// Creates an actor spec.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: GtObjectId,
        class: ClassId,
        width: f64,
        height: f64,
        enter: FrameIdx,
        exit: FrameIdx,
        motion: MotionModel,
    ) -> Self {
        Self {
            id,
            class,
            width,
            height,
            enter,
            exit,
            motion,
        }
    }

    /// Lifetime length in frames (clipped to the video).
    pub fn lifetime(&self, n_frames: u64) -> u64 {
        self.exit
            .get()
            .min(n_frames)
            .saturating_sub(self.enter.get())
    }
}

/// A complete scene description: camera, actors, occluders, glare, seed.
///
/// [`Scenario::simulate`] is deterministic: the same scenario (including
/// `seed`) always yields the same [`GroundTruth`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Camera / video parameters.
    pub config: SceneConfig,
    /// The ground-truth actors.
    pub actors: Vec<ActorSpec>,
    /// Foreground occluders.
    pub occluders: Vec<Occluder>,
    /// Lighting degradation events.
    pub glare: Vec<GlareEvent>,
    /// Master seed for all stochastic motion.
    pub seed: u64,
}

impl Scenario {
    /// Creates an empty scenario.
    pub fn new(config: SceneConfig, seed: u64) -> Self {
        Self {
            config,
            actors: Vec::new(),
            occluders: Vec::new(),
            glare: Vec::new(),
            seed,
        }
    }

    /// Adds an actor.
    pub fn push_actor(&mut self, actor: ActorSpec) -> &mut Self {
        self.actors.push(actor);
        self
    }

    /// Adds an occluder.
    pub fn push_occluder(&mut self, occluder: Occluder) -> &mut Self {
        self.occluders.push(occluder);
        self
    }

    /// Adds a glare event.
    pub fn push_glare(&mut self, glare: GlareEvent) -> &mut Self {
        self.glare.push(glare);
        self
    }

    /// Runs the world simulation, producing exact per-frame ground truth.
    ///
    /// Depth model: an object whose box bottom edge is lower on screen
    /// (larger `y2`) is closer to the camera and occludes objects behind
    /// it — the standard assumption for a street-level camera. Dedicated
    /// occluders are always foreground.
    pub fn simulate(&self) -> GroundTruth {
        let n = self.config.n_frames;
        let viewport = self.config.viewport();

        // Materialize every actor's full (unclipped) box at every frame of
        // its lifetime. Seeding: each entity derives its own RNG from the
        // master seed and its index, so adding an actor never perturbs the
        // motion of existing ones.
        let mut actor_boxes: Vec<Vec<Option<BBox>>> = Vec::with_capacity(self.actors.len());
        for (idx, a) in self.actors.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(a.id.get())
                    .wrapping_add(idx as u64),
            );
            let mut per_frame = vec![None; n as usize];
            let start = a.enter.get().min(n);
            let end = a.exit.get().min(n);
            if start < end {
                let centres = a.motion.positions(end - start, &mut rng);
                for (i, c) in centres.iter().enumerate() {
                    per_frame[(start + i as u64) as usize] =
                        Some(BBox::from_center(c.x, c.y, a.width, a.height));
                }
            }
            actor_boxes.push(per_frame);
        }

        // Materialize occluder boxes per frame.
        let mut occ_boxes: Vec<Vec<Option<BBox>>> = Vec::with_capacity(self.occluders.len());
        for (idx, o) in self.occluders.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0xD1B5_4A32_D192_ED03)
                    .wrapping_add(idx as u64),
            );
            occ_boxes.push(o.boxes_per_frame(n, &mut rng));
        }

        let mut frames = Vec::with_capacity(n as usize);
        let mut covers: Vec<BBox> = Vec::new();
        for f in 0..n {
            let fi = f as usize;
            let frame = FrameIdx(f);
            let mut instances = Vec::new();
            for (ai, a) in self.actors.iter().enumerate() {
                let Some(full) = actor_boxes[ai][fi] else {
                    continue;
                };
                // Gather everything in front of this actor that overlaps it.
                covers.clear();
                covers.extend(occ_boxes.iter().filter_map(|per_frame| per_frame[fi]));
                for (bi, _) in self.actors.iter().enumerate() {
                    if bi == ai {
                        continue;
                    }
                    if let Some(other) = actor_boxes[bi][fi] {
                        if other.y2() > full.y2() {
                            covers.push(other);
                        }
                    }
                }
                covers.retain(|c| c.intersection_area(&full) > 0.0);
                let occluded = union_coverage(&full, &covers);

                // Truncation by the camera frame.
                let visible_bbox = full.clip_to(&viewport);
                let truncation = visible_bbox.map_or(0.0, |v| {
                    if full.area() > 0.0 {
                        v.area() / full.area()
                    } else {
                        0.0
                    }
                });

                let visibility = ((1.0 - occluded) * truncation).clamp(0.0, 1.0);
                let glare = self
                    .glare
                    .iter()
                    .map(|g| g.severity_at(frame, &full))
                    .fold(0.0f64, f64::max);

                instances.push(GtInstance {
                    actor: a.id,
                    class: a.class,
                    full_bbox: full,
                    visible_bbox,
                    visibility,
                    glare,
                });
            }
            frames.push(GtFrame { frame, instances });
        }

        GroundTruth::new(self.config, frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, Point};

    fn walker(id: u64, y: f64, enter: u64, exit: u64) -> ActorSpec {
        ActorSpec::new(
            GtObjectId(id),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(enter),
            FrameIdx(exit),
            MotionModel::linear(Point::new(50.0, y), 5.0, 0.0),
        )
    }

    #[test]
    fn simulate_is_deterministic() {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 50), 9);
        s.push_actor(ActorSpec::new(
            GtObjectId(0),
            classes::PEDESTRIAN,
            30.0,
            80.0,
            FrameIdx(0),
            FrameIdx(50),
            MotionModel::RandomWalk {
                start: Point::new(100.0, 400.0),
                drift_x: 2.0,
                drift_y: 0.0,
                sigma: 1.0,
            },
        ));
        assert_eq!(s.simulate(), s.simulate());
    }

    #[test]
    fn actor_lifetime_is_respected() {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 20), 0);
        s.push_actor(walker(1, 400.0, 5, 15));
        let gt = s.simulate();
        assert!(gt.frames()[4].instances.is_empty());
        assert_eq!(gt.frames()[5].instances.len(), 1);
        assert_eq!(gt.frames()[14].instances.len(), 1);
        assert!(gt.frames()[15].instances.is_empty());
    }

    #[test]
    fn static_occluder_reduces_visibility() {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 60), 0);
        s.push_actor(walker(1, 400.0, 0, 60));
        // A pillar fully covering the actor's path around x=200.
        s.push_occluder(Occluder::static_box(BBox::new(160.0, 300.0, 120.0, 250.0)));
        let gt = s.simulate();
        // At frame 0 the actor (centre x=50) is clear of the pillar.
        assert!(gt.frames()[0].instances[0].visibility > 0.9);
        // Around frame 30 (centre x=200) it is fully behind the pillar.
        let vis_mid = gt.frames()[30].instances[0].visibility;
        assert!(vis_mid < 0.1, "visibility behind pillar was {vis_mid}");
        // It re-emerges later.
        assert!(gt.frames()[59].instances[0].visibility > 0.9);
    }

    #[test]
    fn nearer_actor_occludes_farther_one() {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 10), 0);
        // Far actor (smaller bottom y).
        s.push_actor(ActorSpec::new(
            GtObjectId(1),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(0),
            FrameIdx(10),
            MotionModel::parked(Point::new(500.0, 300.0)),
        ));
        // Near actor directly in front (same centre, larger bottom y).
        s.push_actor(ActorSpec::new(
            GtObjectId(2),
            classes::PEDESTRIAN,
            60.0,
            140.0,
            FrameIdx(0),
            FrameIdx(10),
            MotionModel::parked(Point::new(500.0, 330.0)),
        ));
        let gt = s.simulate();
        let inst = &gt.frames()[0].instances;
        let far = inst.iter().find(|i| i.actor == GtObjectId(1)).unwrap();
        let near = inst.iter().find(|i| i.actor == GtObjectId(2)).unwrap();
        assert!(
            far.visibility < 0.35,
            "far actor visibility {}",
            far.visibility
        );
        assert!(
            near.visibility > 0.9,
            "near actor visibility {}",
            near.visibility
        );
    }

    #[test]
    fn truncation_at_frame_edge() {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 3), 0);
        // Actor centred on the left edge: half the box is out of frame.
        s.push_actor(ActorSpec::new(
            GtObjectId(1),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(0),
            FrameIdx(3),
            MotionModel::parked(Point::new(0.0, 400.0)),
        ));
        let gt = s.simulate();
        let i = &gt.frames()[0].instances[0];
        assert!((i.visibility - 0.5).abs() < 1e-9);
        assert!(i.visible_bbox.is_some());
    }

    #[test]
    fn actor_fully_out_of_frame_has_zero_visibility() {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 3), 0);
        s.push_actor(ActorSpec::new(
            GtObjectId(1),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(0),
            FrameIdx(3),
            MotionModel::parked(Point::new(-500.0, 400.0)),
        ));
        let gt = s.simulate();
        let i = &gt.frames()[0].instances[0];
        assert_eq!(i.visibility, 0.0);
        assert!(i.visible_bbox.is_none());
    }

    #[test]
    fn glare_is_recorded_on_instances() {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 10), 0);
        s.push_actor(ActorSpec::new(
            GtObjectId(1),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(0),
            FrameIdx(10),
            MotionModel::parked(Point::new(500.0, 400.0)),
        ));
        s.push_glare(GlareEvent::new(
            BBox::new(0.0, 0.0, 1000.0, 800.0),
            FrameIdx(3),
            FrameIdx(6),
            0.7,
        ));
        let gt = s.simulate();
        assert_eq!(gt.frames()[2].instances[0].glare, 0.0);
        assert!((gt.frames()[3].instances[0].glare - 0.7).abs() < 1e-12);
        assert_eq!(gt.frames()[6].instances[0].glare, 0.0);
    }

    #[test]
    fn adding_an_actor_does_not_perturb_existing_motion() {
        let mk = |extra: bool| {
            let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 30), 5);
            s.push_actor(ActorSpec::new(
                GtObjectId(0),
                classes::PEDESTRIAN,
                30.0,
                80.0,
                FrameIdx(0),
                FrameIdx(30),
                MotionModel::RandomWalk {
                    start: Point::new(100.0, 700.0),
                    drift_x: 1.0,
                    drift_y: 0.0,
                    sigma: 2.0,
                },
            ));
            if extra {
                s.push_actor(walker(1, 100.0, 0, 30));
            }
            s.simulate()
        };
        let base = mk(false);
        let extended = mk(true);
        for f in 0..30 {
            let a = base.frames()[f]
                .instances
                .iter()
                .find(|i| i.actor == GtObjectId(0))
                .unwrap();
            let b = extended.frames()[f]
                .instances
                .iter()
                .find(|i| i.actor == GtObjectId(0))
                .unwrap();
            assert_eq!(a.full_bbox, b.full_bbox, "frame {f}");
        }
    }
}
