//! Deterministic multi-camera worlds for cross-camera identity tests.
//!
//! The global merging layer (`tm-core::global`) needs a world where the
//! *same* physical actors appear in several camera viewports, separated
//! by calibrated travel times — the city-scale setting of Clique/TRACER
//! (see PAPERS.md) — while each camera's own tracker still fragments
//! them the way [`crate::TenantWorkload`] does within one viewport.
//!
//! [`MultiCameraWorld`] models `cameras` viewports arranged on a ring.
//! Each actor enters some start camera, dwells there while its
//! trajectory is cut into fixed-length fragments, then *transits* to the
//! next camera on the ring, taking `travel_base + jitter(actor, hop)`
//! frames door-to-door. Every quantity is a pure function of
//! `(seed, actor, visit, frame)` — no RNG state — so per-camera feeds
//! are **prefix-consistent** (the first `n` frames of a feed never
//! change as the horizon grows), which is what lets soak and
//! kill-and-resume tests regenerate feeds instead of storing them.
//!
//! Camera viewports use disjoint vertical coordinate bands
//! (`y = camera * BAND + lane`), so the union of per-camera streams can
//! be scored as one global sequence without cross-camera box collisions
//! (two actors in different cameras can never overlap by IoU).
//!
//! Ground truth comes in two shapes: [`MultiCameraWorld::global_gt`]
//! (one track per actor spanning every viewport it visits — what a
//! perfect *global* merger recovers) and [`MultiCameraWorld::transits`]
//! (the exit→entry record for each camera hop, against which topology
//! pruning soundness is asserted).

use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

/// Vertical pixel band reserved per camera, keeping per-camera
/// coordinates disjoint in the union'd global stream.
pub const CAMERA_BAND: f64 = 10_000.0;

/// Tuning for a [`MultiCameraWorld`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldConfig {
    /// Number of camera viewports on the ring (clamped to ≥ 1).
    pub cameras: u64,
    /// Shared actors transiting the ring (clamped to ≥ 1).
    pub actors: u64,
    /// Camera-to-camera transitions each actor makes (`hops + 1` camera
    /// visits per actor; clamped to `cameras - 1` so no actor revisits a
    /// viewport and local track ids stay unambiguous).
    pub hops: u64,
    /// Frames an actor's trajectory occupies inside one viewport before
    /// it departs (clamped to ≥ fragment length).
    pub dwell_frames: u64,
    /// Minimum door-to-door travel time between adjacent cameras, in
    /// frames.
    pub travel_base: u64,
    /// Deterministic per-(actor, hop) spread added to `travel_base`
    /// (uniform over `0..=travel_jitter`), giving travel-time histograms
    /// width without RNG state.
    pub travel_jitter: u64,
    /// Frames per intra-camera fragment (clamped to ≥ 1).
    pub fragment_frames: u64,
    /// Gap between consecutive fragments of one dwell, in frames.
    pub gap_frames: u64,
    /// Horizontal speed in px/frame.
    pub speed: f64,
    /// World seed: staggers entry phases, start cameras and jitter.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            cameras: 10,
            actors: 6,
            hops: 4,
            dwell_frames: 240,
            travel_base: 60,
            travel_jitter: 30,
            fragment_frames: 90,
            gap_frames: 30,
            speed: 2.0,
            seed: 7,
        }
    }
}

/// One ground-truth camera hop: the actor left `from` at `exit_frame`
/// (its last visible frame there) and first appeared in `to` at
/// `entry_frame`. `entry_frame - exit_frame` is exactly the Δt the
/// global merger observes for the corresponding exit/entry track pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transit {
    /// The transiting actor (world-local index, `0..actors`).
    pub actor: u64,
    /// Camera being left.
    pub from: u64,
    /// Camera being entered.
    pub to: u64,
    /// Last visible frame in `from`.
    pub exit_frame: u64,
    /// First visible frame in `to`.
    pub entry_frame: u64,
}

impl Transit {
    /// The travel time the topology profile for `(from, to)` learns.
    pub fn dt(&self) -> u64 {
        self.entry_frame - self.exit_frame
    }
}

/// A deterministic, prefix-consistent multi-camera world. See the
/// module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiCameraWorld {
    config: WorldConfig,
}

impl MultiCameraWorld {
    /// A world from the given tuning (see [`WorldConfig`] for clamps).
    pub fn new(config: WorldConfig) -> Self {
        let cameras = config.cameras.max(1);
        let fragment_frames = config.fragment_frames.max(1);
        let config = WorldConfig {
            cameras,
            actors: config.actors.max(1),
            hops: config.hops.min(cameras - 1),
            fragment_frames,
            dwell_frames: config.dwell_frames.max(fragment_frames),
            ..config
        };
        Self { config }
    }

    /// The effective (clamped) tuning.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The true global identity of an actor — what a perfect global
    /// merger collapses all its per-camera fragments onto.
    pub fn identity(actor: u64) -> GtObjectId {
        GtObjectId(actor + 1)
    }

    /// The camera an actor occupies on its `visit`-th stop
    /// (`0..=hops`): ring order from a seeded start camera.
    pub fn camera_of_visit(&self, actor: u64, visit: u64) -> u64 {
        let start = splitmix(self.config.seed ^ (actor << 8) ^ 0x5747) % self.config.cameras;
        (start + visit) % self.config.cameras
    }

    /// First frame of an actor's `visit`-th dwell.
    pub fn entry_frame(&self, actor: u64, visit: u64) -> u64 {
        let c = &self.config;
        // A small per-actor phase staggers entries so no global round
        // boundary sees every actor arrive at once.
        let mut t = splitmix(c.seed ^ (actor << 16) ^ 0x0EA7) % (c.gap_frames + 1).max(1);
        for hop in 0..visit {
            t += self.occupied_span() + self.travel_time(actor, hop);
        }
        t
    }

    /// Door-to-door travel time for an actor's `hop`-th transition.
    pub fn travel_time(&self, actor: u64, hop: u64) -> u64 {
        let c = &self.config;
        c.travel_base
            + splitmix(c.seed ^ (actor << 24) ^ (hop << 4) ^ 0x7124) % (c.travel_jitter + 1)
    }

    /// Frames from a dwell's entry to its last visible frame, inclusive
    /// of fragmentation gaps: the span actually occupied by fragments
    /// (the final partial gap is travel, not dwell).
    fn occupied_span(&self) -> u64 {
        let c = &self.config;
        let period = c.fragment_frames + c.gap_frames;
        let n_frags = c.dwell_frames.div_ceil(period);
        (n_frags - 1) * period + c.fragment_frames
    }

    /// The first frame after every actor has completed its itinerary —
    /// drive feeds to this horizon to observe every transit.
    pub fn horizon(&self) -> u64 {
        (0..self.config.actors)
            .map(|a| self.entry_frame(a, self.config.hops) + self.occupied_span())
            .max()
            .unwrap_or(0)
    }

    /// Tracker output for one camera covering frames `0..frames`:
    /// per-visit fragment chains, truncated at `frames`.
    /// Prefix-consistent: for `a ≤ b`, every track returned for `a`
    /// appears for `b` with the identical id, class and leading boxes.
    pub fn camera_tracks(&self, camera: u64, frames: u64) -> TrackSet {
        let c = &self.config;
        let period = c.fragment_frames + c.gap_frames;
        let mut tracks = Vec::new();
        for actor in 0..c.actors {
            for visit in 0..=c.hops {
                if self.camera_of_visit(actor, visit) != camera {
                    continue;
                }
                let entry = self.entry_frame(actor, visit);
                let x0 = (splitmix(c.seed ^ (actor << 32) ^ (visit << 2) ^ 0x0B0E) % 200) as f64;
                let y = camera as f64 * CAMERA_BAND + 100.0 + actor as f64 * 100.0;
                for k in 0.. {
                    let start = entry + k * period;
                    if start >= entry + c.dwell_frames || start >= frames {
                        break;
                    }
                    let end = (start + c.fragment_frames).min(frames);
                    let boxes: Vec<TrackBox> = (start..end)
                        .map(|f| {
                            TrackBox::new(
                                FrameIdx(f),
                                BBox::new(x0 + (f - entry) as f64 * c.speed, y, 40.0, 80.0),
                            )
                            .with_provenance(Self::identity(actor))
                        })
                        .collect();
                    tracks.push(Track::with_boxes(
                        TrackId(actor * 100_000 + visit * 1_000 + k + 1),
                        classes::PEDESTRIAN,
                        boxes,
                    ));
                }
            }
        }
        TrackSet::from_tracks(tracks)
    }

    /// Every camera's feed at the same horizon, indexed by camera.
    pub fn all_camera_tracks(&self, frames: u64) -> Vec<TrackSet> {
        (0..self.config.cameras)
            .map(|cam| self.camera_tracks(cam, frames))
            .collect()
    }

    /// Ground-truth camera hops completed strictly before `frames`.
    pub fn transits(&self, frames: u64) -> Vec<Transit> {
        let c = &self.config;
        let mut out = Vec::new();
        for actor in 0..c.actors {
            for hop in 0..c.hops {
                let exit_frame = self.entry_frame(actor, hop) + self.occupied_span() - 1;
                let entry_frame = self.entry_frame(actor, hop + 1);
                if entry_frame >= frames {
                    break;
                }
                out.push(Transit {
                    actor,
                    from: self.camera_of_visit(actor, hop),
                    to: self.camera_of_visit(actor, hop + 1),
                    exit_frame,
                    entry_frame,
                });
            }
        }
        out
    }

    /// Global ground truth over the union'd streams: one track per
    /// actor, its boxes drawn from whichever camera it occupies at each
    /// frame (per-camera coordinate bands keep them disjoint).
    pub fn global_gt(&self, frames: u64) -> TrackSet {
        let c = &self.config;
        let period = c.fragment_frames + c.gap_frames;
        let mut tracks = Vec::new();
        for actor in 0..c.actors {
            let mut boxes = Vec::new();
            for visit in 0..=c.hops {
                let camera = self.camera_of_visit(actor, visit);
                let entry = self.entry_frame(actor, visit);
                let x0 = (splitmix(c.seed ^ (actor << 32) ^ (visit << 2) ^ 0x0B0E) % 200) as f64;
                let y = camera as f64 * CAMERA_BAND + 100.0 + actor as f64 * 100.0;
                for k in 0.. {
                    let start = entry + k * period;
                    if start >= entry + c.dwell_frames || start >= frames {
                        break;
                    }
                    let end = (start + c.fragment_frames).min(frames);
                    for f in start..end {
                        boxes.push(
                            TrackBox::new(
                                FrameIdx(f),
                                BBox::new(x0 + (f - entry) as f64 * c.speed, y, 40.0, 80.0),
                            )
                            .with_provenance(Self::identity(actor)),
                        );
                    }
                }
            }
            if !boxes.is_empty() {
                tracks.push(Track::with_boxes(
                    TrackId(Self::identity(actor).get()),
                    classes::PEDESTRIAN,
                    boxes,
                ));
            }
        }
        TrackSet::from_tracks(tracks)
    }
}

/// SplitMix64 finalizer (same mixing as [`crate::tenant`]; duplicated so
/// the world generator stays dependency-free).
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> MultiCameraWorld {
        MultiCameraWorld::new(WorldConfig::default())
    }

    #[test]
    fn feeds_are_valid_deterministic_and_prefix_consistent() {
        let w = world();
        let horizon = w.horizon();
        for cam in 0..w.config().cameras {
            let full = w.camera_tracks(cam, horizon);
            full.validate().unwrap();
            assert_eq!(full, w.camera_tracks(cam, horizon));
            let short = w.camera_tracks(cam, horizon / 2);
            for t in short.iter() {
                let long = full.get(t.id).expect("track vanished as the feed grew");
                assert_eq!(long.class, t.class);
                assert_eq!(&long.boxes[..t.boxes.len()], &t.boxes[..]);
            }
        }
    }

    #[test]
    fn transits_match_the_feeds() {
        let w = world();
        let horizon = w.horizon();
        let transits = w.transits(horizon);
        assert_eq!(
            transits.len() as u64,
            w.config().actors * w.config().hops,
            "every hop completes within the horizon"
        );
        for tr in &transits {
            assert_ne!(tr.from, tr.to);
            let dt = tr.dt();
            assert!(dt > 0, "travel takes time");
            // The exit track's last box and the entry track's first box
            // sit exactly at the recorded frames.
            let from = w.camera_tracks(tr.from, horizon);
            let to = w.camera_tracks(tr.to, horizon);
            let ident = MultiCameraWorld::identity(tr.actor);
            let exit = from
                .iter()
                .filter(|t| t.boxes[0].provenance == Some(ident))
                .map(|t| t.last_frame().unwrap().get())
                .max()
                .unwrap();
            let entry = to
                .iter()
                .filter(|t| t.boxes[0].provenance == Some(ident))
                .map(|t| t.first_frame().unwrap().get())
                .min()
                .unwrap();
            // The actor may visit `to` before `from` is even entered on
            // other itineraries, so compare against this hop's frames.
            assert!(exit >= tr.exit_frame);
            assert!(entry <= tr.entry_frame);
        }
    }

    #[test]
    fn travel_times_stay_in_the_calibrated_range() {
        let w = world();
        let c = *w.config();
        for tr in w.transits(w.horizon()) {
            let dt = tr.dt();
            assert!(
                dt > c.travel_base && dt <= c.travel_base + c.travel_jitter + 1,
                "dt {dt} outside calibration"
            );
        }
    }

    #[test]
    fn global_gt_is_one_track_per_actor_and_valid() {
        let w = world();
        let gt = w.global_gt(w.horizon());
        gt.validate().unwrap();
        assert_eq!(gt.len() as u64, w.config().actors);
        // GT boxes are exactly the union of the per-camera feed boxes.
        let total: usize = w
            .all_camera_tracks(w.horizon())
            .iter()
            .map(|s| s.total_boxes())
            .sum();
        assert_eq!(gt.total_boxes(), total);
    }

    #[test]
    fn no_actor_revisits_a_camera() {
        let w = world();
        for actor in 0..w.config().actors {
            let mut seen = std::collections::BTreeSet::new();
            for visit in 0..=w.config().hops {
                assert!(seen.insert(w.camera_of_visit(actor, visit)));
            }
        }
    }
}
