//! # tm-synth
//!
//! A deterministic 2-D world simulator that stands in for the pixel videos
//! of MOT-17 / KITTI / PathTrack (see DESIGN.md §1 for the substitution
//! argument). It simulates *actors* (pedestrians, cars, …) moving through a
//! camera viewport according to configurable [`MotionModel`]s, *occluders*
//! (static street furniture or moving foreground objects) that hide actors,
//! and *glare events* that degrade appearance quality in a region for a
//! stretch of frames.
//!
//! The output is a [`GroundTruth`]: per-frame object instances with exact
//! boxes and visibility fractions, plus the true identity of every instance.
//! Downstream, `tm-detect` turns this into noisy detections, `tm-track`
//! turns detections into (fragmented) tracks, and `tm-core` repairs the
//! fragmentation — which is the paper's subject.
//!
//! Everything is seeded: the same [`Scenario`] always produces the same
//! world, which keeps every experiment in the repository reproducible.
//!
//! ```
//! use tm_synth::{Scenario, SceneConfig, ActorSpec, MotionModel, Occluder};
//! use tm_types::{ids::classes, FrameIdx, GtObjectId, Point};
//!
//! let mut scenario = Scenario::new(SceneConfig::new(1920.0, 1080.0, 300), 42);
//! scenario.push_actor(ActorSpec::new(
//!     GtObjectId(0),
//!     classes::PEDESTRIAN,
//!     40.0,
//!     100.0,
//!     FrameIdx(0),
//!     FrameIdx(300),
//!     MotionModel::linear(Point::new(0.0, 500.0), 4.0, 0.0),
//! ));
//! scenario.push_occluder(Occluder::static_box(tm_types::BBox::new(900.0, 400.0, 120.0, 300.0)));
//! let gt = scenario.simulate();
//! assert_eq!(gt.frames().len(), 300);
//! ```

pub mod ground_truth;
pub mod motion;
pub mod occlusion;
pub mod scene;
pub mod tenant;
pub mod world;

pub use ground_truth::{GroundTruth, GtFrame, GtInstance};
pub use motion::MotionModel;
pub use occlusion::{GlareEvent, Occluder};
pub use scene::{ActorSpec, Scenario, SceneConfig};
pub use tenant::{TenantWorkload, TenantWorkloadConfig};
pub use world::{MultiCameraWorld, Transit, WorldConfig, CAMERA_BAND};
