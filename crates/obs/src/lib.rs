//! # tm-obs
//!
//! Std-only structured observability for the TMerge pipeline: counters,
//! two-clock span histograms and structured events behind a pluggable
//! [`Sink`] — a no-op (the default), a deterministic in-memory
//! [`Recorder`], or a [`JsonlSink`] stream.
//!
//! ## The two-clock rule
//!
//! Every span duration is recorded in **both** clocks: real wall time
//! (`Instant`) and the simulated `SimClock` cost model the caller reads
//! off its ReID session. Wall time is inherently nondeterministic, so the
//! [`Recorder`] keeps the two strictly apart: [`Recorder::snapshot`]
//! renders *only* the counters and sim-clock histograms and is the
//! deterministic artifact (golden-testable, checkpointable); wall-clock
//! data is available separately via [`Recorder::wall_report`].
//!
//! ## The determinism contract
//!
//! The same run must produce a byte-identical [`Recorder::snapshot`] at
//! any `TMERGE_THREADS` setting. Two rules make that hold without any
//! serial-order fold:
//!
//! 1. Every aggregate in the snapshot is built from **commutative,
//!    associative integer updates** — `u64` counter adds, and sim-clock
//!    durations quantized to integer ticks ([`TICKS_PER_MS`] per
//!    millisecond) *before* summation, so `f64` addition order can never
//!    leak into the result. Min/max are commutative too.
//! 2. Anything order-dependent (the wall clock, the captured log lines,
//!    per-event field payloads) is excluded from the snapshot.
//!
//! Instrumented code records the same tick values in any schedule (the
//! simulated clock is itself deterministic), so the folded state — and its
//! sorted-key rendering — is identical regardless of which thread applied
//! which update first.
//!
//! ## Zero-cost when disabled
//!
//! [`Obs`] is a cheap clonable handle wrapping `Option<Arc<dyn Sink>>`.
//! The disabled handle ([`Obs::noop`]) reduces every call to a single
//! predictable `None` branch and constructs no `Instant`; hot loops stay
//! instrumentation-free because call sites sit at batch boundaries (the
//! `obs_overhead` bench in `tm-bench` pins this at ≤ 2%).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as IoWrite;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Sim-clock quantization: ticks per simulated millisecond. Durations are
/// rounded to integer ticks before aggregation so sums are associative.
pub const TICKS_PER_MS: f64 = 1_000_000.0;

/// Quantizes a simulated-millisecond duration to integer ticks.
#[inline]
pub fn ticks(sim_ms: f64) -> i128 {
    (sim_ms * TICKS_PER_MS).round() as i128
}

/// Renders ticks as a fixed-point millisecond string (6 decimals), using
/// integer arithmetic only so the rendering is exact and deterministic.
pub fn ticks_to_ms_string(t: i128) -> String {
    let (sign, t) = if t < 0 { ("-", -t) } else { ("", t) };
    format!("{sign}{}.{:06}", t / 1_000_000, t % 1_000_000)
}

/// Log severity for [`Sink::log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Progress / informational output (stdout by default).
    Info,
    /// Warnings (stderr by default).
    Warn,
}

impl Level {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A structured event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (never enters the deterministic snapshot).
    F64(f64),
    /// Static string (decision modes, algorithm names).
    Str(&'static str),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Where instrumentation goes. All methods take `&self`: sinks are shared
/// across threads behind an `Arc`.
pub trait Sink: Send + Sync {
    /// Adds `delta` to a named monotonic counter.
    fn counter(&self, name: &str, delta: u64);
    /// Records a simulated-clock duration into the named histogram.
    fn record_sim_ms(&self, name: &str, sim_ms: f64);
    /// Records a wall-clock duration into the named histogram.
    fn record_wall_ns(&self, name: &str, wall_ns: u64);
    /// Records a structured event. Sinks may aggregate (the [`Recorder`]
    /// keeps a per-name count) or stream the fields (the [`JsonlSink`]).
    fn event(&self, name: &str, fields: &[(&'static str, Value)]);
    /// Routes a log line (progress output, warnings).
    fn log(&self, level: Level, message: &str);
    /// Downcast hook: `Some` when this sink is a [`Recorder`] (used by the
    /// checkpoint codec to persist/restore deterministic state).
    fn as_recorder(&self) -> Option<&Recorder> {
        None
    }
}

/// A sink that drops everything. [`Obs::noop`] avoids even the virtual
/// call; this type exists for callers that need an explicit `Arc<dyn
/// Sink>`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn counter(&self, _: &str, _: u64) {}
    fn record_sim_ms(&self, _: &str, _: f64) {}
    fn record_wall_ns(&self, _: &str, _: u64) {}
    fn event(&self, _: &str, _: &[(&'static str, Value)]) {}
    fn log(&self, _: Level, _: &str) {}
}

/// A sink decorator that namespaces every metric name under a fixed
/// prefix before forwarding to the inner sink. `tm-serve` scopes each
/// tenant's whole pipeline under `serve.tenant.<id>.` this way, so one
/// shared [`Recorder`] holds every tenant's counters side by side without
/// collisions — and without the pipeline code knowing tenants exist.
///
/// Only *names* are rewritten: deltas, durations, event fields and log
/// levels pass through untouched, so the deterministic-snapshot contract
/// (commutative integer aggregates, zero-delta dropping upstream in
/// [`Obs::counter`]) is unchanged. Log messages gain a `[prefix]` marker
/// for attribution; the inner recorder's `log.<level>` counters stay
/// unprefixed, which keeps them commutative across tenants.
pub struct PrefixSink {
    prefix: String,
    inner: Arc<dyn Sink>,
}

impl PrefixSink {
    /// Wraps `inner`, namespacing every metric name as `{prefix}{name}`.
    /// Pass the trailing separator explicitly (e.g. `"serve.tenant.3."`).
    pub fn new(prefix: impl Into<String>, inner: Arc<dyn Sink>) -> Self {
        Self {
            prefix: prefix.into(),
            inner,
        }
    }
}

impl Sink for PrefixSink {
    fn counter(&self, name: &str, delta: u64) {
        self.inner.counter(&format!("{}{name}", self.prefix), delta);
    }

    fn record_sim_ms(&self, name: &str, sim_ms: f64) {
        self.inner
            .record_sim_ms(&format!("{}{name}", self.prefix), sim_ms);
    }

    fn record_wall_ns(&self, name: &str, wall_ns: u64) {
        self.inner
            .record_wall_ns(&format!("{}{name}", self.prefix), wall_ns);
    }

    fn event(&self, name: &str, fields: &[(&'static str, Value)]) {
        self.inner.event(&format!("{}{name}", self.prefix), fields);
    }

    fn log(&self, level: Level, message: &str) {
        self.inner
            .log(level, &format!("[{}] {message}", self.prefix));
    }

    fn as_recorder(&self) -> Option<&Recorder> {
        // The prefix scopes *emission*; state persistence (checkpointing)
        // always operates on the shared underlying recorder.
        self.inner.as_recorder()
    }
}

// ---------------------------------------------------------------------------
// The handle.
// ---------------------------------------------------------------------------

/// Cheap clonable observability handle. The default ([`Obs::noop`]) is
/// disabled: every operation is a single `None` branch.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn Sink>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// The disabled handle.
    pub fn noop() -> Self {
        Self { sink: None }
    }

    /// A handle writing to the given sink.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// True when a sink is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached [`Recorder`], if the sink is one.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.sink.as_deref().and_then(Sink::as_recorder)
    }

    /// A handle that namespaces every metric name under `prefix` (via
    /// [`PrefixSink`]) before reaching this handle's sink. A disabled
    /// handle stays disabled — no allocation, no sink, still one `None`
    /// branch per operation.
    pub fn with_prefix(&self, prefix: &str) -> Obs {
        match &self.sink {
            Some(inner) => Obs::new(Arc::new(PrefixSink::new(prefix, Arc::clone(inner)))),
            None => Obs::noop(),
        }
    }

    /// Adds `delta` to a counter. Zero deltas are dropped before reaching
    /// the sink, so conditional bulk increments (`counter(name, n)` with a
    /// data-dependent `n`) cannot create empty entries whose mere presence
    /// would differ between schedules.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        if let Some(s) = &self.sink {
            s.counter(name, delta);
        }
    }

    /// Records a simulated-clock duration.
    #[inline]
    pub fn record_sim_ms(&self, name: &str, sim_ms: f64) {
        if let Some(s) = &self.sink {
            s.record_sim_ms(name, sim_ms);
        }
    }

    /// Records a wall-clock duration.
    #[inline]
    pub fn record_wall_ns(&self, name: &str, wall_ns: u64) {
        if let Some(s) = &self.sink {
            s.record_wall_ns(name, wall_ns);
        }
    }

    /// Records a structured event.
    #[inline]
    pub fn event(&self, name: &str, fields: &[(&'static str, Value)]) {
        if let Some(s) = &self.sink {
            s.event(name, fields);
        }
    }

    /// Routes a log line. With no sink attached the line falls through to
    /// the process default (stdout for info, stderr for warnings), so
    /// existing CLI output is unchanged until a sink captures it.
    pub fn log(&self, level: Level, message: &str) {
        match &self.sink {
            Some(s) => s.log(level, message),
            None => match level {
                Level::Info => println!("{message}"),
                Level::Warn => eprintln!("warning: {message}"),
            },
        }
    }

    /// Opens a two-clock span. `sim_now_ms` is the caller's simulated
    /// clock *now* (e.g. `session.elapsed_ms()`); pass the clock again to
    /// [`Span::finish`]. Disabled handles capture no `Instant`.
    #[inline]
    pub fn span(&self, name: &'static str, sim_now_ms: f64) -> Span {
        Span {
            obs: self.clone(),
            name,
            wall: if self.sink.is_some() {
                Some(Instant::now())
            } else {
                None
            },
            sim_start_ms: sim_now_ms,
        }
    }
}

/// An open two-clock span (see [`Obs::span`]).
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    name: &'static str,
    wall: Option<Instant>,
    sim_start_ms: f64,
}

impl Span {
    /// Closes the span, recording the wall-clock duration and the
    /// simulated-clock delta since [`Obs::span`] under the span's name.
    pub fn finish(self, sim_now_ms: f64) {
        if let Some(started) = self.wall {
            self.obs
                .record_wall_ns(self.name, started.elapsed().as_nanos() as u64);
            self.obs
                .record_sim_ms(self.name, sim_now_ms - self.sim_start_ms);
        }
    }
}

// ---------------------------------------------------------------------------
// Scope plumbing: a thread-local stack over a process-wide default.
// ---------------------------------------------------------------------------

thread_local! {
    static SCOPE: RefCell<Vec<Obs>> = const { RefCell::new(Vec::new()) };
}

fn global_slot() -> &'static Mutex<Obs> {
    static GLOBAL: OnceLock<Mutex<Obs>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Obs::noop()))
}

/// Installs the process-wide default handle (returned by [`current`] when
/// no scope is active). Intended for binaries; tests should prefer
/// [`scoped`].
pub fn set_global(obs: Obs) {
    *global_slot().lock().expect("obs global poisoned") = obs;
}

/// The innermost scoped handle on this thread, else the process global,
/// else a disabled handle. `tm_par` re-installs the caller's scope inside
/// its worker threads, so fan-outs inherit the observer transparently.
pub fn current() -> Obs {
    let scoped = SCOPE.with(|s| s.borrow().last().cloned());
    match scoped {
        Some(obs) => obs,
        None => global_slot().lock().expect("obs global poisoned").clone(),
    }
}

/// Runs `f` with `obs` as this thread's current handle (unwind-safe: the
/// scope pops even if `f` panics).
pub fn scoped<R>(obs: Obs, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    SCOPE.with(|s| s.borrow_mut().push(obs));
    let _pop = Pop;
    f()
}

// ---------------------------------------------------------------------------
// Recorder: the deterministic in-memory sink.
// ---------------------------------------------------------------------------

/// One sim-clock histogram: integer-tick aggregates only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimHist {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of quantized ticks.
    pub sum_ticks: i128,
    /// Smallest recorded duration in ticks.
    pub min_ticks: i128,
    /// Largest recorded duration in ticks.
    pub max_ticks: i128,
}

impl SimHist {
    fn record(&mut self, t: i128) {
        if self.count == 0 {
            *self = SimHist {
                count: 1,
                sum_ticks: t,
                min_ticks: t,
                max_ticks: t,
            };
        } else {
            self.count += 1;
            self.sum_ticks += t;
            self.min_ticks = self.min_ticks.min(t);
            self.max_ticks = self.max_ticks.max(t);
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct WallHist {
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Default)]
struct RecorderInner {
    counters: BTreeMap<String, u64>,
    sim: BTreeMap<String, SimHist>,
    wall: BTreeMap<String, WallHist>,
    logs: Vec<(Level, String)>,
}

/// The deterministic state of a [`Recorder`] — what the checkpoint codec
/// persists and [`Recorder::restore`] reinstates. Entries are sorted by
/// name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecorderState {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Sim-histogram name → aggregates.
    pub sim: Vec<(String, SimHist)>,
}

/// In-memory aggregating sink whose [`snapshot`](Recorder::snapshot) is
/// byte-identical for the same run at any thread count (see the crate
/// docs for the contract). Shared across threads behind one mutex; all
/// instrumented paths touch it at batch boundaries, not inner loops.
#[derive(Default)]
pub struct Recorder {
    inner: Mutex<RecorderInner>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner.lock().expect("recorder poisoned")
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current aggregates of a sim histogram.
    pub fn sim_hist(&self, name: &str) -> Option<SimHist> {
        self.lock().sim.get(name).copied()
    }

    /// Captured log lines, in arrival order (order is scheduling-dependent
    /// under threads; excluded from the snapshot).
    pub fn logs(&self) -> Vec<(Level, String)> {
        self.lock().logs.clone()
    }

    /// The deterministic snapshot: counters and sim histograms rendered
    /// with sorted keys, one line each. Wall-clock data and log lines are
    /// deliberately absent (see the two-clock rule).
    pub fn snapshot(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, h) in &inner.sim {
            let _ = writeln!(
                out,
                "sim_ms {name} count={} sum={} min={} max={}",
                h.count,
                ticks_to_ms_string(h.sum_ticks),
                ticks_to_ms_string(h.min_ticks),
                ticks_to_ms_string(h.max_ticks),
            );
        }
        out
    }

    /// The wall-clock histograms (nondeterministic; kept out of
    /// [`snapshot`](Recorder::snapshot)).
    pub fn wall_report(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, h) in &inner.wall {
            let _ = writeln!(
                out,
                "wall_ns {name} count={} sum={} min={} max={}",
                h.count, h.sum_ns, h.min_ns, h.max_ns
            );
        }
        out
    }

    /// Extracts the deterministic state (for checkpointing).
    pub fn state(&self) -> RecorderState {
        let inner = self.lock();
        RecorderState {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            sim: inner.sim.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }

    /// Replaces the deterministic state with a checkpointed one (wall
    /// histograms and captured logs are left untouched — they never enter
    /// the snapshot).
    pub fn restore(&self, state: &RecorderState) {
        let mut inner = self.lock();
        inner.counters = state
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        inner.sim = state.sim.iter().map(|(k, v)| (k.clone(), *v)).collect();
    }

    /// Clears all state.
    pub fn reset(&self) {
        *self.lock() = RecorderInner::default();
    }
}

impl Sink for Recorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    fn record_sim_ms(&self, name: &str, sim_ms: f64) {
        let t = ticks(sim_ms);
        let mut inner = self.lock();
        match inner.sim.get_mut(name) {
            Some(h) => h.record(t),
            None => {
                let mut h = SimHist {
                    count: 0,
                    sum_ticks: 0,
                    min_ticks: 0,
                    max_ticks: 0,
                };
                h.record(t);
                inner.sim.insert(name.to_owned(), h);
            }
        }
    }

    fn record_wall_ns(&self, name: &str, wall_ns: u64) {
        let mut inner = self.lock();
        let h = inner.wall.entry(name.to_owned()).or_default();
        if h.count == 0 {
            *h = WallHist {
                count: 1,
                sum_ns: wall_ns as u128,
                min_ns: wall_ns,
                max_ns: wall_ns,
            };
        } else {
            h.count += 1;
            h.sum_ns += wall_ns as u128;
            h.min_ns = h.min_ns.min(wall_ns);
            h.max_ns = h.max_ns.max(wall_ns);
        }
    }

    fn event(&self, name: &str, _fields: &[(&'static str, Value)]) {
        // Field payloads are order-dependent; the deterministic sink keeps
        // only the per-name occurrence count.
        self.counter(&format!("event.{name}"), 1);
    }

    fn log(&self, level: Level, message: &str) {
        let mut inner = self.lock();
        let key = format!("log.{}", level.as_str());
        match inner.counters.get_mut(&key) {
            Some(v) => *v += 1,
            None => {
                inner.counters.insert(key, 1);
            }
        }
        inner.logs.push((level, message.to_owned()));
    }

    fn as_recorder(&self) -> Option<&Recorder> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// JSONL sink: stream every operation as one JSON line.
// ---------------------------------------------------------------------------

/// Streaming sink writing one JSON object per instrumentation call. Line
/// *order* is scheduling-dependent under threads; use the [`Recorder`]
/// for deterministic aggregates.
pub struct JsonlSink {
    out: Mutex<Box<dyn IoWrite + Send>>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JsonlSink {
    /// Wraps any writer.
    pub fn new(out: Box<dyn IoWrite + Send>) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncates) a JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }

    fn write_line(&self, line: String) {
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let _ = writeln!(out, "{line}");
    }
}

impl Sink for JsonlSink {
    fn counter(&self, name: &str, delta: u64) {
        self.write_line(format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
            json_escape(name)
        ));
    }

    fn record_sim_ms(&self, name: &str, sim_ms: f64) {
        self.write_line(format!(
            "{{\"type\":\"sim_ms\",\"name\":\"{}\",\"ticks\":{}}}",
            json_escape(name),
            ticks(sim_ms)
        ));
    }

    fn record_wall_ns(&self, name: &str, wall_ns: u64) {
        self.write_line(format!(
            "{{\"type\":\"wall_ns\",\"name\":\"{}\",\"ns\":{wall_ns}}}",
            json_escape(name)
        ));
    }

    fn event(&self, name: &str, fields: &[(&'static str, Value)]) {
        let mut line = format!("{{\"type\":\"event\",\"name\":\"{}\"", json_escape(name));
        for (k, v) in fields {
            match v {
                Value::U64(x) => {
                    let _ = write!(line, ",\"{}\":{x}", json_escape(k));
                }
                Value::I64(x) => {
                    let _ = write!(line, ",\"{}\":{x}", json_escape(k));
                }
                Value::F64(x) => {
                    let _ = write!(line, ",\"{}\":{x}", json_escape(k));
                }
                Value::Str(x) => {
                    let _ = write!(line, ",\"{}\":\"{}\"", json_escape(k), json_escape(x));
                }
            }
        }
        line.push('}');
        self.write_line(line);
    }

    fn log(&self, level: Level, message: &str) {
        self.write_line(format!(
            "{{\"type\":\"log\",\"level\":\"{}\",\"message\":\"{}\"}}",
            level.as_str(),
            json_escape(message)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_disabled_and_silent_on_metrics() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.counter("x", 3);
        obs.record_sim_ms("x", 1.5);
        let sp = obs.span("x", 0.0);
        sp.finish(1.0);
        assert!(obs.recorder().is_none());
    }

    #[test]
    fn recorder_counters_and_histograms_aggregate() {
        let rec = Arc::new(Recorder::new());
        let obs = Obs::new(rec.clone());
        obs.counter("a.hits", 2);
        obs.counter("a.hits", 3);
        obs.record_sim_ms("a.span", 1.25);
        obs.record_sim_ms("a.span", 0.75);
        assert_eq!(rec.counter_value("a.hits"), 5);
        let h = rec.sim_hist("a.span").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_ticks, ticks(2.0));
        assert_eq!(h.min_ticks, ticks(0.75));
        assert_eq!(h.max_ticks, ticks(1.25));
    }

    #[test]
    fn prefix_sink_namespaces_metrics_and_forwards_recorder() {
        let rec = Arc::new(Recorder::new());
        let obs = Obs::new(rec.clone());
        let t3 = obs.with_prefix("serve.tenant.3.");
        let t7 = obs.with_prefix("serve.tenant.7.");
        assert!(t3.enabled());
        t3.counter("pipeline.windows", 2);
        t7.counter("pipeline.windows", 5);
        t3.counter("pipeline.windows", 0); // zero deltas still dropped
        t3.record_sim_ms("reid.extract", 1.5);
        t3.event("window", &[("id", Value::U64(0))]);
        t3.log(Level::Warn, "shedding");
        assert_eq!(rec.counter_value("serve.tenant.3.pipeline.windows"), 2);
        assert_eq!(rec.counter_value("serve.tenant.7.pipeline.windows"), 5);
        assert_eq!(rec.counter_value("pipeline.windows"), 0);
        assert!(rec.sim_hist("serve.tenant.3.reid.extract").is_some());
        assert_eq!(rec.counter_value("event.serve.tenant.3.window"), 1);
        // Log levels aggregate unprefixed; the message carries the marker.
        assert_eq!(rec.counter_value("log.warn"), 1);
        assert!(rec
            .logs()
            .iter()
            .any(|(_, m)| m.contains("[serve.tenant.3.] shedding")));
        // Checkpointing sees through the prefix to the shared recorder.
        assert!(t3.recorder().is_some());
        assert_eq!(t3.recorder().unwrap().state(), rec.state());
        // Prefixing a disabled handle stays disabled.
        assert!(!Obs::noop().with_prefix("serve.tenant.9.").enabled());
    }

    #[test]
    fn snapshot_renders_sorted_and_excludes_wall() {
        let rec = Arc::new(Recorder::new());
        let obs = Obs::new(rec.clone());
        obs.counter("z.last", 1);
        obs.counter("a.first", 1);
        obs.record_sim_ms("mid", 2.5);
        obs.record_wall_ns("mid", 12345);
        let snap = rec.snapshot();
        assert_eq!(
            snap,
            "counter a.first = 1\ncounter z.last = 1\nsim_ms mid count=1 sum=2.500000 min=2.500000 max=2.500000\n"
        );
        assert!(rec.wall_report().contains("wall_ns mid count=1 sum=12345"));
    }

    #[test]
    fn span_records_both_clocks() {
        let rec = Arc::new(Recorder::new());
        let obs = Obs::new(rec.clone());
        let sp = obs.span("work", 10.0);
        sp.finish(12.5);
        let h = rec.sim_hist("work").unwrap();
        assert_eq!(h.sum_ticks, ticks(2.5));
        assert!(rec.wall_report().contains("wall_ns work count=1"));
    }

    #[test]
    fn snapshot_is_interleaving_independent() {
        // Apply the same multiset of updates in two different orders; the
        // snapshot must be byte-identical (the threaded case reduces to
        // this because updates are commutative integer folds).
        let updates: Vec<(&str, f64)> = vec![("s", 0.1), ("s", 0.3), ("t", 7.0), ("s", 0.2)];
        let run = |order: &[usize]| {
            let rec = Recorder::new();
            for &i in order {
                let (name, ms) = updates[i];
                rec.record_sim_ms(name, ms);
                rec.counter("n", 1);
            }
            rec.snapshot()
        };
        assert_eq!(run(&[0, 1, 2, 3]), run(&[3, 2, 1, 0]));
    }

    #[test]
    fn state_roundtrips_through_restore() {
        let rec = Recorder::new();
        rec.counter("c", 9);
        rec.record_sim_ms("h", 4.25);
        let state = rec.state();
        let fresh = Recorder::new();
        fresh.counter("other", 1); // overwritten by restore
        fresh.restore(&state);
        assert_eq!(fresh.snapshot(), rec.snapshot());
    }

    #[test]
    fn events_count_per_name_and_logs_are_captured() {
        let rec = Arc::new(Recorder::new());
        let obs = Obs::new(rec.clone());
        obs.event("breaker_trip", &[("window", Value::U64(3))]);
        obs.event("breaker_trip", &[("window", Value::U64(4))]);
        obs.log(Level::Warn, "disk full");
        assert_eq!(rec.counter_value("event.breaker_trip"), 2);
        assert_eq!(rec.counter_value("log.warn"), 1);
        assert_eq!(rec.logs(), vec![(Level::Warn, "disk full".to_owned())]);
    }

    #[test]
    fn scoped_nests_and_pops_on_panic() {
        let rec = Arc::new(Recorder::new());
        let obs = Obs::new(rec.clone());
        assert!(!current().enabled());
        scoped(obs.clone(), || {
            assert!(current().enabled());
            scoped(Obs::noop(), || assert!(!current().enabled()));
            assert!(current().enabled());
        });
        assert!(!current().enabled());
        let obs2 = obs.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            scoped(obs2, || panic!("boom"))
        }));
        assert!(!current().enabled());
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>, Arc<AtomicUsize>);
        impl IoWrite for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.1.fetch_add(1, Ordering::Relaxed);
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::new(Box::new(Shared(buf.clone(), Arc::new(AtomicUsize::new(0)))));
        let obs = Obs::new(Arc::new(sink));
        obs.counter("c", 1);
        obs.event(
            "e",
            &[("mode", Value::Str("degraded")), ("w", Value::U64(2))],
        );
        obs.log(Level::Info, "say \"hi\"");
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"name\":\"c\",\"delta\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"event\",\"name\":\"e\",\"mode\":\"degraded\",\"w\":2}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"log\",\"level\":\"info\",\"message\":\"say \\\"hi\\\"\"}"
        );
    }

    #[test]
    fn ticks_render_exactly() {
        assert_eq!(ticks_to_ms_string(0), "0.000000");
        assert_eq!(ticks_to_ms_string(1), "0.000001");
        assert_eq!(ticks_to_ms_string(2_500_000), "2.500000");
        assert_eq!(ticks_to_ms_string(-1_000_001), "-1.000001");
    }
}
