//! Dev probe: prints dataset statistics for calibration.
use tm_core::build_window_pairs;
use tm_datasets::{kitti, mot17, pathtrack, prepare};
use tm_track::TrackerKind;

fn main() {
    for spec in [mot17(), kitti(), pathtrack()] {
        println!("== {} ==", spec.name);
        for video in spec.videos.iter().take(3) {
            for kind in [
                TrackerKind::Tracktor,
                TrackerKind::Sort,
                TrackerKind::DeepSort,
                TrackerKind::Uma,
            ] {
                let v = prepare(video, kind);
                let wps = build_window_pairs(&v.tracks, v.n_frames, spec.window_len).unwrap();
                let n_pairs: usize = wps.iter().map(|w| w.pairs.len()).sum();
                let all: Vec<_> = wps.iter().flat_map(|w| w.pairs.clone()).collect();
                let poly = v.poly_truth(&all);
                let boxes = v.tracks.total_boxes();
                println!(
                    "{} {:>10}: gt_tracks={} tracks={} boxes={} pairs={} poly={} rate={:.3}%",
                    v.name,
                    kind.name(),
                    v.gt_tracks.len(),
                    v.tracks.len(),
                    boxes,
                    n_pairs,
                    poly.len(),
                    100.0 * poly.len() as f64 / n_pairs.max(1) as f64
                );
            }
        }
    }
}
