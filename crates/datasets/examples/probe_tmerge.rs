//! Dev probe: why does TMerge rank some polyonymous pairs low?
use tm_core::build_window_pairs;
use tm_core::{score::exact_scores, CandidateSelector, SelectionInput, TMerge, TMergeConfig};
use tm_datasets::{mot17, prepare};
use tm_reid::{CostModel, Device, ReidSession};
use tm_track::TrackerKind;

fn main() {
    let spec = &mot17().videos[0];
    let v = prepare(spec, TrackerKind::Tracktor);
    let wps = build_window_pairs(&v.tracks, v.n_frames, 2000).unwrap();
    let pairs = &wps[0].pairs;
    let truth = v.poly_truth(pairs);
    println!("pairs={} truth={}", pairs.len(), truth.len());
    let model = v.model();
    let input = SelectionInput {
        pairs,
        tracks: &v.tracks,
        k: 0.05,
        voi: None,
    };
    println!("m={}", input.m());

    // Exact scores for reference.
    let mut oracle = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let exact = exact_scores(&input, &mut oracle).unwrap();
    let mut sorted = exact.clone();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (rank, (p, s)) in sorted.iter().enumerate().take(40) {
        println!(
            "exact rank {rank}: {p} score={s:.3} poly={}",
            truth.contains(p)
        );
    }
    let poly_ranks: Vec<usize> = sorted
        .iter()
        .enumerate()
        .filter(|(_, (p, _))| truth.contains(p))
        .map(|(i, _)| i)
        .collect();
    println!("exact poly ranks: {poly_ranks:?}");

    for tau in [5000u64, 20000] {
        let tm = TMerge::new(TMergeConfig {
            tau_max: tau,
            seed: 7,
            use_ulb: true,
            ..Default::default()
        });
        let mut s = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let r = tm.select(&input, &mut s).unwrap();
        let found = truth.iter().filter(|p| r.candidates.contains(p)).count();
        // rank poly pairs by posterior mean
        let mut ranked: Vec<_> = r.scores.iter().collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(b.1).unwrap());
        let ranks: Vec<(usize, String)> = ranked
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| truth.contains(p))
            .map(|(i, (p, s))| (i, format!("{p}@{s:.3}")))
            .collect();
        println!(
            "tau={tau}: found {found}/{} poly ranks by posterior: {ranks:?}",
            truth.len()
        );
    }
}
