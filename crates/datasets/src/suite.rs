//! The three dataset suites and the simulate → detect → track front end.

use crate::scenario::{crowd_scenario, SceneParams};
use tm_detect::{Detector, DetectorConfig};
use tm_metrics::Correspondence;
use tm_reid::{AppearanceConfig, AppearanceModel};
use tm_track::{track_video, TrackerKind};
use tm_types::{ids::classes, Detection, TrackPair, TrackSet};

/// One video of a dataset: scene parameters plus the detector and
/// appearance-world configuration used on it.
#[derive(Debug, Clone)]
pub struct VideoSpec {
    /// Video name, e.g. `MOT17-03`.
    pub name: String,
    /// The scene to simulate.
    pub scene: SceneParams,
    /// Detector error characteristics.
    pub detector: DetectorConfig,
    /// Appearance world (ReID simulator) configuration.
    pub appearance: AppearanceConfig,
    /// Detector noise seed.
    pub det_seed: u64,
}

/// A dataset: a name, its videos, and the window length its experiments
/// use (`L`; MOT-17 and KITTI treat each whole video as one window, §V-A).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset display name.
    pub name: &'static str,
    /// The videos.
    pub videos: Vec<VideoSpec>,
    /// Default window length for processing this dataset.
    pub window_len: u64,
    /// The dataset's `L_max` (longest GT track, §II).
    pub l_max: u64,
}

/// A fully prepared video: simulated, detected and tracked, with exact
/// polyonymous ground truth attached.
#[derive(Debug, Clone)]
pub struct PreparedVideo {
    /// Video name.
    pub name: String,
    /// Video length in frames.
    pub n_frames: u64,
    /// Ground-truth tracks (ids = GT actor ids).
    pub gt_tracks: TrackSet,
    /// Per-frame simulated detections.
    pub detections: Vec<Vec<Detection>>,
    /// Tracker output — the input to the merging algorithms.
    pub tracks: TrackSet,
    /// Appearance-world configuration (rebuild the model with
    /// [`PreparedVideo::model`]).
    pub appearance: AppearanceConfig,
    /// Track → GT-actor attribution.
    pub correspondence: Correspondence,
}

impl PreparedVideo {
    /// The ReID simulator for this video.
    pub fn model(&self) -> AppearanceModel {
        AppearanceModel::new(self.appearance)
    }

    /// The true polyonymous pairs within a given pair-set scope
    /// (`P* ∩ P_c`).
    pub fn poly_truth(&self, pairs: &[TrackPair]) -> std::collections::BTreeSet<TrackPair> {
        self.correspondence.polyonymous_in(pairs)
    }
}

/// Runs the pipeline front end (simulate → detect → track) for a video.
pub fn prepare(video: &VideoSpec, tracker: TrackerKind) -> PreparedVideo {
    let gt = crowd_scenario(&video.scene).simulate();
    let detections = Detector::new(video.detector).detect(&gt, video.det_seed);
    let model = AppearanceModel::new(video.appearance);
    let mut t = tracker.build(&model);
    let tracks = track_video(t.as_mut(), &detections);
    let correspondence = Correspondence::from_tracks(&tracks, 0.5);
    PreparedVideo {
        name: video.name.clone(),
        n_frames: gt.n_frames(),
        gt_tracks: gt.gt_tracks(0.1),
        detections,
        tracks,
        appearance: video.appearance,
        correspondence,
    }
}

fn appearance(seed: u64, n_archetypes: u64) -> AppearanceConfig {
    AppearanceConfig {
        n_archetypes,
        seed,
        ..AppearanceConfig::default()
    }
}

/// The MOT-17-like suite: 7 crowded indoor/outdoor pedestrian scenes of
/// ~825 frames (the paper reports 825 frames and ~11.9k boxes per video on
/// average). Whole videos are processed as single windows.
pub fn mot17() -> DatasetSpec {
    let videos = (0..7)
        .map(|i| {
            let seed = 1_700 + i as u64 * 131;
            VideoSpec {
                name: format!("MOT17-{:02}", i + 1),
                scene: SceneParams {
                    n_frames: 825,
                    width: 1920.0,
                    height: 1080.0,
                    n_actors: 26,
                    min_life: 200,
                    max_life: 750,
                    speed: (2.0, 4.5),
                    actor_w: (35.0, 60.0),
                    actor_h: (95.0, 160.0),
                    loiter_fraction: 0.25,
                    n_pillars: 3,
                    pillar_w: (80.0, 160.0),
                    n_glare: 1,
                    class: classes::PEDESTRIAN,
                    seed,
                },
                detector: DetectorConfig::default(),
                appearance: appearance(seed ^ 0xA11CE, 16),
                det_seed: seed ^ 0xDE7EC7,
            }
        })
        .collect();
    DatasetSpec {
        name: "MOT-17",
        videos,
        window_len: 2000, // > video length → one window per video
        l_max: 750,
    }
}

/// The KITTI-like suite: 8 street scenes from a vehicle viewpoint with a
/// wide, low viewport and sparse, fast-crossing pedestrians.
pub fn kitti() -> DatasetSpec {
    let videos = (0..8)
        .map(|i| {
            let seed = 2_900 + i as u64 * 173;
            VideoSpec {
                name: format!("KITTI-{:02}", i + 1),
                scene: SceneParams {
                    n_frames: 420,
                    width: 1242.0,
                    height: 375.0,
                    n_actors: 14,
                    min_life: 80,
                    max_life: 380,
                    speed: (3.0, 7.0),
                    actor_w: (22.0, 42.0),
                    actor_h: (55.0, 100.0),
                    loiter_fraction: 0.1,
                    n_pillars: 2,
                    pillar_w: (70.0, 130.0),
                    n_glare: 1,
                    class: classes::PEDESTRIAN,
                    seed,
                },
                detector: DetectorConfig {
                    // Small, fast objects: slightly worse detector.
                    detect_prob: 0.96,
                    fp_rate: 0.05,
                    ..DetectorConfig::default()
                },
                appearance: appearance(seed ^ 0xA11CE, 8),
                det_seed: seed ^ 0xDE7EC7,
            }
        })
        .collect();
    DatasetSpec {
        name: "KITTI",
        videos,
        window_len: 2000,
        l_max: 380,
    }
}

/// The PathTrack-like suite: 9 two-minute YouTube-style sequences with a
/// large cast; `L_max = 1000` frames (the paper quotes the PathTrack
/// authors' annotation), processed with windows of `L = 2000`.
pub fn pathtrack() -> DatasetSpec {
    let videos = (0..9)
        .map(|i| {
            let seed = 4_100 + i as u64 * 197;
            VideoSpec {
                name: format!("PathTrack-{:02}", i + 1),
                scene: SceneParams {
                    n_frames: 3600,
                    width: 1280.0,
                    height: 720.0,
                    n_actors: 40,
                    min_life: 250,
                    max_life: 1000,
                    speed: (1.5, 4.0),
                    actor_w: (30.0, 55.0),
                    actor_h: (80.0, 140.0),
                    loiter_fraction: 0.3,
                    n_pillars: 4,
                    pillar_w: (80.0, 150.0),
                    n_glare: 2,
                    class: classes::PEDESTRIAN,
                    seed,
                },
                detector: DetectorConfig::default(),
                appearance: appearance(seed ^ 0xA11CE, 16),
                det_seed: seed ^ 0xDE7EC7,
            }
        })
        .collect();
    DatasetSpec {
        name: "PathTrack",
        videos,
        window_len: 2000,
        l_max: 1000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::build_window_pairs;
    use tm_metrics::polyonymous_rate;

    #[test]
    fn suites_have_the_documented_shapes() {
        let m = mot17();
        assert_eq!(m.videos.len(), 7);
        assert_eq!(m.videos[0].scene.n_frames, 825);
        let k = kitti();
        assert_eq!(k.videos.len(), 8);
        let p = pathtrack();
        assert_eq!(p.videos.len(), 9);
        assert_eq!(p.l_max, 1000);
        assert!(p.window_len >= 2 * 1000, "L ≥ 2·L_max must hold");
    }

    #[test]
    fn prepare_is_deterministic() {
        let spec = &mot17().videos[0];
        let a = prepare(spec, TrackerKind::Tracktor);
        let b = prepare(spec, TrackerKind::Tracktor);
        assert_eq!(a.tracks, b.tracks);
        assert_eq!(a.gt_tracks, b.gt_tracks);
    }

    #[test]
    fn mot17_video_statistics_are_in_the_papers_range() {
        let spec = &mot17().videos[0];
        let v = prepare(spec, TrackerKind::Tracktor);
        // Tracker produced a meaningful number of tracks...
        let n_tracks = v.tracks.len();
        assert!(
            (20..90).contains(&n_tracks),
            "unexpected track count {n_tracks}"
        );
        // ...with a few hundred pairs for the whole-video window...
        let pairs = build_window_pairs(&v.tracks, v.n_frames, 2000).unwrap();
        let n_pairs: usize = pairs.iter().map(|w| w.pairs.len()).sum();
        assert!(
            (150..2500).contains(&n_pairs),
            "unexpected pair count {n_pairs}"
        );
        // ...a small but non-empty polyonymous subset (the paper reports
        // ~2% on MOT-17).
        let all: Vec<_> = pairs.iter().flat_map(|w| w.pairs.clone()).collect();
        let poly = v.poly_truth(&all);
        let rate = polyonymous_rate(poly.len(), n_pairs);
        assert!(
            !poly.is_empty() && rate < 0.12,
            "polyonymous rate {rate} ({} of {n_pairs})",
            poly.len()
        );
    }

    #[test]
    fn fragile_trackers_fragment_more() {
        let spec = &mot17().videos[1];
        let count_poly = |kind: TrackerKind| {
            let v = prepare(spec, kind);
            let pairs = build_window_pairs(&v.tracks, v.n_frames, 2000).unwrap();
            let all: Vec<_> = pairs.iter().flat_map(|w| w.pairs.clone()).collect();
            v.poly_truth(&all).len()
        };
        let tracktor = count_poly(TrackerKind::Tracktor);
        let sort = count_poly(TrackerKind::Sort);
        assert!(
            sort > tracktor,
            "SORT ({sort}) should fragment more than Tracktor ({tracktor})"
        );
    }
}
