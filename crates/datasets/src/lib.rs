//! # tm-datasets
//!
//! Synthetic stand-ins for the three datasets of the paper's evaluation
//! (§V-A): **MOT-17** [21], **KITTI** [29] and **PathTrack** [25].
//!
//! The pixel videos are replaced by `tm-synth` scenarios whose parameters
//! are calibrated so the *statistics the paper reports* hold on the
//! generated data (see DESIGN.md §1):
//!
//! * MOT-17-like: 7 crowded pedestrian scenes of ~825 frames, ~12k visible
//!   boxes per video, a few hundred track pairs per video, ~2% of them
//!   polyonymous; each video is treated as a single window.
//! * KITTI-like: 8 short street scenes with sparse pedestrians, a wide
//!   low-resolution viewport and ego-like fast crossings.
//! * PathTrack-like: 9 two-minute (3600-frame) YouTube-style scenes with a
//!   large cast; `L_max = 1000` frames, processed with half-overlapping
//!   windows of `L = 2000` by default.
//!
//! Every video is fully determined by its seed. [`prepare`] runs the whole
//! front of the pipeline — simulate → detect → track — and returns
//! everything the merging experiments need, including the exact
//! polyonymous-pair ground truth.

pub mod scenario;
pub mod suite;

pub use scenario::{crowd_scenario, SceneParams};
pub use suite::{kitti, mot17, pathtrack, prepare, DatasetSpec, PreparedVideo, VideoSpec};
