//! Random crowd-scene generation.
//!
//! Builds `tm-synth` scenarios with the ingredients that produce realistic
//! track fragmentation: actors crossing the scene at varying speeds and
//! depths, opaque pillars wide enough that passing behind one exceeds a
//! tracker's patience, occasional loiterers, and glare events.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tm_synth::{ActorSpec, GlareEvent, MotionModel, Occluder, Scenario, SceneConfig};
use tm_types::{BBox, ClassId, FrameIdx, GtObjectId, Point};

/// Parameters of a random crowd scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneParams {
    /// Video length in frames.
    pub n_frames: u64,
    /// Viewport width in pixels.
    pub width: f64,
    /// Viewport height in pixels.
    pub height: f64,
    /// Number of ground-truth actors.
    pub n_actors: usize,
    /// Minimum actor lifetime (frames).
    pub min_life: u64,
    /// Maximum actor lifetime (frames) — bounds the dataset's `L_max`.
    pub max_life: u64,
    /// Horizontal speed range (pixels/frame).
    pub speed: (f64, f64),
    /// Actor width range.
    pub actor_w: (f64, f64),
    /// Actor height range.
    pub actor_h: (f64, f64),
    /// Fraction of actors that loiter (random walk) instead of crossing.
    pub loiter_fraction: f64,
    /// Number of opaque static pillars.
    pub n_pillars: usize,
    /// Pillar width range — wide pillars hide crossers long enough to kill
    /// their track.
    pub pillar_w: (f64, f64),
    /// Number of glare events.
    pub n_glare: usize,
    /// Object class of all actors.
    pub class: ClassId,
    /// Scene seed (actors, pillars, glare placement and all motion noise).
    pub seed: u64,
}

fn sample(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    if range.0 >= range.1 {
        range.0
    } else {
        rng.random_range(range.0..range.1)
    }
}

/// Builds a deterministic crowd scenario from the parameters.
pub fn crowd_scenario(p: &SceneParams) -> Scenario {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut scenario = Scenario::new(
        SceneConfig::new(p.width, p.height, p.n_frames),
        p.seed ^ 0x00C0_FFEE,
    );

    // The horizontal band actors walk in (street level).
    let y_lo = p.height * 0.45;
    let y_hi = p.height * 0.9;

    for a in 0..p.n_actors {
        let w = sample(&mut rng, p.actor_w);
        let h = sample(&mut rng, p.actor_h);
        let life = rng.random_range(p.min_life..=p.max_life).min(p.n_frames);
        // Stagger entries so the scene density stays roughly constant; a
        // few actors are present from the first frame.
        let enter = if a % 4 == 0 || p.n_frames <= life {
            0
        } else {
            rng.random_range(0..p.n_frames.saturating_sub(life / 2).max(1))
        };
        let exit = (enter + life).min(p.n_frames);
        let y = sample(&mut rng, (y_lo, y_hi));
        let motion = if rng.random_bool(p.loiter_fraction.clamp(0.0, 1.0)) {
            MotionModel::RandomWalk {
                start: Point::new(sample(&mut rng, (p.width * 0.1, p.width * 0.9)), y),
                drift_x: sample(&mut rng, (-0.4, 0.4)),
                drift_y: 0.0,
                sigma: 0.8,
            }
        } else {
            // Crossers: enter from one side and walk to the other; actors
            // already present at frame 0 start somewhere inside.
            let speed = sample(&mut rng, p.speed);
            let ltr = rng.random_bool(0.5);
            let x0 = if enter == 0 {
                sample(&mut rng, (0.0, p.width))
            } else if ltr {
                -w / 2.0
            } else {
                p.width + w / 2.0
            };
            let vx = if ltr { speed } else { -speed };
            if rng.random_bool(0.2) {
                MotionModel::StopAndGo {
                    start: Point::new(x0, y),
                    vx,
                    vy: sample(&mut rng, (-0.2, 0.2)),
                    go_frames: rng.random_range(30..90),
                    stop_frames: rng.random_range(10..40),
                }
            } else {
                MotionModel::linear(Point::new(x0, y), vx, sample(&mut rng, (-0.2, 0.2)))
            }
        };
        scenario.push_actor(ActorSpec::new(
            GtObjectId(a as u64),
            p.class,
            w,
            h,
            FrameIdx(enter),
            FrameIdx(exit),
            motion,
        ));
    }

    // Pillars: opaque foreground obstacles spanning the walking band.
    for _ in 0..p.n_pillars {
        let w = sample(&mut rng, p.pillar_w);
        let x = sample(&mut rng, (p.width * 0.15, p.width * 0.85 - w));
        // Tall enough to fully cover any actor in the band.
        let y0 = y_lo - p.actor_h.1;
        let h = (y_hi + p.actor_h.1) - y0;
        scenario.push_occluder(Occluder::static_box(BBox::new(x, y0, w, h)));
    }

    // Glare: a bright region washing out detections for a stretch.
    for _ in 0..p.n_glare {
        let gw = p.width * sample(&mut rng, (0.15, 0.3));
        let gh = p.height * sample(&mut rng, (0.3, 0.6));
        let gx = sample(&mut rng, (0.0, p.width - gw));
        let gy = sample(&mut rng, (0.0, p.height - gh));
        let dur = rng.random_range(40..120).min(p.n_frames.max(1));
        let start = rng.random_range(0..p.n_frames.saturating_sub(dur).max(1));
        scenario.push_glare(GlareEvent::new(
            BBox::new(gx, gy, gw, gh),
            FrameIdx(start),
            FrameIdx(start + dur),
            sample(&mut rng, (0.75, 0.95)),
        ));
    }

    scenario
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::ids::classes;

    fn params(seed: u64) -> SceneParams {
        SceneParams {
            n_frames: 400,
            width: 1600.0,
            height: 900.0,
            n_actors: 12,
            min_life: 100,
            max_life: 350,
            speed: (2.0, 5.0),
            actor_w: (35.0, 60.0),
            actor_h: (90.0, 150.0),
            loiter_fraction: 0.2,
            n_pillars: 2,
            pillar_w: (90.0, 150.0),
            n_glare: 1,
            class: classes::PEDESTRIAN,
            seed,
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = crowd_scenario(&params(7));
        let b = crowd_scenario(&params(7));
        assert_eq!(a, b);
        let c = crowd_scenario(&params(8));
        assert_ne!(a, c);
    }

    #[test]
    fn counts_match_parameters() {
        let s = crowd_scenario(&params(3));
        assert_eq!(s.actors.len(), 12);
        assert_eq!(s.occluders.len(), 2);
        assert_eq!(s.glare.len(), 1);
    }

    #[test]
    fn lifetimes_respect_bounds() {
        let p = params(5);
        let s = crowd_scenario(&p);
        for a in &s.actors {
            let life = a.exit.get() - a.enter.get();
            assert!(life <= p.max_life, "actor lifetime {life} > max_life");
            assert!(a.exit.get() <= p.n_frames);
        }
    }

    #[test]
    fn simulation_produces_visible_actors_and_occlusion() {
        let s = crowd_scenario(&params(11));
        let gt = s.simulate();
        let visible = gt.total_visible_instances(0.3);
        assert!(visible > 500, "only {visible} visible instances");
        // Some instances are heavily occluded (behind pillars or others).
        let occluded = gt
            .frames()
            .iter()
            .flat_map(|f| &f.instances)
            .filter(|i| i.visibility < 0.2 && i.visible_bbox.is_some())
            .count();
        assert!(
            occluded > 10,
            "no meaningful occlusion happened ({occluded})"
        );
    }

    #[test]
    fn l_max_is_bounded_by_max_life() {
        let p = params(13);
        let s = crowd_scenario(&p);
        let gt = s.simulate();
        assert!(gt.l_max(0.1) <= p.max_life);
    }
}
