//! Property tests for the cross-stream batching backend.
//!
//! Four invariants pin the `BatchingBackend` contract from
//! `crates/reid/src/batch.rs`:
//!
//! * **Reply transparency** — for any fault mix and any request sequence,
//!   a lane's reply is the wrapped backend's reply, bit for bit, plus the
//!   amortized overhead on clean replies only. Charges therefore never
//!   exceed the per-stream serial run's charges plus the documented
//!   surcharge.
//! * **Answered exactly once** — every request gets exactly one reply, and
//!   each distinct clean box content is computed at most once fleet-wide
//!   (`computed` ≤ distinct contents ≤ `requests`).
//! * **No cross-stream fault leakage** — a faulting or corrupting stream
//!   never receives a sibling's cached clean feature, and its corrupt
//!   payloads never enter the shared cache.
//! * **Batch bounds** — the pending queue never holds `max_batch` or more
//!   entries after an offer, no dispatched batch exceeds `max_batch`, and
//!   a demand drains the queue entirely.

use proptest::prelude::*;
use std::collections::HashSet;
use tm_reid::{
    AppearanceConfig, AppearanceModel, Attempt, AttemptClass, BackendFault, BackendReply,
    BatchConfig, BatchScheduler, BoxKey, Feature, FeatureKey, InferenceBackend, SplitBackend,
};
use tm_types::{BBox, FrameIdx, GtObjectId, TrackBox, TrackId};

/// A deterministic hash-flaky `SplitBackend` test double (tm-reid cannot
/// depend on tm-chaos): classification is a pure hash of the attempt
/// coordinates, with `try_observe` derived from `classify` exactly as the
/// contract demands.
#[derive(Debug)]
struct HashFlaky<'a> {
    model: &'a AppearanceModel,
    seed: u64,
    /// Percent of attempts that fail transiently.
    fault_pct: u64,
    /// Percent of attempts (after faults) that return a NaN feature.
    corrupt_pct: u64,
}

impl HashFlaky<'_> {
    fn draw(&self, at: &Attempt) -> u64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(at.epoch)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(at.attempt as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(at.key.track.get())
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(at.key.frame.get());
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl InferenceBackend for HashFlaky<'_> {
    fn try_observe(&self, tb: &TrackBox, at: &Attempt) -> BackendReply {
        match self.classify(at) {
            AttemptClass::Clean { extra_ms } => BackendReply {
                outcome: Ok(self.model.observe_track_box(tb)),
                extra_ms,
            },
            AttemptClass::Corrupt { feature, extra_ms } => BackendReply {
                outcome: Ok(feature),
                extra_ms,
            },
            AttemptClass::Fault { fault, extra_ms } => BackendReply::fault(fault, extra_ms),
        }
    }

    fn prefetch(&self, _requests: &[(&TrackBox, Attempt)]) {}
}

impl SplitBackend for HashFlaky<'_> {
    fn classify(&self, at: &Attempt) -> AttemptClass {
        let h = self.draw(at);
        let pick = h % 100;
        // Deterministic per-attempt extra latency, so transparency is
        // checked against varying nonzero charges, not just 0.0.
        let extra_ms = if (h >> 8).is_multiple_of(4) {
            ((h >> 16) % 50) as f64 * 0.5
        } else {
            0.0
        };
        if pick < self.fault_pct {
            AttemptClass::Fault {
                fault: BackendFault::Transient("hash-flaky transient"),
                extra_ms,
            }
        } else if pick < self.fault_pct + self.corrupt_pct {
            AttemptClass::Corrupt {
                feature: Feature::from_raw(vec![f64::NAN, f64::NAN]),
                extra_ms,
            }
        } else {
            AttemptClass::Clean { extra_ms }
        }
    }
}

/// One request: which box content, and the attempt coordinates.
type RequestSpec = (u64, u64, u64, u32);

fn requests_strategy() -> impl Strategy<Value = Vec<RequestSpec>> {
    proptest::collection::vec((1u64..12, 0u64..40, 0u64..6, 0u32..3), 1..60)
}

fn make_box(track: u64, frame: u64) -> TrackBox {
    TrackBox::new(
        FrameIdx(frame),
        BBox::new(track as f64 * 13.0, frame as f64 * 3.0, 30.0, 60.0),
    )
    .with_provenance(GtObjectId(track))
}

fn make_attempt(track: u64, frame: u64, epoch: u64, attempt: u32) -> Attempt {
    Attempt {
        epoch,
        attempt,
        key: BoxKey::new(TrackId(track), FrameIdx(frame)),
    }
}

proptest! {
    /// Reply transparency + exactly-once compute: the lane's outcome is the
    /// inner backend's outcome bit for bit; clean replies pay exactly the
    /// amortized overhead on top of the inner charge (so total charges are
    /// the serial run's plus the documented surcharge and nothing else);
    /// each distinct clean content is computed at most once.
    #[test]
    fn lane_is_transparent_for_any_fault_mix(
        specs in requests_strategy(),
        seed in 0u64..1000,
        fault_pct in 0u64..40,
        corrupt_pct in 0u64..40,
        overhead_steps in 0u64..4,
    ) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let inner = HashFlaky { model: &model, seed, fault_pct, corrupt_pct };
        let overhead = overhead_steps as f64 * 0.25;
        let sched = BatchScheduler::new(&model, BatchConfig {
            amortized_overhead_ms: overhead,
            ..BatchConfig::default()
        });
        let lane = sched.backend(&inner);

        let mut clean_requests = 0u64;
        let mut distinct_clean: HashSet<FeatureKey> = HashSet::new();
        for &(track, frame, epoch, attempt) in &specs {
            let tb = make_box(track, frame);
            let at = make_attempt(track, frame, epoch, attempt);
            let got = lane.try_observe(&tb, &at);
            let want = inner.try_observe(&tb, &at);
            let clean = matches!(inner.classify(&at), AttemptClass::Clean { .. });
            if clean {
                clean_requests += 1;
                distinct_clean.insert(FeatureKey::of(&tb));
                prop_assert_eq!(
                    got.extra_ms.to_bits(),
                    (want.extra_ms + overhead).to_bits(),
                    "clean reply must charge inner + overhead"
                );
            } else {
                prop_assert_eq!(got.extra_ms.to_bits(), want.extra_ms.to_bits());
            }
            match (got.outcome, want.outcome) {
                (Ok(g), Ok(w)) => prop_assert!(
                    g == w || (clean_is_corrupt(&g) && clean_is_corrupt(&w)),
                    "feature mismatch"
                ),
                (Err(g), Err(w)) => prop_assert_eq!(g, w),
                (g, w) => prop_assert!(false, "outcome kind mismatch: {:?} vs {:?}", g, w),
            }
        }
        let stats = sched.stats();
        prop_assert_eq!(stats.requests, clean_requests, "every clean request counted once");
        prop_assert!(stats.computed <= distinct_clean.len() as u64,
            "computed {} > distinct clean contents {}", stats.computed, distinct_clean.len());
        prop_assert!(stats.computed <= stats.requests);
    }

    /// No cross-stream leakage: a sibling stream caching a box's clean
    /// feature never changes what a faulting/corrupting stream sees for
    /// the same content, and corrupt payloads never enter the cache.
    #[test]
    fn faults_never_leak_across_streams(
        specs in requests_strategy(),
    ) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let clean_inner = HashFlaky { model: &model, seed: 1, fault_pct: 0, corrupt_pct: 0 };
        let fault_inner = HashFlaky { model: &model, seed: 2, fault_pct: 100, corrupt_pct: 0 };
        let corrupt_inner = HashFlaky { model: &model, seed: 3, fault_pct: 0, corrupt_pct: 100 };
        let sched = BatchScheduler::new(&model, BatchConfig::default());
        let clean_lane = sched.backend(&clean_inner);
        let fault_lane = sched.backend(&fault_inner);
        let corrupt_lane = sched.backend(&corrupt_inner);

        for &(track, frame, epoch, attempt) in &specs {
            let tb = make_box(track, frame);
            let at = make_attempt(track, frame, epoch, attempt);
            // The healthy stream computes and caches the clean feature…
            let f = clean_lane.try_observe(&tb, &at).outcome.unwrap();
            prop_assert!(f.is_finite());
            // …but the hard-faulting stream still faults on that content…
            let fr = fault_lane.try_observe(&tb, &at);
            prop_assert!(fr.outcome.is_err(), "cached sibling feature leaked into a fault");
            // …and the corrupting stream still sees its NaNs, not the cache.
            let cr = corrupt_lane.try_observe(&tb, &at).outcome.unwrap();
            prop_assert!(!cr.is_finite(), "cache papered over corruption");
        }
        // The cache holds only clean computations: every cached feature
        // re-served to the clean stream is finite.
        prop_assert_eq!(sched.stats().computed, sched.cached_features() as u64);
    }

    /// Batch bounds: offers never leave `max_batch` or more pending, no
    /// dispatched batch exceeds `max_batch`, and a demand drains the queue.
    #[test]
    fn queue_and_batches_respect_bounds(
        specs in requests_strategy(),
        max_batch in 1usize..6,
    ) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let sched = BatchScheduler::new(&model, BatchConfig {
            max_batch,
            ..BatchConfig::default()
        });
        let lane = sched.backend(&model);

        for &(track, frame, epoch, attempt) in &specs {
            let tb = make_box(track, frame);
            let at = make_attempt(track, frame, epoch, attempt);
            lane.prefetch(&[(&tb, at)]);
            prop_assert!(sched.pending_len() < max_batch,
                "offer left {} pending at max_batch {}", sched.pending_len(), max_batch);
        }
        let s = sched.stats();
        prop_assert!(s.largest_batch <= max_batch as u64);
        // Demand is the deadline: one request flushes everything.
        let tb = make_box(99, 99);
        lane.try_observe(&tb, &make_attempt(99, 99, 0, 0));
        prop_assert_eq!(sched.pending_len(), 0);
        let s = sched.stats();
        prop_assert!(s.largest_batch <= max_batch as u64);
        // Everything dispatched was computed exactly once per content.
        prop_assert_eq!(s.computed, sched.cached_features() as u64);
    }
}

/// NaN features never compare equal; this detects the corrupt payload.
fn clean_is_corrupt(f: &Feature) -> bool {
    !f.is_finite()
}
