//! Integration tests for the bulk session APIs (`ensure_features`,
//! `cached_feature`, `charge_distance_batch`) and their consistency with
//! the per-pair path.

use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, ReidSession};
use tm_types::{BBox, FrameIdx, GtObjectId, TrackBox, TrackId};

fn tb(frame: u64, actor: u64, vis: f64) -> TrackBox {
    TrackBox::new(FrameIdx(frame), BBox::new(0.0, 0.0, 10.0, 10.0))
        .with_provenance(GtObjectId(actor))
        .with_visibility(vis)
}

#[test]
fn ensure_features_is_one_round_and_idempotent() {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let cost = CostModel::calibrated();
    let mut s = ReidSession::new(&model, cost, Device::Gpu { batch: 10 });
    let boxes: Vec<TrackBox> = (0..20).map(|f| tb(f, 1, 1.0)).collect();
    let refs: Vec<(TrackId, &TrackBox)> = boxes.iter().map(|b| (TrackId(1), b)).collect();
    s.ensure_features(&refs);
    assert_eq!(s.stats().inferences, 20);
    assert_eq!(s.stats().gpu_rounds, 1);
    let after_first = s.elapsed_ms();
    // Second call: everything cached, nothing charged.
    s.ensure_features(&refs);
    assert_eq!(s.elapsed_ms(), after_first);
    assert_eq!(s.stats().inferences, 20);
    // Features are retrievable.
    for b in &boxes {
        assert!(s.cached_feature(TrackId(1), b.frame).is_some());
    }
}

#[test]
fn ensure_features_dedupes_within_one_call() {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let mut s = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
    let b = tb(3, 1, 1.0);
    s.ensure_features(&[(TrackId(1), &b), (TrackId(1), &b), (TrackId(1), &b)]);
    assert_eq!(s.stats().inferences, 1);
}

#[test]
fn bulk_features_match_pair_distance_path() {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let a = tb(0, 1, 0.8);
    let b = tb(5, 2, 0.9);

    let mut direct = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let d_direct = direct.pair_distance((TrackId(1), &a), (TrackId(2), &b));

    let mut bulk = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    bulk.ensure_features(&[(TrackId(1), &a), (TrackId(2), &b)]);
    let fa = bulk.cached_feature(TrackId(1), a.frame).unwrap();
    let fb = bulk.cached_feature(TrackId(2), b.frame).unwrap();
    assert!((fa.euclidean(&fb) - d_direct).abs() < 1e-12);
}

#[test]
fn charge_distance_batch_accounts_cost_and_stats() {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let cost = CostModel::calibrated();
    let mut s = ReidSession::new(&model, cost, Device::Cpu);
    s.charge_distance_batch(1000);
    assert_eq!(s.stats().distances, 1000);
    assert!((s.elapsed_ms() - 1000.0 * cost.cpu_dist_ms).abs() < 1e-9);
    let mut g = ReidSession::new(&model, cost, Device::Gpu { batch: 10 });
    g.charge_distance_batch(1000);
    assert!(g.elapsed_ms() < s.elapsed_ms());
}

#[test]
fn provenance_free_boxes_get_stable_features() {
    // Tracked false positives (no provenance) must still featurize
    // deterministically.
    let model = AppearanceModel::new(AppearanceConfig::default());
    let mut s = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let fp = TrackBox::new(FrameIdx(4), BBox::new(50.0, 60.0, 30.0, 70.0));
    let d1 = s.pair_distance((TrackId(1), &fp), (TrackId(2), &tb(9, 3, 1.0)));
    let mut s2 = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let d2 = s2.pair_distance((TrackId(1), &fp), (TrackId(2), &tb(9, 3, 1.0)));
    assert_eq!(d1, d2);
    assert!(d1 > 0.0);
}
