//! The fallible inference seam.
//!
//! [`crate::AppearanceModel`] is a pure function — it cannot fail. Real
//! ReID backends can: the model server drops a request, a GPU worker goes
//! away for a few seconds, a truncated tensor comes back full of NaNs.
//! [`InferenceBackend`] is the seam where those failures enter the system:
//! a session extracts every feature through its backend, and the default
//! backend is simply the appearance model itself (infallible, zero extra
//! latency), so the zero-fault path is byte-identical to the historical
//! direct-model path. Fault injectors (the `tm-chaos` crate) implement this
//! trait to wrap the model with deterministic, seeded failures.
//!
//! Failure handling lives in [`crate::ReidSession`]: each extraction is
//! retried under a [`RetryPolicy`] with capped exponential backoff, every
//! attempt's latency (backend-reported `extra_ms` plus backoff sleeps) is
//! charged to the simulated clock, and exhaustion surfaces as
//! [`tm_types::TmError::ReidBackend`] for the merging layer's circuit
//! breaker to act on.

use crate::appearance::AppearanceModel;
use crate::feature::Feature;
use crate::session::BoxKey;
use tm_types::TrackBox;

/// Context for one extraction attempt, handed to the backend so fault
/// injectors can make **deterministic** decisions: the triple
/// `(epoch, key, attempt)` fully identifies an attempt, independent of
/// thread scheduling or wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// The processing epoch (the merging layer sets this to the window
    /// cursor), so fault plans can schedule outages per window.
    pub epoch: u64,
    /// Zero-based retry ordinal within this extraction.
    pub attempt: u32,
    /// The box being extracted.
    pub key: BoxKey,
}

/// Why a backend attempt produced no usable feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendFault {
    /// A one-off failure (timeout, dropped request); retrying may succeed.
    Transient(&'static str),
    /// The backend is hard-down for this epoch; retries within the epoch
    /// are futile. Sessions still retry (the outage may be shorter than
    /// the plan claims), but the merging layer's breaker uses
    /// [`InferenceBackend::available`] to stop sending work.
    Unavailable,
}

impl BackendFault {
    /// Human-readable reason carried into [`tm_types::TmError::ReidBackend`].
    pub fn reason(&self) -> &'static str {
        match self {
            BackendFault::Transient(r) => r,
            BackendFault::Unavailable => "backend unavailable",
        }
    }
}

/// One attempt's outcome plus the simulated latency it consumed **beyond**
/// the cost model's nominal inference charge (latency spikes, time wasted
/// on a failed call). The session charges `extra_ms` unconditionally, so a
/// zero here keeps the clock byte-identical to the fault-free run.
#[derive(Debug, Clone)]
pub struct BackendReply {
    /// The feature, or why there isn't one. An `Ok` feature with non-finite
    /// components is treated by the session as a corrupted reply and
    /// retried like a transient fault.
    pub outcome: Result<Feature, BackendFault>,
    /// Extra simulated milliseconds this attempt consumed.
    pub extra_ms: f64,
}

impl BackendReply {
    /// A clean reply: the feature, no extra latency.
    pub fn ok(feature: Feature) -> Self {
        Self {
            outcome: Ok(feature),
            extra_ms: 0.0,
        }
    }

    /// A failed attempt.
    pub fn fault(fault: BackendFault, extra_ms: f64) -> Self {
        Self {
            outcome: Err(fault),
            extra_ms,
        }
    }
}

/// A (possibly unreliable) feature-extraction service.
///
/// `Sync` because the parallel pipeline shares one backend across
/// per-window sessions, exactly as it shares the appearance model.
pub trait InferenceBackend: std::fmt::Debug + Sync {
    /// Runs the model on one box. Implementations must be deterministic in
    /// `(tb, at)` — same attempt, same reply — or cross-run reproducibility
    /// guarantees (serial/parallel identity, checkpoint resume) break.
    fn try_observe(&self, tb: &TrackBox, at: &Attempt) -> BackendReply;

    /// Whether the backend is accepting work during `epoch`. The merging
    /// layer probes this to trip / reset its circuit breaker without
    /// burning a full retry ladder. Defaults to always-up.
    fn available(&self, _epoch: u64) -> bool {
        true
    }

    /// Advisory look-ahead: the session announces the full miss list of an
    /// inference round before extracting box-by-box, so batching backends
    /// (`crate::BatchScheduler`) can accumulate cross-stream batches.
    ///
    /// A prefetch MUST NOT change any subsequent [`Self::try_observe`]
    /// reply — it may only move *when* a clean feature gets computed, never
    /// what it is or what it costs the announcing session. The default is a
    /// no-op, so plain backends are untouched.
    fn prefetch(&self, _requests: &[(&TrackBox, Attempt)]) {}
}

/// What a backend would do with one attempt, with the clean-compute part
/// split out. See [`SplitBackend`].
#[derive(Debug, Clone)]
pub enum AttemptClass {
    /// The attempt succeeds with the wrapped model's true feature.
    Clean {
        /// Extra simulated latency of the (successful) call.
        extra_ms: f64,
    },
    /// The attempt "succeeds" with a corrupted (non-finite) feature. The
    /// payload is carried here because it is *not* the model's output and
    /// must never be cached or shared.
    Corrupt {
        /// The corrupted feature exactly as `try_observe` would return it.
        feature: Feature,
        /// Extra simulated latency of the call.
        extra_ms: f64,
    },
    /// The attempt fails outright.
    Fault {
        /// The fault exactly as `try_observe` would return it.
        fault: BackendFault,
        /// Extra simulated latency of the failed call.
        extra_ms: f64,
    },
}

/// A backend whose fault decision is separable from its clean compute.
///
/// Contract: for every `(tb, at)`, `try_observe(tb, at)` must equal the
/// reply assembled from `classify(at)` — `Clean { extra_ms }` means
/// `Ok(model.observe_track_box(tb))` with that `extra_ms`, where `model`
/// is the pure [`AppearanceModel`] the backend wraps; `Corrupt` / `Fault`
/// carry their reply verbatim. This is what lets a batching layer answer
/// `Clean` attempts from a shared cross-stream cache (the model is pure,
/// so the cached feature IS the reply) while passing faults through
/// per-stream untouched. `classify` must be deterministic in `at`, and —
/// like `try_observe` — must not depend on the box beyond its key.
pub trait SplitBackend: InferenceBackend {
    /// Classifies one attempt without computing a clean feature.
    fn classify(&self, at: &Attempt) -> AttemptClass;
}

/// The appearance model is the canonical infallible backend.
impl InferenceBackend for AppearanceModel {
    fn try_observe(&self, tb: &TrackBox, _at: &Attempt) -> BackendReply {
        BackendReply::ok(self.observe_track_box(tb))
    }
}

/// Every attempt against the pure model is clean with zero extra latency.
impl SplitBackend for AppearanceModel {
    fn classify(&self, _at: &Attempt) -> AttemptClass {
        AttemptClass::Clean { extra_ms: 0.0 }
    }
}

/// Capped exponential backoff for failed extraction attempts. Backoff is
/// *simulated* time — charged to the session clock, never slept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per extraction (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff charged after the first failed attempt.
    pub base_backoff_ms: f64,
    /// Multiplier applied per further failure.
    pub backoff_factor: f64,
    /// Ceiling on a single backoff charge.
    pub max_backoff_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ms: 10.0,
            backoff_factor: 2.0,
            max_backoff_ms: 80.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged after failed attempt number `attempt` (zero-based):
    /// `min(base · factor^attempt, max)`.
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        (self.base_backoff_ms * self.backoff_factor.powi(attempt as i32)).min(self.max_backoff_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appearance::AppearanceConfig;
    use tm_types::{BBox, FrameIdx, GtObjectId, TrackId};

    #[test]
    fn appearance_model_is_a_clean_backend() {
        let m = AppearanceModel::new(AppearanceConfig::default());
        let tb = tm_types::TrackBox::new(FrameIdx(3), BBox::new(0.0, 0.0, 10.0, 10.0))
            .with_provenance(GtObjectId(1));
        let at = Attempt {
            epoch: 0,
            attempt: 0,
            key: BoxKey::new(TrackId(1), FrameIdx(3)),
        };
        let reply = m.try_observe(&tb, &at);
        assert_eq!(reply.extra_ms, 0.0);
        let f = reply.outcome.expect("model backend cannot fail");
        assert_eq!(f, m.observe_track_box(&tb));
        assert!(m.available(0) && m.available(u64::MAX));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0), 10.0);
        assert_eq!(p.backoff_ms(1), 20.0);
        assert_eq!(p.backoff_ms(2), 40.0);
        assert_eq!(p.backoff_ms(3), 80.0);
        assert_eq!(p.backoff_ms(10), 80.0, "cap binds");
    }

    #[test]
    fn fault_reasons_are_stable() {
        assert_eq!(BackendFault::Transient("timeout").reason(), "timeout");
        assert_eq!(BackendFault::Unavailable.reason(), "backend unavailable");
    }
}
