//! The latent appearance world and simulated feature extraction.

use crate::feature::Feature;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};
use tm_types::{Detection, FrameIdx, GtObjectId};

/// Parameters of the simulated appearance world and ReID model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppearanceConfig {
    /// Feature dimensionality (OSNet uses 512; 32 preserves the geometry
    /// at a fraction of the cost).
    pub dim: usize,
    /// Number of appearance archetypes ("red sedan", "person in black
    /// coat", ...). Distinct actors sharing an archetype are hard
    /// negatives.
    pub n_archetypes: u64,
    /// How far an individual's latent deviates from its archetype
    /// (0 = clones, larger = easier to tell apart). Applied before
    /// re-normalization.
    pub individuality: f64,
    /// Observation-noise magnitude for a fully visible crop.
    pub noise_base: f64,
    /// Per-observation noise spread: each (actor, frame) crop draws an
    /// extra noise magnitude uniformly from `[0, noise_range]`, modelling
    /// pose/blur/crop-quality variation between frames. Larger values make
    /// single BBox-pair distances less reliable estimates of the track-pair
    /// score — the regime in which sampling algorithms must average.
    pub noise_range: f64,
    /// Additional noise magnitude at zero visibility (scales linearly
    /// with `1 - visibility`).
    pub noise_occlusion: f64,
    /// Seed of the appearance world (independent of motion seeds).
    pub seed: u64,
}

impl Default for AppearanceConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            n_archetypes: 24,
            individuality: 0.6,
            noise_base: 0.15,
            noise_range: 0.3,
            noise_occlusion: 0.15,
            seed: 0xA99E,
        }
    }
}

/// The simulated ReID model.
///
/// All outputs are **pure functions** of the configuration and the query:
/// extracting the feature of the same observation twice yields the same
/// vector, which is what makes the paper's feature-reuse optimization
/// meaningful (cache hits are exact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppearanceModel {
    config: AppearanceConfig,
}

impl AppearanceModel {
    /// Creates the model.
    pub fn new(config: AppearanceConfig) -> Self {
        Self { config }
    }

    /// The model configuration.
    pub fn config(&self) -> &AppearanceConfig {
        &self.config
    }

    /// A deterministic unit vector derived from `seed`.
    fn unit_vec(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let v: Vec<f64> = (0..self.config.dim)
            .map(|_| StandardNormal.sample(&mut rng))
            .collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        v.into_iter().map(|x| x / norm).collect()
    }

    fn mix(&self, a: u64, b: u64, c: u64) -> u64 {
        // SplitMix64-style avalanche over the three inputs + world seed.
        let mut z = self
            .config
            .seed
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The latent (noise-free) appearance of an actor.
    pub fn latent(&self, actor: GtObjectId) -> Feature {
        let archetype_id = self.mix(actor.get(), 0, 1) % self.config.n_archetypes.max(1);
        let archetype = self.unit_vec(self.mix(archetype_id, 2, 3));
        let individual = self.unit_vec(self.mix(actor.get(), 4, 5));
        let ind = self.config.individuality;
        let mixed: Vec<f64> = archetype
            .iter()
            .zip(&individual)
            .map(|(a, i)| a + ind * i)
            .collect();
        Feature::normalized(mixed)
    }

    /// The archetype index of an actor (exposed for diagnostics/tests).
    pub fn archetype_of(&self, actor: GtObjectId) -> u64 {
        self.mix(actor.get(), 0, 1) % self.config.n_archetypes.max(1)
    }

    /// Runs "ReID inference" on an observation of `actor` at `frame` with
    /// the given visibility, returning a unit feature.
    ///
    /// Noise magnitude is `noise_base + noise_occlusion · (1 − visibility)`:
    /// well-visible crops give clean features; heavily occluded or
    /// truncated crops give degraded ones.
    pub fn observe(&self, actor: GtObjectId, frame: FrameIdx, visibility: f64) -> Feature {
        let latent = self.latent(actor);
        // Crop-quality jitter: deterministic in (actor, frame).
        let quality = (self.mix(actor.get(), frame.get(), 8) % 1024) as f64 / 1024.0;
        let sigma = self.config.noise_base
            + self.config.noise_range * quality
            + self.config.noise_occlusion * (1.0 - visibility.clamp(0.0, 1.0));
        let noise = self.unit_vec(self.mix(actor.get(), frame.get(), 6));
        let perturbed: Vec<f64> = latent
            .as_slice()
            .iter()
            .zip(&noise)
            .map(|(l, n)| l + sigma * n)
            .collect();
        Feature::normalized(perturbed)
    }

    /// Runs "ReID inference" on an arbitrary detection: true positives use
    /// the actor's latent; false positives get an unrelated deterministic
    /// vector (seeded by frame and box position).
    pub fn observe_detection(&self, det: &Detection) -> Feature {
        match det.provenance {
            Some(actor) => self.observe(actor, det.frame, det.visibility),
            None => self.fp_feature(det.frame, &det.bbox),
        }
    }

    /// Runs "ReID inference" on a track box (the form the merging stage
    /// uses): provenance-backed boxes behave like true-positive detections;
    /// provenance-free boxes (tracked false positives) get unrelated
    /// deterministic vectors.
    pub fn observe_track_box(&self, tb: &tm_types::TrackBox) -> Feature {
        match tb.provenance {
            Some(actor) => self.observe(actor, tb.frame, tb.visibility),
            None => self.fp_feature(tb.frame, &tb.bbox),
        }
    }

    /// Deterministic unrelated feature for a false-positive box.
    fn fp_feature(&self, frame: FrameIdx, bbox: &tm_types::BBox) -> Feature {
        let salt = (bbox.x.to_bits() >> 16) ^ (bbox.y.to_bits() >> 24);
        Feature::normalized(self.unit_vec(self.mix(frame.get(), salt, 7)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::BBox;

    fn model() -> AppearanceModel {
        AppearanceModel::new(AppearanceConfig::default())
    }

    #[test]
    fn latents_are_unit_norm_and_deterministic() {
        let m = model();
        let a = m.latent(GtObjectId(5));
        let b = m.latent(GtObjectId(5));
        assert_eq!(a, b);
        let norm: f64 = a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_actors_have_distinct_latents() {
        let m = model();
        let d = m.latent(GtObjectId(1)).euclidean(&m.latent(GtObjectId(2)));
        assert!(d > 0.1, "latents unexpectedly close: {d}");
    }

    #[test]
    fn same_actor_observations_are_close_when_visible() {
        let m = model();
        let f1 = m.observe(GtObjectId(3), FrameIdx(10), 1.0);
        let f2 = m.observe(GtObjectId(3), FrameIdx(11), 1.0);
        let same = f1.euclidean(&f2);
        let f3 = m.observe(GtObjectId(4), FrameIdx(10), 1.0);
        let diff = f1.euclidean(&f3);
        assert!(same < diff, "same-actor {same} vs diff-actor {diff}");
        assert!(same < 0.6, "same-actor distance too large: {same}");
    }

    #[test]
    fn occlusion_degrades_features() {
        let m = model();
        let clean: f64 = (0..50)
            .map(|f| {
                m.observe(GtObjectId(3), FrameIdx(f), 1.0)
                    .euclidean(&m.observe(GtObjectId(3), FrameIdx(f + 100), 1.0))
            })
            .sum::<f64>()
            / 50.0;
        let occluded: f64 = (0..50)
            .map(|f| {
                m.observe(GtObjectId(3), FrameIdx(f), 0.3)
                    .euclidean(&m.observe(GtObjectId(3), FrameIdx(f + 100), 0.3))
            })
            .sum::<f64>()
            / 50.0;
        assert!(
            occluded > clean + 0.1,
            "occluded {occluded} should exceed clean {clean}"
        );
    }

    #[test]
    fn same_archetype_actors_are_harder_negatives() {
        let cfg = AppearanceConfig {
            n_archetypes: 2,
            ..AppearanceConfig::default()
        };
        let m = AppearanceModel::new(cfg);
        // Find two pairs: same archetype and different archetype.
        let actors: Vec<GtObjectId> = (0..40).map(GtObjectId).collect();
        let mut same_arch = Vec::new();
        let mut diff_arch = Vec::new();
        for (i, &a) in actors.iter().enumerate() {
            for &b in &actors[i + 1..] {
                let d = m.latent(a).euclidean(&m.latent(b));
                if m.archetype_of(a) == m.archetype_of(b) {
                    same_arch.push(d);
                } else {
                    diff_arch.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(!same_arch.is_empty() && !diff_arch.is_empty());
        assert!(
            mean(&same_arch) + 0.3 < mean(&diff_arch),
            "same-archetype {} vs different-archetype {}",
            mean(&same_arch),
            mean(&diff_arch)
        );
    }

    #[test]
    fn observations_are_idempotent() {
        let m = model();
        assert_eq!(
            m.observe(GtObjectId(1), FrameIdx(9), 0.7),
            m.observe(GtObjectId(1), FrameIdx(9), 0.7)
        );
    }

    #[test]
    fn false_positives_get_unrelated_features() {
        let m = model();
        let fp = Detection::false_positive(
            FrameIdx(4),
            BBox::new(100.0, 50.0, 30.0, 60.0),
            0.4,
            tm_types::ids::classes::PEDESTRIAN,
        );
        let f = m.observe_detection(&fp);
        let d = f.euclidean(&m.latent(GtObjectId(0)));
        assert!(
            d > 0.5,
            "FP feature suspiciously close to a real actor: {d}"
        );
    }
}
