//! A ReID *session*: model + feature cache + cost accounting.
//!
//! All merging algorithms in `tm-core` obtain BBox-pair distances through a
//! [`ReidSession`]. The session implements the paper's feature-reuse
//! optimization (§IV-B: "if either of the BBoxes' feature vectors has been
//! extracted in previous iterations it can be *reused*") and charges the
//! simulated clock for every inference, distance and GPU round, so the
//! experiment harness can report Runtime/FPS deterministically.

use crate::appearance::AppearanceModel;
use crate::cost::{CostModel, Device, ReidStats, SimClock};
use crate::feature::Feature;
use std::collections::HashMap;
use tm_types::{FrameIdx, TrackBox, TrackId};

/// Identifies one box observation: a (track, frame) pair. Each track has at
/// most one box per frame, so this key is unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxKey {
    /// The track the box belongs to.
    pub track: TrackId,
    /// The frame of the observation.
    pub frame: FrameIdx,
}

impl BoxKey {
    /// Creates a key.
    pub fn new(track: TrackId, frame: FrameIdx) -> Self {
        Self { track, frame }
    }
}

/// A BBox pair as the selection algorithms hand it to the session: two
/// `(track, box)` references.
pub type BoxPairRef<'a> = ((TrackId, &'a TrackBox), (TrackId, &'a TrackBox));

/// A stateful ReID session over one processing unit (typically one window).
#[derive(Debug, Clone)]
pub struct ReidSession<'m> {
    model: &'m AppearanceModel,
    cost: CostModel,
    device: Device,
    clock: SimClock,
    cache: HashMap<BoxKey, Feature>,
    stats: ReidStats,
}

impl<'m> ReidSession<'m> {
    /// Opens a session.
    pub fn new(model: &'m AppearanceModel, cost: CostModel, device: Device) -> Self {
        Self {
            model,
            cost,
            device,
            clock: SimClock::new(),
            cache: HashMap::new(),
            stats: ReidStats::default(),
        }
    }

    /// The device this session runs on.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Simulated time consumed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.clock.elapsed_ms()
    }

    /// Work counters.
    pub fn stats(&self) -> ReidStats {
        self.stats
    }

    /// Charges the bookkeeping cost of one Thompson-sampling scan over
    /// `n_pairs` live track pairs (called by TMerge once per iteration).
    pub fn charge_thompson_scan(&mut self, n_pairs: usize) {
        let ms = self.cost.thompson_scan_cost_ms(n_pairs, self.device);
        self.clock.charge(ms);
    }

    /// Charges the bookkeeping cost of one LCB scan over `n_pairs` pairs.
    pub fn charge_lcb_scan(&mut self, n_pairs: usize) {
        let ms = self.cost.lcb_scan_cost_ms(n_pairs, self.device);
        self.clock.charge(ms);
    }

    /// Extracts (or reuses) the feature for one box, charging inference cost
    /// on a cache miss. Returns a clone (features are small).
    pub fn feature(&mut self, track: TrackId, tb: &TrackBox) -> Feature {
        let key = BoxKey::new(track, tb.frame);
        if let Some(f) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return f.clone();
        }
        let ms = self.cost.infer_cost_ms(1, self.device);
        self.clock.charge(ms);
        if self.device.is_gpu() {
            self.stats.gpu_rounds += 1;
        }
        self.stats.inferences += 1;
        let f = self.model.observe_track_box(tb);
        self.cache.insert(key, f.clone());
        f
    }

    /// The distance of one BBox pair, extracting whatever features are not
    /// cached in a single inference call (on GPU: one round).
    pub fn pair_distance(
        &mut self,
        (ta, ba): (TrackId, &TrackBox),
        (tb, bb): (TrackId, &TrackBox),
    ) -> f64 {
        self.pair_distances_batch(&[((ta, ba), (tb, bb))])[0]
    }

    /// Normalized variant of [`ReidSession::pair_distance`] (`d̃ = d/2`).
    pub fn normalized_pair_distance(
        &mut self,
        a: (TrackId, &TrackBox),
        b: (TrackId, &TrackBox),
    ) -> f64 {
        self.pair_distance(a, b) / crate::feature::NORMALIZER
    }

    /// Evaluates a batch of BBox pairs in one round.
    ///
    /// All features missing from the cache are inferred in a single call
    /// (one GPU round with one launch overhead, or a CPU loop), then the
    /// pairwise distances are charged and returned in input order. This is
    /// the primitive behind every `-B` algorithm (§IV-F).
    pub fn pair_distances_batch(&mut self, pairs: &[BoxPairRef<'_>]) -> Vec<f64> {
        // Phase 1: collect the cache misses, deduplicated.
        let mut new_keys: Vec<(BoxKey, &TrackBox)> = Vec::new();
        for ((ta, ba), (tb, bb)) in pairs {
            for (t, b) in [(*ta, *ba), (*tb, *bb)] {
                let key = BoxKey::new(t, b.frame);
                if self.cache.contains_key(&key) || new_keys.iter().any(|(k, _)| *k == key) {
                    continue;
                }
                new_keys.push((key, b));
            }
        }
        // Phase 2: one inference call for all misses.
        let n_new = new_keys.len();
        if n_new > 0 {
            let ms = self.cost.infer_cost_ms(n_new, self.device);
            self.clock.charge(ms);
            if self.device.is_gpu() {
                self.stats.gpu_rounds += 1;
            }
            self.stats.inferences += n_new as u64;
            for (key, b) in new_keys {
                let f = self.model.observe_track_box(b);
                self.cache.insert(key, f);
            }
        }
        // Phase 3: distances (every feature now cached).
        let ms = self.cost.distance_cost_ms(pairs.len(), self.device);
        self.clock.charge(ms);
        self.stats.distances += pairs.len() as u64;
        pairs
            .iter()
            .map(|((ta, ba), (tb, bb))| {
                self.stats.cache_hits += 2;
                let fa = &self.cache[&BoxKey::new(*ta, ba.frame)];
                let fb = &self.cache[&BoxKey::new(*tb, bb.frame)];
                fa.euclidean(fb)
            })
            .collect()
    }

    /// Number of distinct features currently cached.
    pub fn cached_features(&self) -> usize {
        self.cache.len()
    }

    /// Ensures every listed box has a cached feature, inferring all misses
    /// in **one** call (one GPU round). Returns nothing; read the features
    /// back with [`ReidSession::cached_feature`]. This is the bulk-ingest
    /// path used by the exact (baseline) scorer, where per-item cache
    /// lookups would dominate wall-clock.
    pub fn ensure_features(&mut self, boxes: &[(TrackId, &TrackBox)]) {
        let mut new_keys: Vec<(BoxKey, &TrackBox)> = Vec::new();
        for (t, b) in boxes {
            let key = BoxKey::new(*t, b.frame);
            if self.cache.contains_key(&key) || new_keys.iter().any(|(k, _)| *k == key) {
                continue;
            }
            new_keys.push((key, b));
        }
        let n_new = new_keys.len();
        if n_new == 0 {
            return;
        }
        let ms = self.cost.infer_cost_ms(n_new, self.device);
        self.clock.charge(ms);
        if self.device.is_gpu() {
            self.stats.gpu_rounds += 1;
        }
        self.stats.inferences += n_new as u64;
        for (key, b) in new_keys {
            let f = self.model.observe_track_box(b);
            self.cache.insert(key, f);
        }
    }

    /// Reads a cached feature (populated by a prior extraction).
    pub fn cached_feature(&self, track: TrackId, frame: FrameIdx) -> Option<&Feature> {
        self.cache.get(&BoxKey::new(track, frame))
    }

    /// Charges the cost of `n` pairwise distances computed outside the
    /// session (bulk scoring keeps the arithmetic in a dense loop and
    /// reports the work here so the simulated clock stays exact).
    pub fn charge_distance_batch(&mut self, n: usize) {
        let ms = self.cost.distance_cost_ms(n, self.device);
        self.clock.charge(ms);
        self.stats.distances += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appearance::AppearanceConfig;
    use tm_types::{BBox, GtObjectId};

    fn tb(frame: u64, actor: u64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(0.0, 0.0, 10.0, 10.0))
            .with_provenance(GtObjectId(actor))
    }

    fn model() -> AppearanceModel {
        AppearanceModel::new(AppearanceConfig::default())
    }

    #[test]
    fn features_are_cached_and_reused() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::calibrated(), Device::Cpu);
        let b = tb(3, 1);
        let f1 = s.feature(TrackId(1), &b);
        let cost_after_first = s.elapsed_ms();
        let f2 = s.feature(TrackId(1), &b);
        assert_eq!(f1, f2);
        assert_eq!(s.elapsed_ms(), cost_after_first, "cache hit must be free");
        assert_eq!(s.stats().inferences, 1);
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn pair_distance_charges_inference_and_distance() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut s = ReidSession::new(&m, cost, Device::Cpu);
        let d = s.pair_distance((TrackId(1), &tb(0, 1)), (TrackId(2), &tb(0, 2)));
        assert!(d > 0.0);
        let expected = 2.0 * cost.cpu_infer_ms + cost.cpu_dist_ms;
        assert!((s.elapsed_ms() - expected).abs() < 1e-9);
    }

    #[test]
    fn same_actor_distance_below_cross_actor() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        let same = s.pair_distance((TrackId(1), &tb(0, 5)), (TrackId(2), &tb(10, 5)));
        let cross = s.pair_distance((TrackId(1), &tb(0, 5)), (TrackId(3), &tb(10, 6)));
        assert!(same < cross, "same {same} cross {cross}");
    }

    #[test]
    fn batch_charges_one_gpu_round() {
        let m = model();
        let cost = CostModel::calibrated();
        let gpu = Device::Gpu { batch: 10 };
        let mut s = ReidSession::new(&m, cost, gpu);
        let pairs: Vec<_> = (0..10u64)
            .map(|i| ((TrackId(1), tb(i, 1)), (TrackId(2), tb(i, 2))))
            .collect();
        let borrowed: Vec<_> = pairs
            .iter()
            .map(|((t1, b1), (t2, b2))| ((*t1, b1), (*t2, b2)))
            .collect();
        let ds = s.pair_distances_batch(&borrowed);
        assert_eq!(ds.len(), 10);
        assert_eq!(s.stats().gpu_rounds, 1);
        assert_eq!(s.stats().inferences, 20);
        let expected = cost.gpu_call_overhead_ms
            + 20.0 * cost.gpu_infer_item_ms
            + 10.0 * cost.gpu_dist_item_ms;
        assert!((s.elapsed_ms() - expected).abs() < 1e-9);
    }

    #[test]
    fn batch_dedupes_shared_boxes() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::calibrated(), Device::Cpu);
        let shared = tb(0, 1);
        let other1 = tb(0, 2);
        let other2 = tb(1, 2);
        // The shared box appears in both pairs → only 3 inferences.
        let ds = s.pair_distances_batch(&[
            ((TrackId(1), &shared), (TrackId(2), &other1)),
            ((TrackId(1), &shared), (TrackId(2), &other2)),
        ]);
        assert_eq!(ds.len(), 2);
        assert_eq!(s.stats().inferences, 3);
    }

    #[test]
    fn batch_reuses_cross_call_cache() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut s = ReidSession::new(&m, cost, Device::Cpu);
        let a = tb(0, 1);
        let b = tb(0, 2);
        s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        let before = s.elapsed_ms();
        s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        // Second call: no inference, only one distance.
        assert!((s.elapsed_ms() - before - cost.cpu_dist_ms).abs() < 1e-9);
        assert_eq!(s.stats().inferences, 2);
    }

    #[test]
    fn distances_match_direct_model_evaluation() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        let a = tb(4, 7);
        let b = tb(9, 8);
        let via_session = s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        let direct = m.observe_track_box(&a).euclidean(&m.observe_track_box(&b));
        assert!((via_session - direct).abs() < 1e-12);
    }

    #[test]
    fn normalized_distance_is_in_unit_interval() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        for i in 0..20u64 {
            let d = s.normalized_pair_distance(
                (TrackId(1), &tb(i, i % 5)),
                (TrackId(2), &tb(i + 1, (i + 1) % 5)),
            );
            assert!((0.0..=1.0).contains(&d), "d̃={d}");
        }
    }

    #[test]
    fn scan_charges_follow_device() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut cpu = ReidSession::new(&m, cost, Device::Cpu);
        cpu.charge_thompson_scan(400);
        let mut gpu = ReidSession::new(&m, cost, Device::Gpu { batch: 10 });
        gpu.charge_thompson_scan(400);
        assert!(gpu.elapsed_ms() < cpu.elapsed_ms());
    }
}
