//! A ReID *session*: model + feature cache + cost accounting.
//!
//! All merging algorithms in `tm-core` obtain BBox-pair distances through a
//! [`ReidSession`]. The session implements the paper's feature-reuse
//! optimization (§IV-B: "if either of the BBoxes' feature vectors has been
//! extracted in previous iterations it can be *reused*") and charges the
//! simulated clock for every inference, distance and GPU round, so the
//! experiment harness can report Runtime/FPS deterministically.
//!
//! ## Cache backends and cost semantics
//!
//! A session caches features either **privately** (the default: one
//! `HashMap` owned by the session, exactly the serial semantics the
//! experiments are calibrated against) or through a **shared**
//! [`SharedFeatureCache`] (`ReidSession::with_shared_cache`), which is how
//! `tm_core::run_pipeline_parallel` gives concurrent per-window sessions
//! the serial pipeline's cross-window reuse. With a shared cache, each
//! distinct box is inferred — and its inference cost charged — exactly
//! once across *all* participating sessions (the computing session pays;
//! racers block on the slot and then reuse for free, counted as cache
//! hits). Summing the per-window clocks therefore reproduces the serial
//! pipeline's total inference cost on CPU exactly; on GPU, *which* window
//! pays a round's launch overhead (and hence the round count) can shift
//! with scheduling, bounding the total's wobble by one launch overhead per
//! window.

//!
//! ## Fallible extraction
//!
//! Features flow through an [`InferenceBackend`] (default: the appearance
//! model itself, which never fails). The `try_*` methods are the fallible
//! mirror of the historical API: each extraction is retried under the
//! session's [`RetryPolicy`] with capped exponential backoff, all failure
//! latency (backend-reported extra milliseconds plus backoff) is charged
//! to the simulated clock, and exhaustion returns
//! [`tm_types::TmError::ReidBackend`]. With a clean backend the `try_*`
//! methods charge the clock and bump the counters in **exactly** the same
//! order as the historical methods, so fault-free runs stay byte-identical.

use crate::appearance::AppearanceModel;
use crate::backend::{Attempt, InferenceBackend, RetryPolicy};
use crate::cache::SharedFeatureCache;
use crate::cost::{CostModel, Device, ReidStats, SimClock};
use crate::feature::Feature;
use crate::gate::{GateConfig, GateDecision, GatePlan, GatePolicy, GateStats, TrackPlan};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tm_obs::Obs;
use tm_types::{FrameIdx, Result, TmError, TrackBox, TrackId, TrackSet};

/// Identifies one box observation: a (track, frame) pair. Each track has at
/// most one box per frame, so this key is unique. Ordered so checkpoint
/// cache dumps are canonical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoxKey {
    /// The track the box belongs to.
    pub track: TrackId,
    /// The frame of the observation.
    pub frame: FrameIdx,
}

impl BoxKey {
    /// Creates a key.
    pub fn new(track: TrackId, frame: FrameIdx) -> Self {
        Self { track, frame }
    }
}

/// A BBox pair as the selection algorithms hand it to the session: two
/// `(track, box)` references.
pub type BoxPairRef<'a> = ((TrackId, &'a TrackBox), (TrackId, &'a TrackBox));

/// Where a propagated feature came from: the anchor (donor) box whose
/// feature stands in for the target box, how old it was, and whether the
/// target was additionally deferred to the prefetch lane. Lets cost
/// accounting prove that exactly the performed extractions were charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureProvenance {
    /// The anchor whose feature was propagated.
    pub donor: BoxKey,
    /// Frame distance from donor to target.
    pub age: u64,
    /// True when the target was also offered as low-priority batch fill.
    pub deferred: bool,
}

/// The gating state a gated session carries (policy `On`): the per-track
/// plan, decision counters with their flush high-water mark, and the
/// provenance of every propagated feature. Boxed so ungated sessions pay
/// one pointer.
#[derive(Debug, Clone)]
struct GateRuntime {
    config: GateConfig,
    plan: GatePlan,
    stats: GateStats,
    flushed: GateStats,
    provenance: HashMap<BoxKey, FeatureProvenance>,
}

/// One propagation the gate scheduled: copy the donor's cached feature to
/// the target key instead of extracting.
#[derive(Debug, Clone, Copy)]
struct Propagation {
    target: BoxKey,
    donor: TrackBox,
    age: u64,
    deferred: bool,
}

/// A gated round, produced by collection and consumed by inference.
#[derive(Debug, Default)]
struct GateBatch {
    /// Boxes to actually extract (gate said Extract, plus donors whose
    /// feature is not cached yet), deduplicated, in request order.
    misses: Vec<(BoxKey, TrackBox)>,
    /// Donor-to-target feature propagations (uncharged).
    propagations: Vec<Propagation>,
    /// Deferred boxes (real box + key), advertised to the backend's
    /// prefetch lane as low-priority fill behind the demand misses.
    deferred: Vec<(TrackBox, BoxKey)>,
}

/// Where a session's features live (see the module docs).
#[derive(Debug, Clone)]
enum CacheBackend {
    /// Session-owned map; `Arc` so cache hits are allocation-free.
    Private(HashMap<BoxKey, Arc<Feature>>),
    /// A cache shared with other sessions (cloning the session shares it).
    Shared(Arc<SharedFeatureCache>),
}

/// A stateful ReID session over one processing unit (typically one window).
#[derive(Debug, Clone)]
pub struct ReidSession<'m> {
    model: &'m AppearanceModel,
    backend: &'m dyn InferenceBackend,
    retry: RetryPolicy,
    epoch: u64,
    cost: CostModel,
    device: Device,
    clock: SimClock,
    cache: CacheBackend,
    stats: ReidStats,
    obs: Obs,
    /// Reused dedup set for the miss-collection paths, so steady-state
    /// (warm-cache) batches allocate nothing. Always left empty between
    /// calls; cloning a session clones an empty set.
    scratch_seen: HashSet<BoxKey>,
    /// Extraction gate; `None` (policy `Off`) keeps every path on the
    /// historical code, bit-identical to the pre-gating pipeline.
    gate: Option<Box<GateRuntime>>,
}

impl<'m> ReidSession<'m> {
    /// Opens a session with a private feature cache. The backend defaults
    /// to the model itself (infallible); see [`ReidSession::with_backend`].
    pub fn new(model: &'m AppearanceModel, cost: CostModel, device: Device) -> Self {
        Self {
            model,
            backend: model,
            retry: RetryPolicy::default(),
            epoch: 0,
            cost,
            device,
            clock: SimClock::new(),
            cache: CacheBackend::Private(HashMap::new()),
            stats: ReidStats::default(),
            obs: tm_obs::current(),
            scratch_seen: HashSet::new(),
            gate: None,
        }
    }

    /// Opens a session whose features are read through (and published to)
    /// a cache shared with other sessions. See the module docs for the
    /// cost-accounting semantics.
    pub fn with_shared_cache(
        model: &'m AppearanceModel,
        cost: CostModel,
        device: Device,
        cache: Arc<SharedFeatureCache>,
    ) -> Self {
        Self {
            model,
            backend: model,
            retry: RetryPolicy::default(),
            epoch: 0,
            cost,
            device,
            clock: SimClock::new(),
            cache: CacheBackend::Shared(cache),
            stats: ReidStats::default(),
            obs: tm_obs::current(),
            scratch_seen: HashSet::new(),
            gate: None,
        }
    }

    /// Routes the `try_*` extraction paths through `backend` instead of the
    /// model. The historical infallible methods keep evaluating the pure
    /// model directly, so installing a fault injector cannot perturb them.
    pub fn with_backend(mut self, backend: &'m dyn InferenceBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the retry policy (builder-style, like `with_backend`).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs an extraction gate (builder-style). [`GatePolicy::Off`]
    /// (the default) leaves every path on the historical code and is
    /// bit-identical to a session that never heard of gating.
    pub fn with_gate(mut self, policy: GatePolicy) -> Self {
        self.gate = match policy {
            GatePolicy::Off => None,
            GatePolicy::On(config) => Some(Box::new(GateRuntime {
                config,
                plan: GatePlan::default(),
                stats: GateStats::default(),
                flushed: GateStats::default(),
                provenance: HashMap::new(),
            })),
        };
        self
    }

    /// The gate policy in force.
    pub fn gate_policy(&self) -> GatePolicy {
        match &self.gate {
            None => GatePolicy::Off,
            Some(rt) => GatePolicy::On(rt.config),
        }
    }

    /// Extends the gate's extraction plan over boxes appended to `tracks`
    /// since the last call (no-op when the gate is off). Free: planning
    /// charges nothing and never touches features.
    pub fn gate_update_plan(&mut self, tracks: &TrackSet) {
        if let Some(rt) = &mut self.gate {
            rt.plan.update(tracks, &rt.config);
        }
    }

    /// Replaces the gate's plan with a pre-built one (no-op when the gate
    /// is off). The parallel pipeline plans the video once and hands each
    /// window worker a copy instead of re-planning per window.
    pub fn set_gate_plan(&mut self, plan: &GatePlan) {
        if let Some(rt) = &mut self.gate {
            rt.plan = plan.clone();
        }
    }

    /// Gate decision counters (all-zero when the gate is off).
    pub fn gate_stats(&self) -> GateStats {
        self.gate.as_ref().map(|rt| rt.stats).unwrap_or_default()
    }

    /// Provenance of a propagated feature: `Some` exactly when the box's
    /// cached feature was reused from a donor rather than extracted, so
    /// `inferences` + propagations accounts for every cached entry.
    pub fn feature_provenance(&self, track: TrackId, frame: FrameIdx) -> Option<FeatureProvenance> {
        self.gate
            .as_ref()?
            .provenance
            .get(&BoxKey::new(track, frame))
            .copied()
    }

    /// Flushes gate decision counters accumulated since the previous
    /// flush into the recorder (`reid.gate.{extract,reuse,defer}` and
    /// `reid.gate.saved_charges`), dropping zero deltas — the
    /// `AssignStats::flush` pattern, called once per window by the
    /// merging layer. Returns the flushed delta so callers can attach
    /// per-selector attribution. No-op (all-zero) when the gate is off.
    pub fn flush_gate_obs(&mut self) -> GateStats {
        let Some(rt) = &mut self.gate else {
            return GateStats::default();
        };
        let delta = rt.stats.delta(&rt.flushed);
        rt.flushed = rt.stats;
        if self.obs.enabled() {
            if delta.extracts > 0 {
                self.obs.counter("reid.gate.extract", delta.extracts);
            }
            if delta.reuses > 0 {
                self.obs.counter("reid.gate.reuse", delta.reuses);
            }
            if delta.defers > 0 {
                self.obs.counter("reid.gate.defer", delta.defers);
            }
            if delta.saved_charges() > 0 {
                self.obs
                    .counter("reid.gate.saved_charges", delta.saved_charges());
            }
        }
        delta
    }

    /// Overrides the observability handle (builder-style). Constructors
    /// default to `tm_obs::current()`, so explicit wiring is only needed
    /// when a session must report to a sink other than the ambient one.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The session's observability handle (selectors instrument their
    /// decisions through this, so they need no extra plumbing).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the processing epoch handed to the backend with every attempt
    /// (the merging layer uses the window cursor), so fault plans can
    /// schedule outages per window.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The current processing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Probes whether the backend is accepting work in the current epoch
    /// (circuit-breaker input; free, charges nothing).
    pub fn backend_available(&self) -> bool {
        self.backend.available(self.epoch)
    }

    /// The device this session runs on.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Simulated time consumed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.clock.elapsed_ms()
    }

    /// Work counters.
    pub fn stats(&self) -> ReidStats {
        self.stats
    }

    /// Charges the bookkeeping cost of one Thompson-sampling scan over
    /// `n_pairs` live track pairs (called by TMerge once per iteration).
    pub fn charge_thompson_scan(&mut self, n_pairs: usize) {
        let ms = self.cost.thompson_scan_cost_ms(n_pairs, self.device);
        self.clock.charge(ms);
        if self.obs.enabled() {
            self.obs.counter("selector.thompson_scans", 1);
            self.obs.record_sim_ms("selector.thompson_scan", ms);
        }
    }

    /// Charges the bookkeeping cost of one LCB scan over `n_pairs` pairs.
    pub fn charge_lcb_scan(&mut self, n_pairs: usize) {
        let ms = self.cost.lcb_scan_cost_ms(n_pairs, self.device);
        self.clock.charge(ms);
        if self.obs.enabled() {
            self.obs.counter("selector.lcb_scans", 1);
            self.obs.record_sim_ms("selector.lcb_scan", ms);
        }
    }

    /// Cache lookup without any charging.
    fn cache_get(&self, key: &BoxKey) -> Option<Arc<Feature>> {
        match &self.cache {
            CacheBackend::Private(map) => map.get(key).cloned(),
            CacheBackend::Shared(cache) => cache.get(key),
        }
    }

    /// Extracts (or reuses) the feature for one box, charging inference cost
    /// on a cache miss. Hits return a shared handle without copying the
    /// vector.
    pub fn feature(&mut self, track: TrackId, tb: &TrackBox) -> Arc<Feature> {
        let key = BoxKey::new(track, tb.frame);
        if let Some(f) = self.cache_get(&key) {
            self.stats.cache_hits += 1;
            self.obs.counter("reid.cache_hits", 1);
            return f;
        }
        if self.gate.is_some() {
            let batch = self.gate_collect(std::iter::once((track, *tb)));
            self.gate_infer(batch);
            return self.cached_or_recompute(key, tb);
        }
        match &mut self.cache {
            CacheBackend::Private(map) => {
                let f = Arc::new(self.model.observe_track_box(tb));
                map.insert(key, Arc::clone(&f));
                self.charge_inference_round(1);
                f
            }
            CacheBackend::Shared(cache) => {
                let model = self.model;
                let (f, computed) = cache.get_or_compute(key, || model.observe_track_box(tb));
                if computed {
                    self.charge_inference_round(1);
                } else {
                    // Another session computed it while we raced: free reuse.
                    self.stats.cache_hits += 1;
                    self.obs.counter("reid.cache_hits", 1);
                }
                f
            }
        }
    }

    /// Charges one inference call of `n_new` items and counts it.
    fn charge_inference_round(&mut self, n_new: usize) {
        if n_new == 0 {
            return;
        }
        let ms = self.cost.infer_cost_ms(n_new, self.device);
        self.clock.charge(ms);
        if self.device.is_gpu() {
            self.stats.gpu_rounds += 1;
        }
        self.stats.inferences += n_new as u64;
        if self.obs.enabled() {
            self.obs.counter("reid.inference_rounds", 1);
            self.obs.counter("reid.inferences", n_new as u64);
            self.obs.record_sim_ms("reid.infer", ms);
        }
    }

    /// Makes sure every key in `misses` (pre-deduplicated cache misses) is
    /// cached, charging **one** inference call for however many features
    /// this session ends up computing itself.
    fn infer_misses(&mut self, misses: Vec<(BoxKey, &TrackBox)>) {
        if misses.is_empty() {
            return;
        }
        match &mut self.cache {
            CacheBackend::Private(map) => {
                let n = misses.len();
                for (key, b) in misses {
                    map.insert(key, Arc::new(self.model.observe_track_box(b)));
                }
                self.charge_inference_round(n);
            }
            CacheBackend::Shared(cache) => {
                let cache = Arc::clone(cache);
                let mut n_mine = 0usize;
                let mut n_reused = 0u64;
                for (key, b) in misses {
                    let model = self.model;
                    let (_, computed) = cache.get_or_compute(key, || model.observe_track_box(b));
                    if computed {
                        n_mine += 1;
                    } else {
                        n_reused += 1;
                    }
                }
                self.stats.cache_hits += n_reused;
                self.obs.counter("reid.cache_hits", n_reused);
                self.charge_inference_round(n_mine);
            }
        }
    }

    // ------------------------------------------------------------------
    // Gated rounds. Collection consults the plan per uncached box:
    // Extract → miss; Reuse/Defer → propagate the donor (promoting an
    // uncached donor to a miss so the cache never holds a value nobody
    // computed). Inference then charges exactly the misses — one round —
    // and applies the propagations uncharged, recording provenance.
    // ------------------------------------------------------------------

    /// Collects one gated round over `(track, box)` items (deduplicated
    /// through the reusable scratch set, cache hits skipped).
    fn gate_collect<I>(&mut self, items: I) -> GateBatch
    where
        I: Iterator<Item = (TrackId, TrackBox)>,
    {
        let mut rt = self.gate.take().expect("gate_collect on ungated session");
        let mut seen = std::mem::take(&mut self.scratch_seen);
        seen.clear();
        let mut batch = GateBatch::default();
        for (t, b) in items {
            let key = BoxKey::new(t, b.frame);
            if !seen.insert(key) || self.cache_get(&key).is_some() {
                continue;
            }
            match rt.plan.decide(t, b.frame, &rt.config) {
                GateDecision::Extract => {
                    rt.stats.extracts += 1;
                    batch.misses.push((key, b));
                }
                d @ (GateDecision::Reuse { donor, age } | GateDecision::Defer { donor, age }) => {
                    let deferred = matches!(d, GateDecision::Defer { .. });
                    let dkey = BoxKey::new(t, donor.frame);
                    // A donor nobody extracted yet is promoted to a miss:
                    // the propagation below then copies a real computed
                    // feature, and the charge covers it.
                    if seen.insert(dkey) && self.cache_get(&dkey).is_none() {
                        rt.stats.extracts += 1;
                        batch.misses.push((dkey, donor));
                    }
                    if deferred {
                        rt.stats.defers += 1;
                        batch.deferred.push((b, key));
                    } else {
                        rt.stats.reuses += 1;
                    }
                    batch.propagations.push(Propagation {
                        target: key,
                        donor,
                        age,
                        deferred,
                    });
                }
            }
        }
        seen.clear();
        self.scratch_seen = seen;
        self.gate = Some(rt);
        batch
    }

    /// Infallible half of a gated round: extract the misses (one charged
    /// inference call), then apply the propagations.
    fn gate_infer(&mut self, batch: GateBatch) {
        if !batch.misses.is_empty() {
            match &mut self.cache {
                CacheBackend::Private(map) => {
                    let n = batch.misses.len();
                    for (key, b) in &batch.misses {
                        map.insert(*key, Arc::new(self.model.observe_track_box(b)));
                    }
                    self.charge_inference_round(n);
                }
                CacheBackend::Shared(cache) => {
                    let cache = Arc::clone(cache);
                    let mut n_mine = 0usize;
                    let mut n_reused = 0u64;
                    for (key, b) in &batch.misses {
                        let model = self.model;
                        let (_, computed) =
                            cache.get_or_compute(*key, || model.observe_track_box(b));
                        if computed {
                            n_mine += 1;
                        } else {
                            n_reused += 1;
                        }
                    }
                    self.stats.cache_hits += n_reused;
                    self.obs.counter("reid.cache_hits", n_reused);
                    self.charge_inference_round(n_mine);
                }
            }
        }
        self.apply_propagations(&batch.propagations);
    }

    /// Fallible half of a gated round. The prefetch hint list leads with
    /// the demand misses and appends the deferred boxes as low-priority
    /// batch fill — batching backends may use the headroom to precompute
    /// them, but a deferred box is never cached here unless the backend
    /// actually computed it (Clean-only caching is the scheduler's own
    /// invariant). An exhausted retry aborts the round before any
    /// propagation, exactly like `try_infer_misses`.
    fn try_gate_infer(&mut self, batch: GateBatch) -> Result<()> {
        if batch.misses.is_empty() && batch.propagations.is_empty() {
            return Ok(());
        }
        let mut hints: Vec<(&TrackBox, Attempt)> =
            Vec::with_capacity(batch.misses.len() + batch.deferred.len());
        for (key, b) in &batch.misses {
            hints.push((
                b,
                Attempt {
                    epoch: self.epoch,
                    attempt: 0,
                    key: *key,
                },
            ));
        }
        for (b, key) in &batch.deferred {
            hints.push((
                b,
                Attempt {
                    epoch: self.epoch,
                    attempt: 0,
                    key: *key,
                },
            ));
        }
        if !hints.is_empty() {
            self.backend.prefetch(&hints);
        }
        drop(hints);
        if !batch.misses.is_empty() {
            let shared = match &self.cache {
                CacheBackend::Shared(cache) => Some(Arc::clone(cache)),
                CacheBackend::Private(_) => None,
            };
            match shared {
                None => {
                    let n = batch.misses.len();
                    let mut computed: Vec<(BoxKey, Arc<Feature>)> = Vec::with_capacity(n);
                    for (key, b) in &batch.misses {
                        let f = self.try_observe_retry(*key, b)?;
                        computed.push((*key, Arc::new(f)));
                    }
                    if let CacheBackend::Private(map) = &mut self.cache {
                        for (key, f) in computed {
                            map.insert(key, f);
                        }
                    }
                    self.charge_inference_round(n);
                }
                Some(cache) => {
                    let mut n_mine = 0usize;
                    let mut n_reused = 0u64;
                    for (key, b) in &batch.misses {
                        let f = self.try_observe_retry(*key, b)?;
                        let (_, computed) = cache.get_or_compute(*key, move || f);
                        if computed {
                            n_mine += 1;
                        } else {
                            n_reused += 1;
                        }
                    }
                    self.stats.cache_hits += n_reused;
                    self.obs.counter("reid.cache_hits", n_reused);
                    self.charge_inference_round(n_mine);
                }
            }
        }
        self.apply_propagations(&batch.propagations);
        Ok(())
    }

    /// Copies each donor's cached feature to its target key and records
    /// provenance. Uncharged: propagation moves an `Arc`, not the model.
    fn apply_propagations(&mut self, props: &[Propagation]) {
        for p in props {
            let dkey = BoxKey::new(p.target.track, p.donor.frame);
            let f = match self.cache_get(&dkey) {
                Some(f) => f,
                // Unreachable (collection promotes uncached donors to
                // misses), but the hot path stays panic-free: fall back
                // to the pure model, uncharged, like phase 3.
                None => Arc::new(self.model.observe_track_box(&p.donor)),
            };
            match &mut self.cache {
                CacheBackend::Private(map) => {
                    map.insert(p.target, f);
                }
                CacheBackend::Shared(cache) => {
                    let cache = Arc::clone(cache);
                    cache.get_or_compute(p.target, || (*f).clone());
                }
            }
            if let Some(rt) = &mut self.gate {
                rt.provenance.insert(
                    p.target,
                    FeatureProvenance {
                        donor: dkey,
                        age: p.age,
                        deferred: p.deferred,
                    },
                );
            }
        }
    }

    /// The distance of one BBox pair, extracting whatever features are not
    /// cached in a single inference call (on GPU: one round).
    pub fn pair_distance(
        &mut self,
        (ta, ba): (TrackId, &TrackBox),
        (tb, bb): (TrackId, &TrackBox),
    ) -> f64 {
        self.pair_distances_batch(&[((ta, ba), (tb, bb))])[0]
    }

    /// Normalized variant of [`ReidSession::pair_distance`] (`d̃ = d/2`).
    pub fn normalized_pair_distance(
        &mut self,
        a: (TrackId, &TrackBox),
        b: (TrackId, &TrackBox),
    ) -> f64 {
        self.pair_distance(a, b) / crate::feature::NORMALIZER
    }

    /// Evaluates a batch of BBox pairs in one round.
    ///
    /// All features missing from the cache are inferred in a single call
    /// (one GPU round with one launch overhead, or a CPU loop), then the
    /// pairwise distances are charged and returned in input order. This is
    /// the primitive behind every `-B` algorithm (§IV-F).
    pub fn pair_distances_batch(&mut self, pairs: &[BoxPairRef<'_>]) -> Vec<f64> {
        if self.gate.is_some() {
            let batch = self.gate_collect(
                pairs
                    .iter()
                    .flat_map(|&((ta, ba), (tb, bb))| [(ta, *ba), (tb, *bb)]),
            );
            self.gate_infer(batch);
            return self.charged_pair_distances(pairs);
        }
        // Phase 1: collect the cache misses, deduplicated by a set so large
        // rounds stay linear in the number of misses.
        let misses = self.collect_pair_misses(pairs);
        // Phase 2: one inference call for all misses.
        self.infer_misses(misses);
        // Phase 3: distances (every feature now cached).
        self.charged_pair_distances(pairs)
    }

    /// Phase 1 of a batch: the cache misses among the pairs' boxes,
    /// deduplicated by a set so large rounds stay linear in the misses.
    fn collect_pair_misses<'a>(&mut self, pairs: &[BoxPairRef<'a>]) -> Vec<(BoxKey, &'a TrackBox)> {
        let mut seen = std::mem::take(&mut self.scratch_seen);
        seen.clear();
        let mut misses: Vec<(BoxKey, &'a TrackBox)> = Vec::new();
        for ((ta, ba), (tb, bb)) in pairs {
            for (t, b) in [(*ta, *ba), (*tb, *bb)] {
                let key = BoxKey::new(t, b.frame);
                if !seen.insert(key) || self.cache_get(&key).is_some() {
                    continue;
                }
                misses.push((key, b));
            }
        }
        seen.clear();
        self.scratch_seen = seen;
        misses
    }

    /// Phase 3 of a batch: charges the distance cost and evaluates every
    /// pair from the (now warm) cache.
    fn charged_pair_distances(&mut self, pairs: &[BoxPairRef<'_>]) -> Vec<f64> {
        let ms = self.cost.distance_cost_ms(pairs.len(), self.device);
        self.clock.charge(ms);
        self.stats.distances += pairs.len() as u64;
        if self.obs.enabled() {
            self.obs.counter("reid.distances", pairs.len() as u64);
            // The per-pair loop below counts a hit for each side.
            self.obs.counter("reid.cache_hits", 2 * pairs.len() as u64);
            self.obs.record_sim_ms("reid.distance", ms);
        }
        let mut out = Vec::with_capacity(pairs.len());
        for ((ta, ba), (tb, bb)) in pairs {
            self.stats.cache_hits += 2;
            let fa = self.cached_or_recompute(BoxKey::new(*ta, ba.frame), ba);
            let fb = self.cached_or_recompute(BoxKey::new(*tb, bb.frame), bb);
            out.push(fa.euclidean(&fb));
        }
        out
    }

    /// Phase-3 cache read. Phase 2 guarantees every key is cached, but the
    /// hot path must stay panic-free, so an (unreachable) miss falls back
    /// to the pure model, uncharged, instead of unwrapping.
    fn cached_or_recompute(&mut self, key: BoxKey, tb: &TrackBox) -> Arc<Feature> {
        if let Some(f) = self.cache_get(&key) {
            return f;
        }
        let f = Arc::new(self.model.observe_track_box(tb));
        match &mut self.cache {
            CacheBackend::Private(map) => {
                map.insert(key, Arc::clone(&f));
                f
            }
            CacheBackend::Shared(cache) => {
                let (g, _) = cache.get_or_compute(key, || (*f).clone());
                g
            }
        }
    }

    /// Number of distinct features currently cached (shared backend: the
    /// whole shared cache, not just this session's contributions).
    pub fn cached_features(&self) -> usize {
        match &self.cache {
            CacheBackend::Private(map) => map.len(),
            CacheBackend::Shared(cache) => cache.len(),
        }
    }

    /// Evicts private-cache features for boxes strictly before `frame`,
    /// returning how many were dropped. The serve layer's retention
    /// compactor calls this with the horizon start: the model is pure, so
    /// re-deriving an evicted feature later yields the identical vector —
    /// eviction changes memory and clock charges, never decisions. A
    /// shared cache is fleet-owned with its own tiered eviction, so this
    /// is a no-op there.
    pub fn evict_cached_before(&mut self, frame: FrameIdx) -> usize {
        match &mut self.cache {
            CacheBackend::Private(map) => {
                let before = map.len();
                map.retain(|key, _| key.frame.get() >= frame.get());
                before - map.len()
            }
            CacheBackend::Shared(_) => 0,
        }
    }

    /// Ensures every listed box has a cached feature, inferring all misses
    /// in **one** call (one GPU round). Returns nothing; read the features
    /// back with [`ReidSession::cached_feature`]. This is the bulk-ingest
    /// path used by the exact (baseline) scorer, where per-item cache
    /// lookups would dominate wall-clock.
    pub fn ensure_features(&mut self, boxes: &[(TrackId, &TrackBox)]) {
        if self.gate.is_some() {
            let batch = self.gate_collect(boxes.iter().map(|&(t, b)| (t, *b)));
            self.gate_infer(batch);
            return;
        }
        let misses = self.collect_box_misses(boxes);
        self.infer_misses(misses);
    }

    /// The cache misses among `boxes`, deduplicated through the reusable
    /// scratch set. Shared by both ensure paths.
    fn collect_box_misses<'a>(
        &mut self,
        boxes: &[(TrackId, &'a TrackBox)],
    ) -> Vec<(BoxKey, &'a TrackBox)> {
        let mut seen = std::mem::take(&mut self.scratch_seen);
        seen.clear();
        let mut misses: Vec<(BoxKey, &'a TrackBox)> = Vec::new();
        for (t, b) in boxes {
            let key = BoxKey::new(*t, b.frame);
            if !seen.insert(key) || self.cache_get(&key).is_some() {
                continue;
            }
            misses.push((key, b));
        }
        seen.clear();
        self.scratch_seen = seen;
        misses
    }

    /// Reads a cached feature (populated by a prior extraction).
    pub fn cached_feature(&self, track: TrackId, frame: FrameIdx) -> Option<Arc<Feature>> {
        self.cache_get(&BoxKey::new(track, frame))
    }

    /// Charges the cost of `n` pairwise distances computed outside the
    /// session (bulk scoring keeps the arithmetic in a dense loop and
    /// reports the work here so the simulated clock stays exact).
    pub fn charge_distance_batch(&mut self, n: usize) {
        let ms = self.cost.distance_cost_ms(n, self.device);
        self.clock.charge(ms);
        self.stats.distances += n as u64;
        if self.obs.enabled() {
            self.obs.counter("reid.distances", n as u64);
            self.obs.record_sim_ms("reid.distance", ms);
        }
    }

    // ------------------------------------------------------------------
    // Fallible extraction (see the module docs). With a clean backend the
    // methods below charge and count in exactly the order of their
    // infallible counterparts above.
    // ------------------------------------------------------------------

    /// One extraction through the backend with retry/backoff. Charges every
    /// attempt's backend-reported extra latency and, after each failure
    /// short of the last, the policy's backoff — all in simulated time.
    fn try_observe_retry(&mut self, key: BoxKey, tb: &TrackBox) -> Result<Feature> {
        let max = self.retry.max_attempts.max(1);
        let mut last_reason = "";
        for attempt in 0..max {
            let at = Attempt {
                epoch: self.epoch,
                attempt,
                key,
            };
            let reply = self.backend.try_observe(tb, &at);
            self.clock.charge(reply.extra_ms);
            last_reason = match reply.outcome {
                Ok(f) if f.is_finite() => return Ok(f),
                Ok(_) => "non-finite feature components",
                Err(fault) => fault.reason(),
            };
            self.stats.backend_faults += 1;
            self.obs.counter("reid.backend_faults", 1);
            if attempt + 1 < max {
                self.stats.retries += 1;
                let backoff = self.retry.backoff_ms(attempt);
                self.clock.charge(backoff);
                if self.obs.enabled() {
                    self.obs.counter("reid.retries", 1);
                    self.obs.record_sim_ms("reid.backoff", backoff);
                }
            }
        }
        self.obs.event(
            "reid_retries_exhausted",
            &[("attempts", tm_obs::Value::U64(max as u64))],
        );
        Err(TmError::ReidBackend {
            attempts: max,
            reason: last_reason.to_string(),
        })
    }

    /// Fallible mirror of [`ReidSession::feature`].
    pub fn try_feature(&mut self, track: TrackId, tb: &TrackBox) -> Result<Arc<Feature>> {
        let key = BoxKey::new(track, tb.frame);
        if let Some(f) = self.cache_get(&key) {
            self.stats.cache_hits += 1;
            self.obs.counter("reid.cache_hits", 1);
            return Ok(f);
        }
        if self.gate.is_some() {
            let batch = self.gate_collect(std::iter::once((track, *tb)));
            self.try_gate_infer(batch)?;
            return Ok(self.cached_or_recompute(key, tb));
        }
        let f = self.try_observe_retry(key, tb)?;
        match &mut self.cache {
            CacheBackend::Private(map) => {
                let f = Arc::new(f);
                map.insert(key, Arc::clone(&f));
                self.charge_inference_round(1);
                Ok(f)
            }
            CacheBackend::Shared(cache) => {
                let cache = Arc::clone(cache);
                let (g, computed) = cache.get_or_compute(key, move || f);
                if computed {
                    self.charge_inference_round(1);
                } else {
                    self.stats.cache_hits += 1;
                    self.obs.counter("reid.cache_hits", 1);
                }
                Ok(g)
            }
        }
    }

    /// Fallible mirror of `infer_misses`: extracts every miss through the
    /// backend (with retries), then charges **one** inference call for the
    /// features this session computed itself. An exhausted retry ladder
    /// aborts the round; attempt/backoff charges already on the clock stay
    /// (failed work still costs time), but no inference round is charged.
    fn try_infer_misses(&mut self, misses: Vec<(BoxKey, &TrackBox)>) -> Result<()> {
        if misses.is_empty() {
            return Ok(());
        }
        // Announce the round's full miss list so batching backends (the
        // fleet's cross-stream scheduler) can form batches. Advisory only:
        // the default is a no-op and implementations must not affect
        // replies, so single-stream runs are untouched.
        let hints: Vec<(&TrackBox, Attempt)> = misses
            .iter()
            .map(|&(key, b)| {
                (
                    b,
                    Attempt {
                        epoch: self.epoch,
                        attempt: 0,
                        key,
                    },
                )
            })
            .collect();
        self.backend.prefetch(&hints);
        drop(hints);
        let shared = match &self.cache {
            CacheBackend::Shared(cache) => Some(Arc::clone(cache)),
            CacheBackend::Private(_) => None,
        };
        match shared {
            None => {
                let n = misses.len();
                let mut computed: Vec<(BoxKey, Arc<Feature>)> = Vec::with_capacity(n);
                for (key, b) in misses {
                    let f = self.try_observe_retry(key, b)?;
                    computed.push((key, Arc::new(f)));
                }
                if let CacheBackend::Private(map) = &mut self.cache {
                    for (key, f) in computed {
                        map.insert(key, f);
                    }
                }
                self.charge_inference_round(n);
            }
            Some(cache) => {
                let mut n_mine = 0usize;
                let mut n_reused = 0u64;
                for (key, b) in misses {
                    let f = self.try_observe_retry(key, b)?;
                    let (_, computed) = cache.get_or_compute(key, move || f);
                    if computed {
                        n_mine += 1;
                    } else {
                        // Another session computed it while we raced.
                        n_reused += 1;
                    }
                }
                self.stats.cache_hits += n_reused;
                self.obs.counter("reid.cache_hits", n_reused);
                self.charge_inference_round(n_mine);
            }
        }
        Ok(())
    }

    /// Fallible mirror of [`ReidSession::pair_distance`].
    pub fn try_pair_distance(
        &mut self,
        a: (TrackId, &TrackBox),
        b: (TrackId, &TrackBox),
    ) -> Result<f64> {
        Ok(self.try_pair_distances_batch(&[(a, b)])?[0])
    }

    /// Fallible mirror of [`ReidSession::normalized_pair_distance`].
    pub fn try_normalized_pair_distance(
        &mut self,
        a: (TrackId, &TrackBox),
        b: (TrackId, &TrackBox),
    ) -> Result<f64> {
        Ok(self.try_pair_distance(a, b)? / crate::feature::NORMALIZER)
    }

    /// Fallible mirror of [`ReidSession::pair_distances_batch`].
    pub fn try_pair_distances_batch(&mut self, pairs: &[BoxPairRef<'_>]) -> Result<Vec<f64>> {
        if self.gate.is_some() {
            let batch = self.gate_collect(
                pairs
                    .iter()
                    .flat_map(|&((ta, ba), (tb, bb))| [(ta, *ba), (tb, *bb)]),
            );
            self.try_gate_infer(batch)?;
            return Ok(self.charged_pair_distances(pairs));
        }
        let misses = self.collect_pair_misses(pairs);
        self.try_infer_misses(misses)?;
        Ok(self.charged_pair_distances(pairs))
    }

    /// Fallible mirror of [`ReidSession::ensure_features`].
    pub fn try_ensure_features(&mut self, boxes: &[(TrackId, &TrackBox)]) -> Result<()> {
        if self.gate.is_some() {
            let batch = self.gate_collect(boxes.iter().map(|&(t, b)| (t, *b)));
            return self.try_gate_infer(batch);
        }
        let misses = self.collect_box_misses(boxes);
        self.try_infer_misses(misses)
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Captures the session's mutable state (clock, counters and — for a
    /// private cache — every cached feature, in canonical key order).
    /// Shared caches belong to the parallel coordinator, not to any one
    /// session, so they are not captured here.
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut cache: Vec<(BoxKey, Vec<f64>)> = match &self.cache {
            CacheBackend::Private(map) => map
                .iter()
                .map(|(k, f)| (*k, f.as_slice().to_vec()))
                .collect(),
            CacheBackend::Shared(_) => Vec::new(),
        };
        cache.sort_by_key(|(k, _)| *k);
        let gate = self.gate.as_ref().map(|rt| {
            let mut provenance: Vec<(BoxKey, FeatureProvenance)> =
                rt.provenance.iter().map(|(k, v)| (*k, *v)).collect();
            provenance.sort_by_key(|(k, _)| *k);
            GateSnapshot {
                config: rt.config,
                stats: rt.stats,
                flushed: rt.flushed,
                provenance,
                plans: rt.plan.export(),
            }
        });
        SessionSnapshot {
            elapsed_ms: self.clock.elapsed_ms(),
            stats: self.stats,
            cache,
            gate,
        }
    }

    /// Restores a snapshot taken by [`ReidSession::snapshot`]: the clock
    /// and counters are set (not re-charged) and a private cache is
    /// rebuilt verbatim, so the resumed session is indistinguishable from
    /// the one that was checkpointed.
    pub fn restore_snapshot(&mut self, snap: &SessionSnapshot) {
        self.clock.set_elapsed_ms(snap.elapsed_ms);
        self.stats = snap.stats;
        if let CacheBackend::Private(map) = &mut self.cache {
            map.clear();
            for (k, comps) in &snap.cache {
                map.insert(*k, Arc::new(Feature::from_raw(comps.clone())));
            }
        }
        self.gate = snap.gate.as_ref().map(|g| {
            Box::new(GateRuntime {
                config: g.config,
                plan: GatePlan::import(g.plans.clone()),
                stats: g.stats,
                flushed: g.flushed,
                provenance: g.provenance.iter().copied().collect(),
            })
        });
    }
}

/// A session's mutable state as captured by [`ReidSession::snapshot`].
/// Features are dumped as raw components (restored verbatim via
/// [`Feature::from_raw`]) and the cache is sorted by key, so equal sessions
/// produce equal snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Simulated time consumed when the snapshot was taken.
    pub elapsed_ms: f64,
    /// Work counters at snapshot time.
    pub stats: ReidStats,
    /// Private-cache contents in ascending key order.
    pub cache: Vec<(BoxKey, Vec<f64>)>,
    /// Gate runtime state; `None` for ungated sessions, so pre-gating
    /// snapshots compare (and serialize) exactly as before.
    pub gate: Option<GateSnapshot>,
}

/// The gate runtime as captured by [`ReidSession::snapshot`]: config,
/// counters with their flush mark, provenance and per-track plans, all in
/// canonical order so equal gated sessions produce equal snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct GateSnapshot {
    /// The configuration the gate was running.
    pub config: GateConfig,
    /// Decision counters at snapshot time.
    pub stats: GateStats,
    /// Counter values at the last `flush_gate_obs` (so a resumed session
    /// flushes only post-restore deltas).
    pub flushed: GateStats,
    /// Propagated-feature provenance in ascending target-key order.
    pub provenance: Vec<(BoxKey, FeatureProvenance)>,
    /// Per-track plans in ascending `TrackId` order.
    pub plans: Vec<(TrackId, TrackPlan)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appearance::AppearanceConfig;
    use tm_types::{BBox, GtObjectId};

    fn tb(frame: u64, actor: u64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(0.0, 0.0, 10.0, 10.0))
            .with_provenance(GtObjectId(actor))
    }

    fn model() -> AppearanceModel {
        AppearanceModel::new(AppearanceConfig::default())
    }

    #[test]
    fn features_are_cached_and_reused() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::calibrated(), Device::Cpu);
        let b = tb(3, 1);
        let f1 = s.feature(TrackId(1), &b);
        let cost_after_first = s.elapsed_ms();
        let f2 = s.feature(TrackId(1), &b);
        assert_eq!(f1, f2);
        assert!(Arc::ptr_eq(&f1, &f2), "cache hit must reuse the allocation");
        assert_eq!(s.elapsed_ms(), cost_after_first, "cache hit must be free");
        assert_eq!(s.stats().inferences, 1);
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn observed_session_mirrors_stats_into_the_recorder() {
        let m = model();
        let rec = Arc::new(tm_obs::Recorder::new());
        let mut s = ReidSession::new(&m, CostModel::calibrated(), Device::Cpu)
            .with_obs(Obs::new(rec.clone()));
        let b = tb(3, 1);
        s.feature(TrackId(1), &b);
        s.feature(TrackId(1), &b);
        let b2 = tb(4, 2);
        s.pair_distance((TrackId(1), &b), (TrackId(2), &b2));
        assert_eq!(rec.counter_value("reid.inferences"), s.stats().inferences);
        assert_eq!(rec.counter_value("reid.cache_hits"), s.stats().cache_hits);
        assert_eq!(rec.counter_value("reid.distances"), s.stats().distances);
        // The sim histogram totals are the quantized clock charges (each
        // charge is quantized independently, so allow 1 tick per event).
        let infer = rec.sim_hist("reid.infer").unwrap();
        let dist = rec.sim_hist("reid.distance").unwrap();
        let events = (infer.count + dist.count) as i128;
        let diff = infer.sum_ticks + dist.sum_ticks - tm_obs::ticks(s.elapsed_ms());
        assert!(diff.abs() <= events, "tick totals drifted: {diff}");
    }

    #[test]
    fn pair_distance_charges_inference_and_distance() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut s = ReidSession::new(&m, cost, Device::Cpu);
        let d = s.pair_distance((TrackId(1), &tb(0, 1)), (TrackId(2), &tb(0, 2)));
        assert!(d > 0.0);
        let expected = 2.0 * cost.cpu_infer_ms + cost.cpu_dist_ms;
        assert!((s.elapsed_ms() - expected).abs() < 1e-9);
    }

    #[test]
    fn same_actor_distance_below_cross_actor() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        let same = s.pair_distance((TrackId(1), &tb(0, 5)), (TrackId(2), &tb(10, 5)));
        let cross = s.pair_distance((TrackId(1), &tb(0, 5)), (TrackId(3), &tb(10, 6)));
        assert!(same < cross, "same {same} cross {cross}");
    }

    #[test]
    fn batch_charges_one_gpu_round() {
        let m = model();
        let cost = CostModel::calibrated();
        let gpu = Device::Gpu { batch: 10 };
        let mut s = ReidSession::new(&m, cost, gpu);
        let pairs: Vec<_> = (0..10u64)
            .map(|i| ((TrackId(1), tb(i, 1)), (TrackId(2), tb(i, 2))))
            .collect();
        let borrowed: Vec<_> = pairs
            .iter()
            .map(|((t1, b1), (t2, b2))| ((*t1, b1), (*t2, b2)))
            .collect();
        let ds = s.pair_distances_batch(&borrowed);
        assert_eq!(ds.len(), 10);
        assert_eq!(s.stats().gpu_rounds, 1);
        assert_eq!(s.stats().inferences, 20);
        let expected = cost.gpu_call_overhead_ms
            + 20.0 * cost.gpu_infer_item_ms
            + 10.0 * cost.gpu_dist_item_ms;
        assert!((s.elapsed_ms() - expected).abs() < 1e-9);
    }

    #[test]
    fn batch_dedupes_shared_boxes() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::calibrated(), Device::Cpu);
        let shared = tb(0, 1);
        let other1 = tb(0, 2);
        let other2 = tb(1, 2);
        // The shared box appears in both pairs → only 3 inferences.
        let ds = s.pair_distances_batch(&[
            ((TrackId(1), &shared), (TrackId(2), &other1)),
            ((TrackId(1), &shared), (TrackId(2), &other2)),
        ]);
        assert_eq!(ds.len(), 2);
        assert_eq!(s.stats().inferences, 3);
    }

    #[test]
    fn batch_reuses_cross_call_cache() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut s = ReidSession::new(&m, cost, Device::Cpu);
        let a = tb(0, 1);
        let b = tb(0, 2);
        s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        let before = s.elapsed_ms();
        s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        // Second call: no inference, only one distance.
        assert!((s.elapsed_ms() - before - cost.cpu_dist_ms).abs() < 1e-9);
        assert_eq!(s.stats().inferences, 2);
    }

    #[test]
    fn distances_match_direct_model_evaluation() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        let a = tb(4, 7);
        let b = tb(9, 8);
        let via_session = s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        let direct = m.observe_track_box(&a).euclidean(&m.observe_track_box(&b));
        assert!((via_session - direct).abs() < 1e-12);
    }

    #[test]
    fn normalized_distance_is_in_unit_interval() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        for i in 0..20u64 {
            let d = s.normalized_pair_distance(
                (TrackId(1), &tb(i, i % 5)),
                (TrackId(2), &tb(i + 1, (i + 1) % 5)),
            );
            assert!((0.0..=1.0).contains(&d), "d̃={d}");
        }
    }

    #[test]
    fn scan_charges_follow_device() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut cpu = ReidSession::new(&m, cost, Device::Cpu);
        cpu.charge_thompson_scan(400);
        let mut gpu = ReidSession::new(&m, cost, Device::Gpu { batch: 10 });
        gpu.charge_thompson_scan(400);
        assert!(gpu.elapsed_ms() < cpu.elapsed_ms());
    }

    #[test]
    fn shared_cache_charges_each_feature_once_across_sessions() {
        let m = model();
        let cost = CostModel::calibrated();
        let cache = Arc::new(SharedFeatureCache::new());
        let mut s1 = ReidSession::with_shared_cache(&m, cost, Device::Cpu, Arc::clone(&cache));
        let mut s2 = ReidSession::with_shared_cache(&m, cost, Device::Cpu, Arc::clone(&cache));
        let b = tb(3, 1);
        let f1 = s1.feature(TrackId(1), &b);
        // Session 2 reuses session 1's work for free.
        let f2 = s2.feature(TrackId(1), &b);
        assert_eq!(f1, f2);
        assert_eq!(s1.stats().inferences, 1);
        assert_eq!(s2.stats().inferences, 0);
        assert_eq!(s2.stats().cache_hits, 1);
        assert_eq!(s2.elapsed_ms(), 0.0);
        assert_eq!(cache.len(), 1);
        assert_eq!(s1.cached_features(), 1);
    }

    /// A backend that fails the first `fail_first` attempts of every
    /// extraction, then defers to the model.
    #[derive(Debug)]
    struct Flaky<'a> {
        model: &'a AppearanceModel,
        fail_first: u32,
        corrupt: bool,
    }

    impl crate::backend::InferenceBackend for Flaky<'_> {
        fn try_observe(
            &self,
            tb: &TrackBox,
            at: &crate::backend::Attempt,
        ) -> crate::backend::BackendReply {
            if at.attempt < self.fail_first {
                if self.corrupt {
                    crate::backend::BackendReply {
                        outcome: Ok(Feature::from_raw(vec![f64::NAN, 0.0])),
                        extra_ms: 1.5,
                    }
                } else {
                    crate::backend::BackendReply::fault(
                        crate::backend::BackendFault::Transient("injected timeout"),
                        1.5,
                    )
                }
            } else {
                crate::backend::BackendReply::ok(self.model.observe_track_box(tb))
            }
        }
    }

    #[test]
    fn try_batch_matches_infallible_batch_on_clean_backend() {
        let m = model();
        let cost = CostModel::calibrated();
        let pairs: Vec<_> = (0..6u64)
            .map(|i| ((TrackId(1), tb(i, 1)), (TrackId(2), tb(i, 2))))
            .collect();
        let borrowed: Vec<_> = pairs
            .iter()
            .map(|((t1, b1), (t2, b2))| ((*t1, b1), (*t2, b2)))
            .collect();
        let mut plain = ReidSession::new(&m, cost, Device::Cpu);
        let mut faultless = ReidSession::new(&m, cost, Device::Cpu).with_backend(&m);
        let d1 = plain.pair_distances_batch(&borrowed);
        let d2 = faultless
            .try_pair_distances_batch(&borrowed)
            .expect("clean backend cannot fail");
        assert_eq!(d1, d2);
        assert_eq!(
            plain.elapsed_ms().to_bits(),
            faultless.elapsed_ms().to_bits()
        );
        assert_eq!(plain.stats(), faultless.stats());
    }

    #[test]
    fn transient_faults_are_retried_and_charged() {
        let m = model();
        let flaky = Flaky {
            model: &m,
            fail_first: 2,
            corrupt: false,
        };
        let cost = CostModel::calibrated();
        let mut s = ReidSession::new(&m, cost, Device::Cpu).with_backend(&flaky);
        let policy = s.retry_policy();
        let a = tb(0, 1);
        let b = tb(0, 2);
        let d = s
            .try_pair_distance((TrackId(1), &a), (TrackId(2), &b))
            .expect("succeeds on the third attempt");
        let mut clean = ReidSession::new(&m, cost, Device::Cpu);
        let d_clean = clean.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        assert_eq!(d, d_clean, "retried features must equal clean features");
        assert_eq!(s.stats().retries, 4, "2 retries per box");
        assert_eq!(s.stats().backend_faults, 4);
        // Per box: 2 failed attempts × 1.5 ms extra + backoff(0) + backoff(1).
        let per_box = 2.0 * 1.5 + policy.backoff_ms(0) + policy.backoff_ms(1);
        let expected = clean.elapsed_ms() + 2.0 * per_box;
        assert!((s.elapsed_ms() - expected).abs() < 1e-9);
    }

    #[test]
    fn corrupted_features_are_treated_as_faults() {
        let m = model();
        let flaky = Flaky {
            model: &m,
            fail_first: 1,
            corrupt: true,
        };
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu).with_backend(&flaky);
        let a = tb(2, 1);
        let f = s
            .try_feature(TrackId(1), &a)
            .expect("retry fixes corruption");
        assert!(f.is_finite());
        assert_eq!(f.as_slice(), m.observe_track_box(&a).as_slice());
        assert_eq!(s.stats().backend_faults, 1);
        assert_eq!(s.stats().retries, 1);
    }

    #[test]
    fn exhausted_retries_return_backend_error() {
        let m = model();
        let flaky = Flaky {
            model: &m,
            fail_first: u32::MAX,
            corrupt: false,
        };
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu).with_backend(&flaky);
        let a = tb(0, 1);
        let err = s
            .try_feature(TrackId(1), &a)
            .expect_err("backend never recovers");
        assert!(err.is_backend(), "got {err:?}");
        assert!(err.to_string().contains("injected timeout"));
        assert_eq!(s.stats().inferences, 0, "no inference round on failure");
        assert_eq!(
            s.stats().backend_faults as u32,
            s.retry_policy().max_attempts
        );
    }

    #[test]
    fn snapshot_restore_is_byte_exact() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut s = ReidSession::new(&m, cost, Device::Cpu);
        s.pair_distance((TrackId(1), &tb(0, 1)), (TrackId(2), &tb(0, 2)));
        s.feature(TrackId(1), &tb(0, 1));
        let snap = s.snapshot();

        let mut fresh = ReidSession::new(&m, cost, Device::Cpu);
        fresh.restore_snapshot(&snap);
        assert_eq!(fresh.elapsed_ms().to_bits(), s.elapsed_ms().to_bits());
        assert_eq!(fresh.stats(), s.stats());
        assert_eq!(fresh.cached_features(), s.cached_features());
        // Continuing from the restore reproduces the original trajectory.
        let d1 = s.pair_distance((TrackId(1), &tb(5, 1)), (TrackId(2), &tb(5, 2)));
        let d2 = fresh.pair_distance((TrackId(1), &tb(5, 1)), (TrackId(2), &tb(5, 2)));
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(fresh.elapsed_ms().to_bits(), s.elapsed_ms().to_bits());
        assert_eq!(fresh.snapshot(), s.snapshot());
    }

    fn gate_tracks(frames_per_track: &[(u64, &[u64])]) -> tm_types::TrackSet {
        let mut set = tm_types::TrackSet::new();
        for &(id, frames) in frames_per_track {
            // Spatially separated per track so the crowding signal stays
            // quiet and reuse decisions actually occur.
            let boxes = frames
                .iter()
                .map(|&f| {
                    TrackBox::new(FrameIdx(f), BBox::new(100.0 * id as f64, 0.0, 10.0, 10.0))
                        .with_provenance(GtObjectId(id))
                })
                .collect();
            set.insert(tm_types::Track::with_boxes(
                TrackId(id),
                tm_types::ClassId(1),
                boxes,
            ));
        }
        set
    }

    fn track_pairs(set: &tm_types::TrackSet) -> Vec<((TrackId, TrackBox), (TrackId, TrackBox))> {
        let tracks: Vec<_> = set.iter().collect();
        let mut pairs = Vec::new();
        for a in &tracks {
            for b in &tracks {
                if a.id >= b.id {
                    continue;
                }
                for (ba, bb) in a.boxes.iter().zip(b.boxes.iter()) {
                    pairs.push(((a.id, *ba), (b.id, *bb)));
                }
            }
        }
        pairs
    }

    #[test]
    fn gated_always_extract_is_bit_identical_to_ungated() {
        let m = model();
        let cost = CostModel::calibrated();
        let set = gate_tracks(&[(1, &[0, 1, 2, 3, 9, 10]), (2, &[0, 1, 2, 3, 9, 10])]);
        let pairs = track_pairs(&set);
        let borrowed: Vec<_> = pairs
            .iter()
            .map(|((t1, b1), (t2, b2))| ((*t1, b1), (*t2, b2)))
            .collect();

        let mut plain = ReidSession::new(&m, cost, Device::Cpu);
        let mut gated = ReidSession::new(&m, cost, Device::Cpu)
            .with_gate(crate::gate::GatePolicy::On(GateConfig::always_extract()));
        gated.gate_update_plan(&set);

        let d1 = plain.pair_distances_batch(&borrowed);
        let d2 = gated.pair_distances_batch(&borrowed);
        assert_eq!(d1, d2);
        assert_eq!(plain.elapsed_ms().to_bits(), gated.elapsed_ms().to_bits());
        assert_eq!(plain.stats(), gated.stats());
        assert_eq!(gated.gate_stats().saved_charges(), 0);

        // The try_* mirror too.
        let mut plain_t = ReidSession::new(&m, cost, Device::Cpu);
        let mut gated_t = ReidSession::new(&m, cost, Device::Cpu)
            .with_gate(crate::gate::GatePolicy::On(GateConfig::always_extract()));
        gated_t.gate_update_plan(&set);
        let d3 = plain_t.try_pair_distances_batch(&borrowed).unwrap();
        let d4 = gated_t.try_pair_distances_batch(&borrowed).unwrap();
        assert_eq!(d3, d4);
        assert_eq!(
            plain_t.elapsed_ms().to_bits(),
            gated_t.elapsed_ms().to_bits()
        );
    }

    #[test]
    fn gated_session_saves_charges_and_records_provenance() {
        let m = model();
        let cost = CostModel::calibrated();
        let frames: Vec<u64> = (0..24).collect();
        let set = gate_tracks(&[(1, &frames), (2, &frames)]);
        let pairs = track_pairs(&set);
        let borrowed: Vec<_> = pairs
            .iter()
            .map(|((t1, b1), (t2, b2))| ((*t1, b1), (*t2, b2)))
            .collect();

        let mut plain = ReidSession::new(&m, cost, Device::Cpu);
        let mut gated = ReidSession::new(&m, cost, Device::Cpu)
            .with_gate(crate::gate::GatePolicy::On(GateConfig::default()));
        gated.gate_update_plan(&set);

        plain.pair_distances_batch(&borrowed);
        gated.pair_distances_batch(&borrowed);
        assert!(
            gated.stats().inferences < plain.stats().inferences,
            "gate must cut inferences: gated {} vs plain {}",
            gated.stats().inferences,
            plain.stats().inferences
        );
        let gs = gated.gate_stats();
        assert!(gs.saved_charges() > 0);
        assert_eq!(
            gs.extracts,
            gated.stats().inferences,
            "charges must equal performed extractions"
        );
        // Every cached feature is either an extraction or has provenance.
        let mut propagated = 0usize;
        for t in set.iter() {
            for b in &t.boxes {
                assert!(gated.cached_feature(t.id, b.frame).is_some());
                if let Some(p) = gated.feature_provenance(t.id, b.frame) {
                    propagated += 1;
                    assert!(p.age > 0);
                    assert!(gated.cached_feature(p.donor.track, p.donor.frame).is_some());
                }
            }
        }
        assert_eq!(
            propagated as u64,
            gs.saved_charges(),
            "each saved charge is one propagated feature"
        );
        assert_eq!(gated.stats().distances, plain.stats().distances);
    }

    #[test]
    fn gated_snapshot_roundtrips() {
        let m = model();
        let cost = CostModel::calibrated();
        let frames: Vec<u64> = (0..16).collect();
        let set = gate_tracks(&[(1, &frames)]);
        let policy = crate::gate::GatePolicy::On(GateConfig::default());
        let mut s = ReidSession::new(&m, cost, Device::Cpu).with_gate(policy);
        s.gate_update_plan(&set);
        let track = set.iter().next().unwrap();
        let boxes: Vec<_> = track.boxes.iter().map(|b| (track.id, b)).collect();
        s.ensure_features(&boxes);
        s.flush_gate_obs();
        let snap = s.snapshot();
        assert!(snap.gate.is_some());

        let mut fresh = ReidSession::new(&m, cost, Device::Cpu);
        fresh.restore_snapshot(&snap);
        assert_eq!(fresh.gate_policy(), s.gate_policy());
        assert_eq!(fresh.gate_stats(), s.gate_stats());
        assert_eq!(fresh.snapshot(), snap);
        // The restored plan keeps deciding like the original.
        let extra = tb(30, 1).with_provenance(GtObjectId(1));
        let f1 = s.feature(TrackId(1), &extra);
        let f2 = fresh.feature(TrackId(1), &extra);
        assert_eq!(f1, f2);
        assert_eq!(s.elapsed_ms().to_bits(), fresh.elapsed_ms().to_bits());
    }

    #[test]
    fn epoch_is_forwarded_to_the_backend() {
        #[derive(Debug)]
        struct DownAtOdd<'a>(&'a AppearanceModel);
        impl crate::backend::InferenceBackend for DownAtOdd<'_> {
            fn try_observe(
                &self,
                tb: &TrackBox,
                at: &crate::backend::Attempt,
            ) -> crate::backend::BackendReply {
                if at.epoch % 2 == 1 {
                    crate::backend::BackendReply::fault(
                        crate::backend::BackendFault::Unavailable,
                        0.0,
                    )
                } else {
                    crate::backend::BackendReply::ok(self.0.observe_track_box(tb))
                }
            }
            fn available(&self, epoch: u64) -> bool {
                epoch.is_multiple_of(2)
            }
        }
        let m = model();
        let backend = DownAtOdd(&m);
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu).with_backend(&backend);
        assert!(s.backend_available());
        assert!(s.try_feature(TrackId(1), &tb(0, 1)).is_ok());
        s.set_epoch(1);
        assert_eq!(s.epoch(), 1);
        assert!(!s.backend_available());
        let err = s.try_feature(TrackId(1), &tb(9, 1)).expect_err("down");
        assert!(err.is_backend());
        s.set_epoch(2);
        assert!(s.try_feature(TrackId(1), &tb(9, 1)).is_ok());
    }

    #[test]
    fn shared_cache_matches_private_distances() {
        let m = model();
        let cache = Arc::new(SharedFeatureCache::new());
        let mut shared = ReidSession::with_shared_cache(&m, CostModel::zero(), Device::Cpu, cache);
        let mut private = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        let a = tb(0, 1);
        let b = tb(7, 2);
        let d_shared = shared.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        let d_private = private.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        assert_eq!(d_shared, d_private);
    }
}
