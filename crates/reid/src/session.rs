//! A ReID *session*: model + feature cache + cost accounting.
//!
//! All merging algorithms in `tm-core` obtain BBox-pair distances through a
//! [`ReidSession`]. The session implements the paper's feature-reuse
//! optimization (§IV-B: "if either of the BBoxes' feature vectors has been
//! extracted in previous iterations it can be *reused*") and charges the
//! simulated clock for every inference, distance and GPU round, so the
//! experiment harness can report Runtime/FPS deterministically.
//!
//! ## Cache backends and cost semantics
//!
//! A session caches features either **privately** (the default: one
//! `HashMap` owned by the session, exactly the serial semantics the
//! experiments are calibrated against) or through a **shared**
//! [`SharedFeatureCache`] (`ReidSession::with_shared_cache`), which is how
//! `tm_core::run_pipeline_parallel` gives concurrent per-window sessions
//! the serial pipeline's cross-window reuse. With a shared cache, each
//! distinct box is inferred — and its inference cost charged — exactly
//! once across *all* participating sessions (the computing session pays;
//! racers block on the slot and then reuse for free, counted as cache
//! hits). Summing the per-window clocks therefore reproduces the serial
//! pipeline's total inference cost on CPU exactly; on GPU, *which* window
//! pays a round's launch overhead (and hence the round count) can shift
//! with scheduling, bounding the total's wobble by one launch overhead per
//! window.

use crate::appearance::AppearanceModel;
use crate::cache::SharedFeatureCache;
use crate::cost::{CostModel, Device, ReidStats, SimClock};
use crate::feature::Feature;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tm_types::{FrameIdx, TrackBox, TrackId};

/// Identifies one box observation: a (track, frame) pair. Each track has at
/// most one box per frame, so this key is unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxKey {
    /// The track the box belongs to.
    pub track: TrackId,
    /// The frame of the observation.
    pub frame: FrameIdx,
}

impl BoxKey {
    /// Creates a key.
    pub fn new(track: TrackId, frame: FrameIdx) -> Self {
        Self { track, frame }
    }
}

/// A BBox pair as the selection algorithms hand it to the session: two
/// `(track, box)` references.
pub type BoxPairRef<'a> = ((TrackId, &'a TrackBox), (TrackId, &'a TrackBox));

/// Where a session's features live (see the module docs).
#[derive(Debug, Clone)]
enum CacheBackend {
    /// Session-owned map; `Arc` so cache hits are allocation-free.
    Private(HashMap<BoxKey, Arc<Feature>>),
    /// A cache shared with other sessions (cloning the session shares it).
    Shared(Arc<SharedFeatureCache>),
}

/// A stateful ReID session over one processing unit (typically one window).
#[derive(Debug, Clone)]
pub struct ReidSession<'m> {
    model: &'m AppearanceModel,
    cost: CostModel,
    device: Device,
    clock: SimClock,
    cache: CacheBackend,
    stats: ReidStats,
}

impl<'m> ReidSession<'m> {
    /// Opens a session with a private feature cache.
    pub fn new(model: &'m AppearanceModel, cost: CostModel, device: Device) -> Self {
        Self {
            model,
            cost,
            device,
            clock: SimClock::new(),
            cache: CacheBackend::Private(HashMap::new()),
            stats: ReidStats::default(),
        }
    }

    /// Opens a session whose features are read through (and published to)
    /// a cache shared with other sessions. See the module docs for the
    /// cost-accounting semantics.
    pub fn with_shared_cache(
        model: &'m AppearanceModel,
        cost: CostModel,
        device: Device,
        cache: Arc<SharedFeatureCache>,
    ) -> Self {
        Self {
            model,
            cost,
            device,
            clock: SimClock::new(),
            cache: CacheBackend::Shared(cache),
            stats: ReidStats::default(),
        }
    }

    /// The device this session runs on.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Simulated time consumed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.clock.elapsed_ms()
    }

    /// Work counters.
    pub fn stats(&self) -> ReidStats {
        self.stats
    }

    /// Charges the bookkeeping cost of one Thompson-sampling scan over
    /// `n_pairs` live track pairs (called by TMerge once per iteration).
    pub fn charge_thompson_scan(&mut self, n_pairs: usize) {
        let ms = self.cost.thompson_scan_cost_ms(n_pairs, self.device);
        self.clock.charge(ms);
    }

    /// Charges the bookkeeping cost of one LCB scan over `n_pairs` pairs.
    pub fn charge_lcb_scan(&mut self, n_pairs: usize) {
        let ms = self.cost.lcb_scan_cost_ms(n_pairs, self.device);
        self.clock.charge(ms);
    }

    /// Cache lookup without any charging.
    fn cache_get(&self, key: &BoxKey) -> Option<Arc<Feature>> {
        match &self.cache {
            CacheBackend::Private(map) => map.get(key).cloned(),
            CacheBackend::Shared(cache) => cache.get(key),
        }
    }

    /// Extracts (or reuses) the feature for one box, charging inference cost
    /// on a cache miss. Hits return a shared handle without copying the
    /// vector.
    pub fn feature(&mut self, track: TrackId, tb: &TrackBox) -> Arc<Feature> {
        let key = BoxKey::new(track, tb.frame);
        if let Some(f) = self.cache_get(&key) {
            self.stats.cache_hits += 1;
            return f;
        }
        match &mut self.cache {
            CacheBackend::Private(map) => {
                let f = Arc::new(self.model.observe_track_box(tb));
                map.insert(key, Arc::clone(&f));
                self.charge_inference_round(1);
                f
            }
            CacheBackend::Shared(cache) => {
                let model = self.model;
                let (f, computed) = cache.get_or_compute(key, || model.observe_track_box(tb));
                if computed {
                    self.charge_inference_round(1);
                } else {
                    // Another session computed it while we raced: free reuse.
                    self.stats.cache_hits += 1;
                }
                f
            }
        }
    }

    /// Charges one inference call of `n_new` items and counts it.
    fn charge_inference_round(&mut self, n_new: usize) {
        if n_new == 0 {
            return;
        }
        let ms = self.cost.infer_cost_ms(n_new, self.device);
        self.clock.charge(ms);
        if self.device.is_gpu() {
            self.stats.gpu_rounds += 1;
        }
        self.stats.inferences += n_new as u64;
    }

    /// Makes sure every key in `misses` (pre-deduplicated cache misses) is
    /// cached, charging **one** inference call for however many features
    /// this session ends up computing itself.
    fn infer_misses(&mut self, misses: Vec<(BoxKey, &TrackBox)>) {
        if misses.is_empty() {
            return;
        }
        match &mut self.cache {
            CacheBackend::Private(map) => {
                let n = misses.len();
                for (key, b) in misses {
                    map.insert(key, Arc::new(self.model.observe_track_box(b)));
                }
                self.charge_inference_round(n);
            }
            CacheBackend::Shared(cache) => {
                let cache = Arc::clone(cache);
                let mut n_mine = 0usize;
                let mut n_reused = 0u64;
                for (key, b) in misses {
                    let model = self.model;
                    let (_, computed) = cache.get_or_compute(key, || model.observe_track_box(b));
                    if computed {
                        n_mine += 1;
                    } else {
                        n_reused += 1;
                    }
                }
                self.stats.cache_hits += n_reused;
                self.charge_inference_round(n_mine);
            }
        }
    }

    /// The distance of one BBox pair, extracting whatever features are not
    /// cached in a single inference call (on GPU: one round).
    pub fn pair_distance(
        &mut self,
        (ta, ba): (TrackId, &TrackBox),
        (tb, bb): (TrackId, &TrackBox),
    ) -> f64 {
        self.pair_distances_batch(&[((ta, ba), (tb, bb))])[0]
    }

    /// Normalized variant of [`ReidSession::pair_distance`] (`d̃ = d/2`).
    pub fn normalized_pair_distance(
        &mut self,
        a: (TrackId, &TrackBox),
        b: (TrackId, &TrackBox),
    ) -> f64 {
        self.pair_distance(a, b) / crate::feature::NORMALIZER
    }

    /// Evaluates a batch of BBox pairs in one round.
    ///
    /// All features missing from the cache are inferred in a single call
    /// (one GPU round with one launch overhead, or a CPU loop), then the
    /// pairwise distances are charged and returned in input order. This is
    /// the primitive behind every `-B` algorithm (§IV-F).
    pub fn pair_distances_batch(&mut self, pairs: &[BoxPairRef<'_>]) -> Vec<f64> {
        // Phase 1: collect the cache misses, deduplicated by a set so large
        // rounds stay linear in the number of misses.
        let mut seen: HashSet<BoxKey> = HashSet::new();
        let mut misses: Vec<(BoxKey, &TrackBox)> = Vec::new();
        for ((ta, ba), (tb, bb)) in pairs {
            for (t, b) in [(*ta, *ba), (*tb, *bb)] {
                let key = BoxKey::new(t, b.frame);
                if !seen.insert(key) || self.cache_get(&key).is_some() {
                    continue;
                }
                misses.push((key, b));
            }
        }
        // Phase 2: one inference call for all misses.
        self.infer_misses(misses);
        // Phase 3: distances (every feature now cached).
        let ms = self.cost.distance_cost_ms(pairs.len(), self.device);
        self.clock.charge(ms);
        self.stats.distances += pairs.len() as u64;
        pairs
            .iter()
            .map(|((ta, ba), (tb, bb))| {
                self.stats.cache_hits += 2;
                let fa = self
                    .cache_get(&BoxKey::new(*ta, ba.frame))
                    .expect("inferred in phase 2");
                let fb = self
                    .cache_get(&BoxKey::new(*tb, bb.frame))
                    .expect("inferred in phase 2");
                fa.euclidean(&fb)
            })
            .collect()
    }

    /// Number of distinct features currently cached (shared backend: the
    /// whole shared cache, not just this session's contributions).
    pub fn cached_features(&self) -> usize {
        match &self.cache {
            CacheBackend::Private(map) => map.len(),
            CacheBackend::Shared(cache) => cache.len(),
        }
    }

    /// Ensures every listed box has a cached feature, inferring all misses
    /// in **one** call (one GPU round). Returns nothing; read the features
    /// back with [`ReidSession::cached_feature`]. This is the bulk-ingest
    /// path used by the exact (baseline) scorer, where per-item cache
    /// lookups would dominate wall-clock.
    pub fn ensure_features(&mut self, boxes: &[(TrackId, &TrackBox)]) {
        let mut seen: HashSet<BoxKey> = HashSet::new();
        let mut misses: Vec<(BoxKey, &TrackBox)> = Vec::new();
        for (t, b) in boxes {
            let key = BoxKey::new(*t, b.frame);
            if !seen.insert(key) || self.cache_get(&key).is_some() {
                continue;
            }
            misses.push((key, b));
        }
        self.infer_misses(misses);
    }

    /// Reads a cached feature (populated by a prior extraction).
    pub fn cached_feature(&self, track: TrackId, frame: FrameIdx) -> Option<Arc<Feature>> {
        self.cache_get(&BoxKey::new(track, frame))
    }

    /// Charges the cost of `n` pairwise distances computed outside the
    /// session (bulk scoring keeps the arithmetic in a dense loop and
    /// reports the work here so the simulated clock stays exact).
    pub fn charge_distance_batch(&mut self, n: usize) {
        let ms = self.cost.distance_cost_ms(n, self.device);
        self.clock.charge(ms);
        self.stats.distances += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appearance::AppearanceConfig;
    use tm_types::{BBox, GtObjectId};

    fn tb(frame: u64, actor: u64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(0.0, 0.0, 10.0, 10.0))
            .with_provenance(GtObjectId(actor))
    }

    fn model() -> AppearanceModel {
        AppearanceModel::new(AppearanceConfig::default())
    }

    #[test]
    fn features_are_cached_and_reused() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::calibrated(), Device::Cpu);
        let b = tb(3, 1);
        let f1 = s.feature(TrackId(1), &b);
        let cost_after_first = s.elapsed_ms();
        let f2 = s.feature(TrackId(1), &b);
        assert_eq!(f1, f2);
        assert!(Arc::ptr_eq(&f1, &f2), "cache hit must reuse the allocation");
        assert_eq!(s.elapsed_ms(), cost_after_first, "cache hit must be free");
        assert_eq!(s.stats().inferences, 1);
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn pair_distance_charges_inference_and_distance() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut s = ReidSession::new(&m, cost, Device::Cpu);
        let d = s.pair_distance((TrackId(1), &tb(0, 1)), (TrackId(2), &tb(0, 2)));
        assert!(d > 0.0);
        let expected = 2.0 * cost.cpu_infer_ms + cost.cpu_dist_ms;
        assert!((s.elapsed_ms() - expected).abs() < 1e-9);
    }

    #[test]
    fn same_actor_distance_below_cross_actor() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        let same = s.pair_distance((TrackId(1), &tb(0, 5)), (TrackId(2), &tb(10, 5)));
        let cross = s.pair_distance((TrackId(1), &tb(0, 5)), (TrackId(3), &tb(10, 6)));
        assert!(same < cross, "same {same} cross {cross}");
    }

    #[test]
    fn batch_charges_one_gpu_round() {
        let m = model();
        let cost = CostModel::calibrated();
        let gpu = Device::Gpu { batch: 10 };
        let mut s = ReidSession::new(&m, cost, gpu);
        let pairs: Vec<_> = (0..10u64)
            .map(|i| ((TrackId(1), tb(i, 1)), (TrackId(2), tb(i, 2))))
            .collect();
        let borrowed: Vec<_> = pairs
            .iter()
            .map(|((t1, b1), (t2, b2))| ((*t1, b1), (*t2, b2)))
            .collect();
        let ds = s.pair_distances_batch(&borrowed);
        assert_eq!(ds.len(), 10);
        assert_eq!(s.stats().gpu_rounds, 1);
        assert_eq!(s.stats().inferences, 20);
        let expected = cost.gpu_call_overhead_ms
            + 20.0 * cost.gpu_infer_item_ms
            + 10.0 * cost.gpu_dist_item_ms;
        assert!((s.elapsed_ms() - expected).abs() < 1e-9);
    }

    #[test]
    fn batch_dedupes_shared_boxes() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::calibrated(), Device::Cpu);
        let shared = tb(0, 1);
        let other1 = tb(0, 2);
        let other2 = tb(1, 2);
        // The shared box appears in both pairs → only 3 inferences.
        let ds = s.pair_distances_batch(&[
            ((TrackId(1), &shared), (TrackId(2), &other1)),
            ((TrackId(1), &shared), (TrackId(2), &other2)),
        ]);
        assert_eq!(ds.len(), 2);
        assert_eq!(s.stats().inferences, 3);
    }

    #[test]
    fn batch_reuses_cross_call_cache() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut s = ReidSession::new(&m, cost, Device::Cpu);
        let a = tb(0, 1);
        let b = tb(0, 2);
        s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        let before = s.elapsed_ms();
        s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        // Second call: no inference, only one distance.
        assert!((s.elapsed_ms() - before - cost.cpu_dist_ms).abs() < 1e-9);
        assert_eq!(s.stats().inferences, 2);
    }

    #[test]
    fn distances_match_direct_model_evaluation() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        let a = tb(4, 7);
        let b = tb(9, 8);
        let via_session = s.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        let direct = m.observe_track_box(&a).euclidean(&m.observe_track_box(&b));
        assert!((via_session - direct).abs() < 1e-12);
    }

    #[test]
    fn normalized_distance_is_in_unit_interval() {
        let m = model();
        let mut s = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        for i in 0..20u64 {
            let d = s.normalized_pair_distance(
                (TrackId(1), &tb(i, i % 5)),
                (TrackId(2), &tb(i + 1, (i + 1) % 5)),
            );
            assert!((0.0..=1.0).contains(&d), "d̃={d}");
        }
    }

    #[test]
    fn scan_charges_follow_device() {
        let m = model();
        let cost = CostModel::calibrated();
        let mut cpu = ReidSession::new(&m, cost, Device::Cpu);
        cpu.charge_thompson_scan(400);
        let mut gpu = ReidSession::new(&m, cost, Device::Gpu { batch: 10 });
        gpu.charge_thompson_scan(400);
        assert!(gpu.elapsed_ms() < cpu.elapsed_ms());
    }

    #[test]
    fn shared_cache_charges_each_feature_once_across_sessions() {
        let m = model();
        let cost = CostModel::calibrated();
        let cache = Arc::new(SharedFeatureCache::new());
        let mut s1 = ReidSession::with_shared_cache(&m, cost, Device::Cpu, Arc::clone(&cache));
        let mut s2 = ReidSession::with_shared_cache(&m, cost, Device::Cpu, Arc::clone(&cache));
        let b = tb(3, 1);
        let f1 = s1.feature(TrackId(1), &b);
        // Session 2 reuses session 1's work for free.
        let f2 = s2.feature(TrackId(1), &b);
        assert_eq!(f1, f2);
        assert_eq!(s1.stats().inferences, 1);
        assert_eq!(s2.stats().inferences, 0);
        assert_eq!(s2.stats().cache_hits, 1);
        assert_eq!(s2.elapsed_ms(), 0.0);
        assert_eq!(cache.len(), 1);
        assert_eq!(s1.cached_features(), 1);
    }

    #[test]
    fn shared_cache_matches_private_distances() {
        let m = model();
        let cache = Arc::new(SharedFeatureCache::new());
        let mut shared = ReidSession::with_shared_cache(&m, CostModel::zero(), Device::Cpu, cache);
        let mut private = ReidSession::new(&m, CostModel::zero(), Device::Cpu);
        let a = tb(0, 1);
        let b = tb(7, 2);
        let d_shared = shared.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        let d_private = private.pair_distance((TrackId(1), &a), (TrackId(2), &b));
        assert_eq!(d_shared, d_private);
    }
}
