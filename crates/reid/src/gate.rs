//! Novelty-gated ReID charge planning.
//!
//! Every box that reaches [`crate::ReidSession`] today is featurized
//! unconditionally. This module plans, per [`TrackBox`], whether the
//! session should
//!
//! * **extract** a fresh feature (the box is an *anchor*: the track is
//!   young, just reappeared after an occlusion gap, is overdue for a
//!   periodic refresh, or sits in a crowded frame where appearance is
//!   ambiguous),
//! * **reuse** the nearest preceding anchor's feature for the same
//!   track, with an age-based confidence decay, or
//! * **defer** the box — still propagating the donor feature for
//!   scoring, but additionally advertising the real box to the
//!   [`crate::BatchScheduler`] prefetch lane as low-priority batch fill
//!   (never cached as Clean unless the backend actually computes it).
//!
//! The plan is a pure function of tracker state (box frames, gaps, and
//! co-frame crowding from [`tm_types::FrameIndex`]) — it never looks at
//! feature values, so planning is free of inference charges and
//! deterministic for a given [`TrackSet`]. Plans are *prefix-stable*:
//! [`GatePlan::update`] only plans boxes appended since the previous
//! call, so streaming (incremental) and batch (resume) construction
//! agree as long as updates see the same track prefixes — which the
//! checkpoint layer guarantees by serializing the plan verbatim.
//!
//! [`GatePolicy::Off`] short-circuits everything: an ungated session
//! never constructs a plan and is bit-identical to the pre-gating
//! pipeline (clock, charges, cache, snapshots).

use serde::{Deserialize, Serialize};
use tm_types::{FrameIdx, Track, TrackBox, TrackId, TrackSet};

/// Tuning knobs for the gate. All signals are pure functions of tracker
/// state; see the module docs for the decision rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateConfig {
    /// Boxes within this many frames of a track's first observation
    /// always extract (fresh tracks have no trustworthy donor).
    pub fresh_frames: u64,
    /// A gap from the previous box strictly larger than this marks a
    /// post-occlusion reacquisition: extract.
    pub occlusion_gap: u64,
    /// Extract at least once every this many frames per track (anchor
    /// cadence); `1` makes every box an anchor.
    pub refresh_interval: u64,
    /// Never reuse a donor older than this many frames; extract instead.
    pub max_reuse_age: u64,
    /// Propagated confidence decays as `0.5^(age / decay_half_life)`.
    pub decay_half_life: f64,
    /// Reuse whose decayed confidence falls below this becomes a
    /// deferral (donor still propagated, real box offered as batch
    /// headroom).
    pub defer_below: f64,
    /// A co-frame box of another track with IoU at or above this makes
    /// the frame ambiguous for the track: extract.
    pub ambiguity_iou: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            fresh_frames: 2,
            occlusion_gap: 4,
            refresh_interval: 8,
            max_reuse_age: 24,
            decay_half_life: 8.0,
            defer_below: 0.7,
            ambiguity_iou: 0.3,
        }
    }
}

impl GateConfig {
    /// A configuration whose plan marks every box an anchor. Gated
    /// sessions under this config extract exactly what ungated sessions
    /// extract — used by the `Off`-equivalence differential suite.
    pub fn always_extract() -> Self {
        Self {
            refresh_interval: 1,
            ..Self::default()
        }
    }

    /// Decayed confidence of a donor `age` frames old.
    pub fn confidence(&self, age: u64) -> f64 {
        0.5f64.powf(age as f64 / self.decay_half_life.max(f64::MIN_POSITIVE))
    }
}

/// Whether a session gates extraction, and how.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum GatePolicy {
    /// No gating: bit-identical to the pre-gating pipeline.
    #[default]
    Off,
    /// Gate extraction under the given configuration.
    On(GateConfig),
}

impl GatePolicy {
    /// The configuration when gating is on.
    pub fn config(&self) -> Option<&GateConfig> {
        match self {
            GatePolicy::Off => None,
            GatePolicy::On(cfg) => Some(cfg),
        }
    }

    /// True when gating is on.
    pub fn is_on(&self) -> bool {
        matches!(self, GatePolicy::On(_))
    }
}

/// The gate's verdict for one box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateDecision {
    /// Extract a fresh feature for this box.
    Extract,
    /// Propagate `donor`'s feature (an anchor of the same track,
    /// `age` frames older).
    Reuse {
        /// The anchor box whose feature stands in for this box.
        donor: TrackBox,
        /// Frame distance from donor to this box.
        age: u64,
    },
    /// Propagate `donor`'s feature, and offer the real box to the
    /// prefetch lane as low-priority batch fill.
    Defer {
        /// The anchor box whose feature stands in for this box.
        donor: TrackBox,
        /// Frame distance from donor to this box.
        age: u64,
    },
}

/// Decision counters, accumulated by the session and flushed once per
/// window (the `AssignStats` pattern: emit non-zero deltas, reset the
/// high-water mark).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GateStats {
    /// Boxes the gate sent to fresh extraction (including donors
    /// promoted to extraction on behalf of a reuse).
    pub extracts: u64,
    /// Boxes that reused a donor feature.
    pub reuses: u64,
    /// Boxes deferred to the prefetch lane.
    pub defers: u64,
}

impl GateStats {
    /// Extraction charges avoided by the gate.
    pub fn saved_charges(&self) -> u64 {
        self.reuses + self.defers
    }

    /// Field-wise difference since `earlier` (which must be a prefix).
    pub fn delta(&self, earlier: &GateStats) -> GateStats {
        GateStats {
            extracts: self.extracts - earlier.extracts,
            reuses: self.reuses - earlier.reuses,
            defers: self.defers - earlier.defers,
        }
    }
}

/// Per-track plan state. Serialized verbatim into checkpoints so
/// resumed sessions decide identically to uninterrupted ones.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrackPlan {
    /// Number of boxes already planned (prefix length).
    pub planned: usize,
    /// Frame of the last planned box; frames beyond it are unplanned.
    pub planned_through: u64,
    /// Anchor boxes in ascending frame order.
    pub anchors: Vec<TrackBox>,
}

/// The per-track extraction plan for a whole [`TrackSet`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GatePlan {
    /// Plans keyed by track, ordered for deterministic serialization.
    tracks: std::collections::BTreeMap<TrackId, TrackPlan>,
}

impl GatePlan {
    /// Extends the plan over boxes appended to `tracks` since the last
    /// update. Previously planned prefixes are never revisited, so the
    /// decision stream is stable across incremental (streaming) and
    /// batch (pipeline / resume) construction.
    pub fn update(&mut self, tracks: &TrackSet, cfg: &GateConfig) {
        let index = tracks.frame_index();
        for track in tracks.iter() {
            let plan = self.tracks.entry(track.id).or_default();
            plan_track(plan, track, &index, cfg);
        }
    }

    /// The gate's verdict for `(track, frame)`. Unknown tracks and
    /// frames beyond the planned prefix fall back to `Extract` — the
    /// gate never blocks a box it has not seen.
    pub fn decide(&self, track: TrackId, frame: FrameIdx, cfg: &GateConfig) -> GateDecision {
        let Some(plan) = self.tracks.get(&track) else {
            return GateDecision::Extract;
        };
        if plan.planned == 0 || frame.get() > plan.planned_through {
            return GateDecision::Extract;
        }
        // Anchor frames extract; everything else reuses the nearest
        // preceding anchor.
        let at = plan.anchors.partition_point(|a| a.frame <= frame);
        if at == 0 {
            return GateDecision::Extract;
        }
        let donor = plan.anchors[at - 1];
        if donor.frame == frame {
            return GateDecision::Extract;
        }
        let age = frame.get() - donor.frame.get();
        if age > cfg.max_reuse_age {
            return GateDecision::Extract;
        }
        if cfg.confidence(age) < cfg.defer_below {
            GateDecision::Defer { donor, age }
        } else {
            GateDecision::Reuse { donor, age }
        }
    }

    /// Number of tracks with at least one planned box.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True when no track has been planned.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Per-track plans in ascending `TrackId` order (for snapshots).
    pub fn export(&self) -> Vec<(TrackId, TrackPlan)> {
        self.tracks.iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    /// Rebuilds a plan from exported state (checkpoint resume).
    pub fn import(entries: Vec<(TrackId, TrackPlan)>) -> Self {
        Self {
            tracks: entries.into_iter().collect(),
        }
    }
}

fn plan_track(
    plan: &mut TrackPlan,
    track: &Track,
    index: &tm_types::FrameIndex<'_>,
    cfg: &GateConfig,
) {
    let first = match track.boxes.first() {
        Some(b) => b.frame.get(),
        None => return,
    };
    for i in plan.planned..track.boxes.len() {
        let b = track.boxes[i];
        let frame = b.frame.get();
        let anchor = if i == 0 || frame.saturating_sub(first) < cfg.fresh_frames {
            // Fresh tracks always extract.
            true
        } else if frame.saturating_sub(track.boxes[i - 1].frame.get()) > cfg.occlusion_gap {
            // Post-occlusion reacquisition: the interval index has a gap.
            true
        } else {
            let since_anchor = plan
                .anchors
                .last()
                .map(|a| frame.saturating_sub(a.frame.get()))
                .unwrap_or(u64::MAX);
            if since_anchor >= cfg.refresh_interval {
                // Periodic refresh cadence.
                true
            } else {
                // Crowded frame: another track overlaps this box enough
                // that appearance is ambiguous.
                let (_, best_iou) = index.crowding(b.frame, track.id, &b.bbox);
                best_iou >= cfg.ambiguity_iou
            }
        };
        if anchor {
            plan.anchors.push(b);
        }
        plan.planned = i + 1;
        plan.planned_through = frame;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{BBox, ClassId};

    fn tb(frame: u64, x: f64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(x, 0.0, 10.0, 10.0))
    }

    fn lone_track(frames: &[u64]) -> TrackSet {
        let boxes = frames.iter().map(|&f| tb(f, 0.0)).collect();
        let mut set = TrackSet::new();
        set.insert(Track::with_boxes(TrackId(1), ClassId(1), boxes));
        set
    }

    fn decisions(set: &TrackSet, cfg: &GateConfig) -> Vec<(u64, GateDecision)> {
        let mut plan = GatePlan::default();
        plan.update(set, cfg);
        let track = set.iter().next().unwrap();
        track
            .boxes
            .iter()
            .map(|b| (b.frame.get(), plan.decide(track.id, b.frame, cfg)))
            .collect()
    }

    #[test]
    fn fresh_boxes_always_extract() {
        let set = lone_track(&[0, 1, 2, 3]);
        let cfg = GateConfig {
            fresh_frames: 2,
            ..GateConfig::default()
        };
        let ds = decisions(&set, &cfg);
        assert_eq!(ds[0].1, GateDecision::Extract);
        assert_eq!(ds[1].1, GateDecision::Extract);
        assert!(matches!(ds[2].1, GateDecision::Reuse { .. }));
        assert!(matches!(ds[3].1, GateDecision::Reuse { .. }));
    }

    #[test]
    fn occlusion_gap_forces_reextraction() {
        let cfg = GateConfig {
            fresh_frames: 1,
            occlusion_gap: 3,
            refresh_interval: 100,
            max_reuse_age: 200,
            defer_below: 0.0,
            ..GateConfig::default()
        };
        let set = lone_track(&[0, 1, 2, 10, 11]);
        let ds = decisions(&set, &cfg);
        assert_eq!(ds[0].1, GateDecision::Extract);
        assert!(matches!(ds[1].1, GateDecision::Reuse { .. }));
        // Frame 10 reappears after a gap of 8 > occlusion_gap.
        assert_eq!(ds[3].1, GateDecision::Extract);
        assert!(matches!(
            ds[4].1,
            GateDecision::Reuse { donor, age: 1 } if donor.frame.get() == 10
        ));
    }

    #[test]
    fn refresh_cadence_spaces_anchors() {
        let cfg = GateConfig {
            fresh_frames: 1,
            refresh_interval: 4,
            max_reuse_age: 100,
            defer_below: 0.0,
            ..GateConfig::default()
        };
        let set = lone_track(&(0..12).collect::<Vec<_>>());
        let ds = decisions(&set, &cfg);
        let anchors: Vec<u64> = ds
            .iter()
            .filter(|(_, d)| *d == GateDecision::Extract)
            .map(|(f, _)| *f)
            .collect();
        assert_eq!(anchors, vec![0, 4, 8]);
    }

    #[test]
    fn stale_reuse_becomes_deferral_then_extraction() {
        let cfg = GateConfig {
            fresh_frames: 1,
            refresh_interval: 100,
            occlusion_gap: 100,
            max_reuse_age: 6,
            decay_half_life: 4.0,
            defer_below: 0.6,
            ..GateConfig::default()
        };
        let set = lone_track(&(0..10).collect::<Vec<_>>());
        let ds = decisions(&set, &cfg);
        // confidence(age) = 0.5^(age/4): >= 0.6 through age 2, below after.
        assert!(matches!(ds[1].1, GateDecision::Reuse { age: 1, .. }));
        assert!(matches!(ds[2].1, GateDecision::Reuse { age: 2, .. }));
        assert!(matches!(ds[3].1, GateDecision::Defer { age: 3, .. }));
        assert!(matches!(ds[6].1, GateDecision::Defer { age: 6, .. }));
        // Beyond max_reuse_age the donor is too old: extract.
        assert_eq!(ds[7].1, GateDecision::Extract);
    }

    #[test]
    fn crowded_frames_are_anchors() {
        let cfg = GateConfig {
            fresh_frames: 1,
            refresh_interval: 100,
            max_reuse_age: 100,
            defer_below: 0.0,
            ambiguity_iou: 0.3,
            ..GateConfig::default()
        };
        let mut set = TrackSet::new();
        set.insert(Track::with_boxes(
            TrackId(1),
            ClassId(1),
            (0..6).map(|f| tb(f, 0.0)).collect(),
        ));
        // Second track overlaps track 1 heavily at frame 3 only.
        set.insert(Track::with_boxes(
            TrackId(2),
            ClassId(1),
            vec![tb(3, 2.0), tb(4, 40.0)],
        ));
        let mut plan = GatePlan::default();
        plan.update(&set, &cfg);
        assert_eq!(
            plan.decide(TrackId(1), FrameIdx(3), &cfg),
            GateDecision::Extract
        );
        assert!(matches!(
            plan.decide(TrackId(1), FrameIdx(4), &cfg),
            GateDecision::Reuse { donor, age: 1 } if donor.frame.get() == 3
        ));
    }

    #[test]
    fn always_extract_config_plans_every_box_as_anchor() {
        let cfg = GateConfig::always_extract();
        let set = lone_track(&[0, 1, 2, 5, 6, 20]);
        for (_, d) in decisions(&set, &cfg) {
            assert_eq!(d, GateDecision::Extract);
        }
    }

    #[test]
    fn unplanned_boxes_fall_back_to_extract() {
        let cfg = GateConfig::default();
        let set = lone_track(&[0, 1, 2]);
        let mut plan = GatePlan::default();
        plan.update(&set, &cfg);
        assert_eq!(
            plan.decide(TrackId(99), FrameIdx(0), &cfg),
            GateDecision::Extract
        );
        assert_eq!(
            plan.decide(TrackId(1), FrameIdx(50), &cfg),
            GateDecision::Extract
        );
    }

    #[test]
    fn incremental_update_matches_batch_update() {
        let cfg = GateConfig::default();
        let frames: Vec<u64> = (0..30).filter(|f| f % 7 != 3).collect();

        let full = lone_track(&frames);
        let mut batch = GatePlan::default();
        batch.update(&full, &cfg);

        let mut incr = GatePlan::default();
        for cut in 1..=frames.len() {
            let partial = lone_track(&frames[..cut]);
            incr.update(&partial, &cfg);
        }
        assert_eq!(batch.export(), incr.export());
    }

    #[test]
    fn export_import_roundtrips() {
        let cfg = GateConfig::default();
        let set = lone_track(&[0, 1, 2, 9, 10, 11, 30]);
        let mut plan = GatePlan::default();
        plan.update(&set, &cfg);
        let copy = GatePlan::import(plan.export());
        assert_eq!(plan, copy);
        for f in [0u64, 1, 2, 9, 10, 11, 30, 31] {
            assert_eq!(
                plan.decide(TrackId(1), FrameIdx(f), &cfg),
                copy.decide(TrackId(1), FrameIdx(f), &cfg)
            );
        }
    }
}
