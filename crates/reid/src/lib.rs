//! # tm-reid
//!
//! A simulated re-identification (ReID) model plus an explicit inference
//! **cost model** — the stand-in for the paper's retrained OSNet running on
//! CPU / GPU (DESIGN.md §1 explains the substitution).
//!
//! ## Appearance simulation
//!
//! Every ground-truth actor owns a latent appearance vector on the unit
//! sphere. Latents are built from a pool of *archetypes* so that distinct
//! objects can look alike (the red-sedan-vs-red-sedan hard negatives a real
//! ReID model struggles with). "Running the model" on a bounding box returns
//! the actor's latent perturbed by observation noise whose magnitude grows
//! as visibility drops — occluded or truncated crops yield worse features,
//! exactly as with a real ReID network. Features are deterministic in
//! (actor, frame), so repeated extraction is idempotent and cacheable.
//!
//! Distances are Euclidean (the paper's choice); because features are
//! unit-norm the distance lies in `[0, 2]` and the paper's *normalized*
//! distance is `d / 2` ([`feature::NORMALIZER`]).
//!
//! ## Cost accounting
//!
//! The paper's runtime results are dominated by ReID invocations. The
//! [`CostModel`] charges a simulated clock for every feature inference and
//! distance evaluation, with CPU per-item costs and GPU batch amortization
//! (per-call overhead + small marginal cost), letting the experiment
//! harness reproduce the paper's Runtime/FPS comparisons deterministically,
//! independent of the host machine. A [`ReidSession`] bundles model + cache
//! + clock and is what the merging algorithms in `tm-core` consume.

pub mod appearance;
pub mod backend;
pub mod batch;
pub mod cache;
pub mod cost;
pub mod feature;
pub mod gate;
pub mod session;

pub use appearance::{AppearanceConfig, AppearanceModel};
pub use backend::{
    Attempt, AttemptClass, BackendFault, BackendReply, InferenceBackend, RetryPolicy, SplitBackend,
};
pub use batch::{BatchConfig, BatchScheduler, BatchStats, BatchingBackend, FeatureKey};
pub use cache::{CacheStats, SharedFeatureCache};
pub use cost::{CostModel, Device, ReidStats, SimClock};
pub use feature::{Feature, NORMALIZER};
pub use gate::{GateConfig, GateDecision, GatePlan, GatePolicy, GateStats, TrackPlan};
pub use session::{
    BoxKey, BoxPairRef, FeatureProvenance, GateSnapshot, ReidSession, SessionSnapshot,
};
