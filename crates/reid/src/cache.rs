//! A sharded, read-through feature cache shared by concurrent sessions.
//!
//! The parallel pipeline (`tm_core::run_pipeline_parallel`) gives every
//! window its own [`crate::ReidSession`] but lets all of them share one
//! `SharedFeatureCache`, mirroring the serial pipeline's cross-window
//! feature reuse (§IV-B). Each in-flight slot is a once-cell: the first
//! session to miss a key computes (and is charged for) the feature while
//! concurrent requesters for the same key block briefly and then reuse it
//! for free — so every distinct box is inferred, and charged, exactly once
//! per cache, just as in the serial run.
//!
//! ## Two tiers: frozen and live
//!
//! Each shard keeps its entries in two maps:
//!
//! * **frozen** — an immutable `Arc<HashMap<K, Arc<Feature>>>` of settled
//!   features. The hot warm-hit path clones the `Arc` under a briefly-held
//!   read lock and then looks up lock-free; a reader can never block on a
//!   computing writer.
//! * **live** — the mutable once-cell map where misses land and racers
//!   coordinate, exactly the pre-rewrite design.
//!
//! When a shard accumulates `max(16, frozen.len())` computed live entries
//! they are **promoted** into a rebuilt frozen map (geometric schedule, so
//! rebuild work is amortized O(1) per insert). Promotion mutates `frozen`
//! only while holding the `live` write lock, and the miss path re-checks
//! `frozen` under that same lock, so a promotion can never hide a key from
//! a concurrent computer (which would double-compute and double-charge).
//!
//! ## Sizing and telemetry
//!
//! The shard count is configurable ([`SharedFeatureCache::with_shards`],
//! power of two, clamped to 1..=4096); [`SharedFeatureCache::for_fleet_width`]
//! sizes it from the number of concurrently-ingesting streams. Hit/miss/
//! contention counters are kept in relaxed atomics ([`CacheStats`]) and can
//! be surfaced through `tm-obs` with [`SharedFeatureCache::flush_obs`] —
//! never automatically, so deterministic observability goldens are
//! unaffected by cache timing. The `cache_storms` suite of the
//! `perf_trajectory` bench measures this design across shard counts.

use crate::feature::Feature;
use crate::session::BoxKey;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Default shard count (the pre-rewrite fixed value).
const DEFAULT_SHARDS: usize = 16;

/// Promotion threshold floor: a shard promotes once it has this many (or
/// `frozen.len()`, if larger) computed live entries.
const MIN_PROMOTE: usize = 16;

type Slot = Arc<OnceLock<Arc<Feature>>>;
type FrozenMap<K> = Arc<HashMap<K, Arc<Feature>>>;

/// One shard's two-tier storage.
#[derive(Debug)]
struct Shard<K> {
    /// Settled features; replaced wholesale at promotion, read by cloning
    /// the `Arc` under a briefly-held lock.
    frozen: RwLock<FrozenMap<K>>,
    /// In-flight and recently-computed entries.
    live: RwLock<HashMap<K, Slot>>,
    /// Computed (initialized) entries currently in `live`; drives the
    /// promotion schedule without rescanning the map.
    live_filled: AtomicUsize,
}

impl<K> Default for Shard<K> {
    fn default() -> Self {
        Self {
            frozen: RwLock::new(Arc::new(HashMap::new())),
            live: RwLock::new(HashMap::new()),
            live_filled: AtomicUsize::new(0),
        }
    }
}

/// Counter snapshot for one cache (all counters monotonic, relaxed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered lock-free from the frozen tier.
    pub frozen_hits: u64,
    /// Lookups answered from a computed live slot (shard lock held).
    pub slow_hits: u64,
    /// Lookups that found nothing computed.
    pub misses: u64,
    /// Features computed through [`SharedFeatureCache::get_or_compute`].
    pub computed: u64,
    /// Live→frozen promotions performed.
    pub promotions: u64,
    /// Reads that found a shard lock held by a writer (`try_read` failed)
    /// and had to wait — the contention signal the storm bench watches.
    pub contention: u64,
}

/// A concurrent `K → Feature` cache. See the module docs.
///
/// Generic over the key so the per-window pipeline keeps its `BoxKey`
/// (track, frame) identity while the cross-stream fleet scheduler caches by
/// content (`crate::FeatureKey`), where the same box under different track
/// IDs must still share one feature. The key only picks a shard and a map
/// slot — sharding quality affects contention, never results.
#[derive(Debug)]
pub struct SharedFeatureCache<K = BoxKey> {
    shards: Vec<Shard<K>>,
    frozen_hits: AtomicU64,
    slow_hits: AtomicU64,
    misses: AtomicU64,
    computed: AtomicU64,
    promotions: AtomicU64,
    contention: AtomicU64,
}

// Manual impl: `derive(Default)` would demand `K: Default` for no reason.
impl<K> Default for SharedFeatureCache<K> {
    fn default() -> Self {
        Self::sized(DEFAULT_SHARDS)
    }
}

impl<K> SharedFeatureCache<K> {
    fn sized(shards: usize) -> Self {
        debug_assert!(shards.is_power_of_two());
        Self {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            frozen_hits: AtomicU64::new(0),
            slow_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            contention: AtomicU64::new(0),
        }
    }
}

impl<K: Hash + Eq + Copy> SharedFeatureCache<K> {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with `shards` shards, rounded up to a power of two
    /// and clamped to `1..=4096`. More shards reduce write contention at
    /// the price of per-shard memory overhead; results never depend on the
    /// count.
    pub fn with_shards(shards: usize) -> Self {
        Self::sized(shards.max(1).next_power_of_two().min(4096))
    }

    /// Sizes the cache for `width` concurrently-ingesting sessions
    /// (streams or worker threads): 4 shards per session so the birthday
    /// collision rate on shard locks stays low, floor of
    /// [`DEFAULT_SHARDS`].
    pub fn for_fleet_width(width: usize) -> Self {
        Self::with_shards((width.saturating_mul(4)).max(DEFAULT_SHARDS))
    }

    /// Number of shards actually allocated (power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &K) -> &Shard<K> {
        // SipHash the key, then a SplitMix64-style avalanche so low bits
        // are well mixed before masking down to a shard index.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let mut z = h.finish().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        &self.shards[(z as usize) & (self.shards.len() - 1)]
    }

    /// Clones the shard's frozen map `Arc`, counting contention when the
    /// lock was momentarily writer-held (promotion in progress).
    fn frozen_map(&self, shard: &Shard<K>) -> FrozenMap<K> {
        match shard.frozen.try_read() {
            Ok(g) => Arc::clone(&g),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&shard.frozen.read().expect("cache lock poisoned"))
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("cache lock poisoned"),
        }
    }

    /// The cached feature for `key`, if some session already computed it.
    /// A slot whose computation is still in flight counts as a miss (the
    /// caller will join it through [`SharedFeatureCache::get_or_compute`]).
    pub fn get(&self, key: &K) -> Option<Arc<Feature>> {
        let shard = self.shard(key);
        if let Some(f) = self.frozen_map(shard).get(key) {
            self.frozen_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(f));
        }
        let found = match shard.live.try_read() {
            Ok(g) => g.get(key).and_then(|slot| slot.get().cloned()),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                shard
                    .live
                    .read()
                    .expect("cache lock poisoned")
                    .get(key)
                    .and_then(|slot| slot.get().cloned())
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("cache lock poisoned"),
        };
        match found {
            Some(f) => {
                self.slow_hits.fetch_add(1, Ordering::Relaxed);
                Some(f)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Read-through lookup: returns the feature for `key`, running
    /// `compute` iff no other session has (or is) computing it. The
    /// returned flag is `true` when *this* call did the work — that caller
    /// owns the simulated inference cost.
    pub fn get_or_compute(
        &self,
        key: K,
        compute: impl FnOnce() -> Feature,
    ) -> (Arc<Feature>, bool) {
        let shard = self.shard(&key);
        if let Some(f) = self.frozen_map(shard).get(&key) {
            self.frozen_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(f), false);
        }
        let slot: Slot = {
            // The read guard must drop before the write lock is taken: under
            // the 2021 edition an `if let` scrutinee's temporaries live
            // through the `else` branch, so reading and upgrading in one
            // `if let` self-deadlocks on the first miss. `cloned()` ends the
            // borrow at the end of this statement.
            let found = shard
                .live
                .read()
                .expect("cache lock poisoned")
                .get(&key)
                .cloned();
            match found {
                Some(slot) => slot,
                None => {
                    let mut live = shard.live.write().expect("cache lock poisoned");
                    // Re-check the frozen tier while holding the live write
                    // lock: a promotion may have moved this key out of `live`
                    // after our lookups above. Promotions mutate `frozen`
                    // only while holding `live`'s write lock, so holding it
                    // here excludes one mid-flight — without the re-check a
                    // racer could recompute (and re-charge) a settled
                    // feature.
                    if let Some(f) = self.frozen_map(shard).get(&key) {
                        self.frozen_hits.fetch_add(1, Ordering::Relaxed);
                        return (Arc::clone(f), false);
                    }
                    Arc::clone(live.entry(key).or_default())
                }
            }
        };
        // Outside the shard lock: losers of the race block on the cell,
        // not on the shard, so unrelated keys stay accessible.
        let mut computed = false;
        let feature = slot
            .get_or_init(|| {
                computed = true;
                Arc::new(compute())
            })
            .clone();
        if computed {
            self.computed.fetch_add(1, Ordering::Relaxed);
            let filled = shard.live_filled.fetch_add(1, Ordering::Relaxed) + 1;
            let threshold = MIN_PROMOTE.max(self.frozen_map(shard).len());
            if filled >= threshold {
                self.promote(shard);
            }
        } else {
            self.slow_hits.fetch_add(1, Ordering::Relaxed);
        }
        (feature, computed)
    }

    /// Rebuilds the shard's frozen map from the old one plus every computed
    /// live entry, retaining only still-in-flight slots in `live`. Runs
    /// under the live write lock (see the re-check in `get_or_compute`).
    fn promote(&self, shard: &Shard<K>) {
        let mut live = shard.live.write().expect("cache lock poisoned");
        let old = Arc::clone(&shard.frozen.read().expect("cache lock poisoned"));
        let mut map: HashMap<K, Arc<Feature>> = HashMap::with_capacity(old.len() + live.len());
        map.extend(old.iter().map(|(k, f)| (*k, Arc::clone(f))));
        live.retain(|k, slot| match slot.get() {
            Some(f) => {
                map.insert(*k, Arc::clone(f));
                false
            }
            None => true,
        });
        *shard.frozen.write().expect("cache lock poisoned") = Arc::new(map);
        shard.live_filled.store(0, Ordering::Relaxed);
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of fully-computed features in the cache.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let frozen = s.frozen.read().expect("cache lock poisoned").len();
                let live = s
                    .live
                    .read()
                    .expect("cache lock poisoned")
                    .values()
                    .filter(|slot| slot.get().is_some())
                    .count();
                frozen + live
            })
            .sum()
    }

    /// True when no feature has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            frozen_hits: self.frozen_hits.load(Ordering::Relaxed),
            slow_hits: self.slow_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            contention: self.contention.load(Ordering::Relaxed),
        }
    }

    /// Emits the counters through `obs` under `reid.shared_cache.*`.
    /// Explicit (never called by the hot paths): cache timing is
    /// scheduling-dependent, and auto-emitting would perturb the
    /// deterministic observability goldens.
    pub fn flush_obs(&self, obs: &tm_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        let s = self.stats();
        obs.counter("reid.shared_cache.frozen_hits", s.frozen_hits);
        obs.counter("reid.shared_cache.slow_hits", s.slow_hits);
        obs.counter("reid.shared_cache.misses", s.misses);
        obs.counter("reid.shared_cache.computed", s.computed);
        obs.counter("reid.shared_cache.promotions", s.promotions);
        obs.counter("reid.shared_cache.contention", s.contention);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{FrameIdx, TrackId};

    fn key(t: u64, f: u64) -> BoxKey {
        BoxKey::new(TrackId(t), FrameIdx(f))
    }

    fn feat(x: f64) -> Feature {
        Feature::normalized(vec![x, 1.0])
    }

    #[test]
    fn first_caller_computes_second_reuses() {
        let cache = SharedFeatureCache::new();
        let (f1, computed1) = cache.get_or_compute(key(1, 2), || feat(3.0));
        assert!(computed1);
        let (f2, computed2) = cache.get_or_compute(key(1, 2), || panic!("must reuse"));
        assert!(!computed2);
        assert_eq!(f1, f2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_misses_until_computed() {
        let cache = SharedFeatureCache::new();
        assert!(cache.get(&key(4, 5)).is_none());
        cache.get_or_compute(key(4, 5), || feat(1.0));
        assert!(cache.get(&key(4, 5)).is_some());
    }

    #[test]
    fn distinct_keys_occupy_distinct_slots() {
        let cache = SharedFeatureCache::new();
        for t in 0..50u64 {
            cache.get_or_compute(key(t, t + 1), || feat(t as f64));
        }
        assert_eq!(cache.len(), 50);
        assert!(!cache.is_empty());
    }

    #[test]
    fn concurrent_racers_compute_once() {
        let cache = Arc::new(SharedFeatureCache::new());
        let n_computed = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (_, computed) = cache.get_or_compute(key(9, 9), || {
                        n_computed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        feat(2.0)
                    });
                    let _ = computed;
                });
            }
        });
        assert_eq!(n_computed.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_counts_round_to_powers_of_two() {
        assert_eq!(
            SharedFeatureCache::<BoxKey>::with_shards(0).shard_count(),
            1
        );
        assert_eq!(
            SharedFeatureCache::<BoxKey>::with_shards(1).shard_count(),
            1
        );
        assert_eq!(
            SharedFeatureCache::<BoxKey>::with_shards(5).shard_count(),
            8
        );
        assert_eq!(
            SharedFeatureCache::<BoxKey>::with_shards(1 << 20).shard_count(),
            4096
        );
        assert_eq!(
            SharedFeatureCache::<BoxKey>::for_fleet_width(1).shard_count(),
            16
        );
        assert_eq!(
            SharedFeatureCache::<BoxKey>::for_fleet_width(8).shard_count(),
            32
        );
    }

    #[test]
    fn promotion_moves_entries_without_losing_any() {
        // One shard so every insert lands on the same promotion counter.
        let cache = SharedFeatureCache::with_shards(1);
        for t in 0..200u64 {
            cache.get_or_compute(key(t, 0), || feat(t as f64));
        }
        assert_eq!(cache.len(), 200);
        let stats = cache.stats();
        assert_eq!(stats.computed, 200);
        assert!(
            stats.promotions >= 1,
            "200 single-shard inserts must promote"
        );
        // Every key is still readable, and re-reads after promotion are
        // frozen hits.
        let before = cache.stats().frozen_hits;
        for t in 0..200u64 {
            let (f, computed) = cache.get_or_compute(key(t, 0), || panic!("must reuse"));
            assert!(!computed);
            assert_eq!(f.as_slice().len(), 2);
        }
        assert!(cache.stats().frozen_hits > before);
    }

    #[test]
    fn stats_classify_hits_and_misses() {
        let cache = SharedFeatureCache::with_shards(1);
        assert!(cache.get(&key(1, 1)).is_none());
        assert_eq!(cache.stats().misses, 1);
        cache.get_or_compute(key(1, 1), || feat(1.0));
        // Still in the live tier (below the promotion floor).
        assert!(cache.get(&key(1, 1)).is_some());
        let s = cache.stats();
        assert_eq!(s.computed, 1);
        assert_eq!(s.slow_hits, 1);
        assert_eq!(s.promotions, 0);
    }

    #[test]
    fn concurrent_storm_across_promotions_computes_each_key_once() {
        let cache = Arc::new(SharedFeatureCache::with_shards(2));
        let n_computed = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let cache = Arc::clone(&cache);
                let n_computed = &n_computed;
                s.spawn(move || {
                    // Interleaved orders so racers collide on hot keys while
                    // promotions fire underneath them.
                    for round in 0..3 {
                        for t in 0..100u64 {
                            let t = (t + worker * 25) % 100;
                            let (_, computed) = cache.get_or_compute(key(t, round), || {
                                n_computed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                feat(t as f64)
                            });
                            let _ = computed;
                        }
                    }
                });
            }
        });
        // 100 keys × 3 rounds, each computed exactly once despite the storm.
        assert_eq!(n_computed.load(std::sync::atomic::Ordering::Relaxed), 300);
        assert_eq!(cache.len(), 300);
        assert_eq!(cache.stats().computed, 300);
    }
}
