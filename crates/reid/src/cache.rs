//! A sharded, read-through feature cache shared by concurrent sessions.
//!
//! The parallel pipeline (`tm_core::run_pipeline_parallel`) gives every
//! window its own [`crate::ReidSession`] but lets all of them share one
//! `SharedFeatureCache`, mirroring the serial pipeline's cross-window
//! feature reuse (§IV-B). Each cache slot is a once-cell: the first session
//! to miss a key computes (and is charged for) the feature while concurrent
//! requesters for the same key block briefly and then reuse it for free —
//! so every distinct box is inferred, and charged, exactly once per cache,
//! just as in the serial run.
//!
//! Sharding bounds lock contention; `std::sync::RwLock` is used so the
//! crate stays dependency-free in offline builds (reads — the hot path
//! after warm-up — take the shard lock only briefly to clone an `Arc`).

use crate::feature::Feature;
use crate::session::BoxKey;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of shards; a power of two so the shard index is a mask.
const N_SHARDS: usize = 16;

type Slot = Arc<OnceLock<Arc<Feature>>>;

/// A concurrent `K → Feature` cache. See the module docs.
///
/// Generic over the key so the per-window pipeline keeps its `BoxKey`
/// (track, frame) identity while the cross-stream fleet scheduler caches by
/// content (`crate::FeatureKey`), where the same box under different track
/// IDs must still share one feature. The key only picks a shard and a map
/// slot — sharding quality affects contention, never results.
#[derive(Debug)]
pub struct SharedFeatureCache<K = BoxKey> {
    shards: [RwLock<HashMap<K, Slot>>; N_SHARDS],
}

// Manual impl: `derive(Default)` would demand `K: Default` for no reason.
impl<K> Default for SharedFeatureCache<K> {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }
}

impl<K: Hash + Eq + Copy> SharedFeatureCache<K> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Slot>> {
        // SipHash the key, then a SplitMix64-style avalanche so low bits
        // are well mixed before masking down to a shard index.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let mut z = h.finish().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        &self.shards[(z as usize) & (N_SHARDS - 1)]
    }

    /// The cached feature for `key`, if some session already computed it.
    /// A slot whose computation is still in flight counts as a miss (the
    /// caller will join it through [`SharedFeatureCache::get_or_compute`]).
    pub fn get(&self, key: &K) -> Option<Arc<Feature>> {
        let shard = self.shard(key).read().expect("cache lock poisoned");
        shard.get(key).and_then(|slot| slot.get().cloned())
    }

    /// Read-through lookup: returns the feature for `key`, running
    /// `compute` iff no other session has (or is) computing it. The
    /// returned flag is `true` when *this* call did the work — that caller
    /// owns the simulated inference cost.
    pub fn get_or_compute(
        &self,
        key: K,
        compute: impl FnOnce() -> Feature,
    ) -> (Arc<Feature>, bool) {
        let slot: Slot = {
            let lock = self.shard(&key);
            // The read guard must drop before the write lock is taken: under
            // the 2021 edition an `if let` scrutinee's temporaries live
            // through the `else` branch, so reading and upgrading in one
            // `if let` self-deadlocks on the first miss. `cloned()` ends the
            // borrow at the end of this statement.
            let found = lock.read().expect("cache lock poisoned").get(&key).cloned();
            match found {
                Some(slot) => slot,
                None => {
                    let mut shard = lock.write().expect("cache lock poisoned");
                    Arc::clone(shard.entry(key).or_default())
                }
            }
        };
        // Outside the shard lock: losers of the race block on the cell,
        // not on the shard, so unrelated keys stay accessible.
        let mut computed = false;
        let feature = slot
            .get_or_init(|| {
                computed = true;
                Arc::new(compute())
            })
            .clone();
        (feature, computed)
    }

    /// Number of fully-computed features in the cache.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("cache lock poisoned")
                    .values()
                    .filter(|slot| slot.get().is_some())
                    .count()
            })
            .sum()
    }

    /// True when no feature has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{FrameIdx, TrackId};

    fn key(t: u64, f: u64) -> BoxKey {
        BoxKey::new(TrackId(t), FrameIdx(f))
    }

    fn feat(x: f64) -> Feature {
        Feature::normalized(vec![x, 1.0])
    }

    #[test]
    fn first_caller_computes_second_reuses() {
        let cache = SharedFeatureCache::new();
        let (f1, computed1) = cache.get_or_compute(key(1, 2), || feat(3.0));
        assert!(computed1);
        let (f2, computed2) = cache.get_or_compute(key(1, 2), || panic!("must reuse"));
        assert!(!computed2);
        assert_eq!(f1, f2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_misses_until_computed() {
        let cache = SharedFeatureCache::new();
        assert!(cache.get(&key(4, 5)).is_none());
        cache.get_or_compute(key(4, 5), || feat(1.0));
        assert!(cache.get(&key(4, 5)).is_some());
    }

    #[test]
    fn distinct_keys_occupy_distinct_slots() {
        let cache = SharedFeatureCache::new();
        for t in 0..50u64 {
            cache.get_or_compute(key(t, t + 1), || feat(t as f64));
        }
        assert_eq!(cache.len(), 50);
        assert!(!cache.is_empty());
    }

    #[test]
    fn concurrent_racers_compute_once() {
        let cache = Arc::new(SharedFeatureCache::new());
        let n_computed = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (_, computed) = cache.get_or_compute(key(9, 9), || {
                        n_computed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        feat(2.0)
                    });
                    let _ = computed;
                });
            }
        });
        assert_eq!(n_computed.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
    }
}
