//! Cross-stream batched ReID scheduling.
//!
//! The fleet ingester (`tm_core::fleet`) runs one [`crate::ReidSession`]
//! per video stream. Left alone, each session would infer every distinct
//! box it misses — even when several cameras watch the same scene and miss
//! the *same* boxes. A [`BatchScheduler`] pools that work: every stream's
//! session talks to its own [`BatchingBackend`] lane, the lanes enqueue
//! clean feature requests into one shared size-bounded queue, and batches
//! are dispatched through the wrapped [`AppearanceModel`] into a shared
//! content-addressed [`SharedFeatureCache`] so each distinct box is
//! inferred exactly once fleet-wide — the cross-stream analogue of the
//! paper's `-B` batched variants.
//!
//! ## The per-stream invariance contract
//!
//! A lane must be behaviorally invisible to its stream: with the default
//! [`BatchConfig`], every reply a lane produces is **bit-identical** to
//! the reply the wrapped backend would have produced solo. Three design
//! decisions enforce this:
//!
//! 1. **Faults never touch the shared cache.** The lane classifies each
//!    attempt through [`SplitBackend::classify`] first; `Fault` and
//!    `Corrupt` replies pass through verbatim, so one stream's outage or
//!    NaN storm can neither poison a sibling's features nor be papered
//!    over by them (no cross-stream fault leakage, in either direction).
//! 2. **Clean features come from a pure model.** [`AttemptClass::Clean`]
//!    contractually means "the wrapped model's `observe_track_box`" — so a
//!    cache hit returns the very feature the solo run would have computed,
//!    keyed by full box content ([`FeatureKey`]) to rule out collisions
//!    between distinct boxes.
//! 3. **Batching is non-blocking.** Accumulation happens on the session's
//!    *prefetch* hook (advisory, fire-and-forget); a full batch is flushed
//!    by whoever fills it, and a demand (`try_observe` miss) flushes
//!    everything pending — the batching "deadline" is demand itself, so no
//!    lane ever waits on another stream and the fleet is deadlock-free at
//!    `TMERGE_THREADS=1`.
//!
//! ## Cost semantics
//!
//! Clock charging stays where it always was — in each stream's session
//! (nominal per-item inference charges plus the reply's `extra_ms`), so a
//! shard pays for its own boxes only. The scheduler adds exactly one knob:
//! [`BatchConfig::amortized_overhead_ms`], a per-request surcharge on
//! clean replies modelling a stream's amortized share of batch dispatch
//! overhead (a GPU-style `gpu_call_overhead_ms / batch_size` stand-in).
//! The default is `0.0`, under which per-stream clocks are bit-identical
//! to solo runs; any positive value shifts clocks but never decisions,
//! because features are unchanged.
//!
//! ## What is (and is not) deterministic
//!
//! Per-stream replies, and therefore every per-stream output, are
//! deterministic for any thread count or interleaving. The scheduler's
//! own [`BatchStats`] split two ways: `requests` and (on fault-free runs)
//! `computed` are interleaving-independent, while `dispatches`,
//! `dispatched_items` and `largest_batch` describe how work happened to
//! clump and are operational telemetry only — never assert exact values
//! across thread counts.

use crate::appearance::AppearanceModel;
use crate::backend::{Attempt, AttemptClass, BackendReply, InferenceBackend, SplitBackend};
use crate::cache::SharedFeatureCache;
use crate::feature::Feature;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tm_obs::Obs;
use tm_types::TrackBox;

/// Content identity of a box: the bit patterns of every [`TrackBox`] field.
///
/// The fleet cache is shared across streams whose tracker-assigned IDs are
/// unrelated, so the per-session `BoxKey` (track, frame) cannot key it.
/// Hashing the full content is sound for any *pure* appearance model —
/// equal inputs give equal features — and including even the fields the
/// current model ignores (confidence) keeps the key safe if the model ever
/// starts reading them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureKey {
    frame: u64,
    x: u64,
    y: u64,
    w: u64,
    h: u64,
    confidence: u64,
    visibility: u64,
    provenance: Option<u64>,
}

impl FeatureKey {
    /// The content key of one box.
    pub fn of(tb: &TrackBox) -> Self {
        Self {
            frame: tb.frame.get(),
            x: tb.bbox.x.to_bits(),
            y: tb.bbox.y.to_bits(),
            w: tb.bbox.w.to_bits(),
            h: tb.bbox.h.to_bits(),
            confidence: tb.confidence.to_bits(),
            visibility: tb.visibility.to_bits(),
            provenance: tb.provenance.map(|p| p.get()),
        }
    }
}

/// Tuning for a [`BatchScheduler`]. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Upper bound on one dispatched batch; a prefetch that fills the
    /// queue to this size flushes it. Clamped to ≥ 1.
    pub max_batch: usize,
    /// Per-clean-request amortized batch overhead charged to the
    /// requesting stream's clock via the reply's `extra_ms`. `0.0`
    /// (default) keeps per-stream clocks bit-identical to solo runs.
    pub amortized_overhead_ms: f64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            amortized_overhead_ms: 0.0,
        }
    }
}

/// Counters describing one scheduler's life so far. See the module docs
/// for which fields are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Clean feature requests answered (cache hits included).
    pub requests: u64,
    /// Features actually computed by the wrapped model — the fleet-wide
    /// inference count. `requests - computed` is the batching saving.
    pub computed: u64,
    /// Batches dispatched (operational).
    pub dispatches: u64,
    /// Total items across dispatched batches (operational).
    pub dispatched_items: u64,
    /// Largest single dispatched batch (operational; ≤ `max_batch`).
    pub largest_batch: u64,
}

impl BatchStats {
    /// Inferences avoided versus per-stream serial (which would have
    /// computed once per request).
    pub fn saved(&self) -> u64 {
        self.requests.saturating_sub(self.computed)
    }
}

#[derive(Debug, Default)]
struct PendingQueue {
    /// Requests awaiting dispatch, in arrival order.
    queue: Vec<(FeatureKey, TrackBox)>,
    /// Members of `queue`, for O(1) duplicate suppression.
    members: HashSet<FeatureKey>,
}

/// The shared cross-stream batching core. One per fleet; hand each stream
/// a lane via [`BatchScheduler::backend`]. See the module docs.
#[derive(Debug)]
pub struct BatchScheduler<'m> {
    model: &'m AppearanceModel,
    config: BatchConfig,
    cache: SharedFeatureCache<FeatureKey>,
    pending: Mutex<PendingQueue>,
    requests: AtomicU64,
    computed: AtomicU64,
    dispatches: AtomicU64,
    dispatched_items: AtomicU64,
    largest_batch: AtomicU64,
    obs: Obs,
}

impl<'m> BatchScheduler<'m> {
    /// A scheduler computing clean features through `model`. Captures the
    /// ambient observability scope at construction, so build it inside the
    /// recorder scope whose metrics should see `fleet.batch.*` counters.
    pub fn new(model: &'m AppearanceModel, config: BatchConfig) -> Self {
        Self::for_fleet_width(model, config, 1)
    }

    /// [`BatchScheduler::new`] with the shared cache sized for `streams`
    /// concurrently-ingesting streams
    /// (see [`SharedFeatureCache::for_fleet_width`]).
    pub fn for_fleet_width(
        model: &'m AppearanceModel,
        config: BatchConfig,
        streams: usize,
    ) -> Self {
        let config = BatchConfig {
            max_batch: config.max_batch.max(1),
            ..config
        };
        Self {
            model,
            config,
            cache: SharedFeatureCache::for_fleet_width(streams),
            pending: Mutex::new(PendingQueue::default()),
            requests: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            dispatched_items: AtomicU64::new(0),
            largest_batch: AtomicU64::new(0),
            obs: tm_obs::current(),
        }
    }

    /// [`BatchScheduler::for_fleet_width`] specialised for one serve-layer
    /// tenant. The shared cache is sized for the tenant's own `streams`,
    /// and the dispatch bound is capped at eight outstanding requests per
    /// stream: a two-camera tenant should not inherit a fleet-wide
    /// `max_batch` of 32 and sit on a seven-eighths-empty queue waiting
    /// for traffic its streams will never produce. Batch sizing is purely
    /// operational — lane replies are contractually identical at any
    /// dispatch boundary — so tenants of different widths still produce
    /// byte-identical per-stream output.
    pub fn for_tenant(model: &'m AppearanceModel, config: BatchConfig, streams: usize) -> Self {
        let streams = streams.max(1);
        let config = BatchConfig {
            max_batch: config.max_batch.min(streams * 8).max(1),
            ..config
        };
        Self::for_fleet_width(model, config, streams)
    }

    /// The effective (clamped) configuration.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// A per-stream lane over `inner` (the stream's own fault surface —
    /// e.g. a `tm_chaos::FaultyModel` — or the bare model). The lane
    /// borrows both, so lanes are cheap and copyable.
    pub fn backend<'a>(&'a self, inner: &'a dyn SplitBackend) -> BatchingBackend<'a> {
        BatchingBackend {
            inner,
            shared: self,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            requests: self.requests.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            dispatched_items: self.dispatched_items.load(Ordering::Relaxed),
            largest_batch: self.largest_batch.load(Ordering::Relaxed),
        }
    }

    /// Number of fully-computed features in the shared cache.
    pub fn cached_features(&self) -> usize {
        self.cache.len()
    }

    /// Requests currently queued and not yet dispatched (< `max_batch`).
    pub fn pending_len(&self) -> usize {
        self.pending
            .lock()
            .expect("batch queue poisoned")
            .queue
            .len()
    }

    /// Advisory enqueue from a lane's prefetch. Never blocks on inference
    /// done elsewhere; flushes one batch if this fills the queue.
    fn offer(&self, key: FeatureKey, tb: &TrackBox) {
        if self.cache.get(&key).is_some() {
            return;
        }
        let full = {
            let mut q = self.pending.lock().expect("batch queue poisoned");
            if !q.members.insert(key) {
                return;
            }
            q.queue.push((key, *tb));
            if q.queue.len() >= self.config.max_batch {
                q.members.clear();
                Some(std::mem::take(&mut q.queue))
            } else {
                None
            }
        };
        if let Some(batch) = full {
            self.dispatch(&batch);
        }
    }

    /// A lane needs `key` *now*: count the request, serve from cache if
    /// possible, otherwise flush everything pending (demand is the batch
    /// deadline) and compute.
    fn request(&self, key: FeatureKey, tb: &TrackBox) -> Arc<Feature> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.obs.counter("fleet.batch.requests", 1);
        if let Some(f) = self.cache.get(&key) {
            return f;
        }
        let mut drained = {
            let mut q = self.pending.lock().expect("batch queue poisoned");
            q.members.clear();
            std::mem::take(&mut q.queue)
        };
        if !drained.iter().any(|(k, _)| *k == key) {
            drained.push((key, *tb));
        }
        for chunk in drained.chunks(self.config.max_batch) {
            self.dispatch(chunk);
        }
        // The demanded key was in the drained set, so this is a cache hit;
        // get_or_compute keeps it panic-free regardless.
        let (f, computed) = self
            .cache
            .get_or_compute(key, || self.model.observe_track_box(tb));
        if computed {
            self.note_computed(1);
        }
        f
    }

    fn dispatch(&self, batch: &[(FeatureKey, TrackBox)]) {
        if batch.is_empty() {
            return;
        }
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.dispatched_items
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.largest_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        let mut computed = 0u64;
        for (key, tb) in batch {
            let (_, did) = self
                .cache
                .get_or_compute(*key, || self.model.observe_track_box(tb));
            if did {
                computed += 1;
            }
        }
        if computed > 0 {
            self.note_computed(computed);
        }
    }

    fn note_computed(&self, n: u64) {
        self.computed.fetch_add(n, Ordering::Relaxed);
        self.obs.counter("fleet.batch.computed", n);
    }
}

/// One stream's lane into a [`BatchScheduler`]. An [`InferenceBackend`]
/// whose clean replies come from the fleet-shared cache and whose faults
/// are the wrapped backend's, verbatim. See the module docs for the
/// invariance contract.
#[derive(Debug, Clone, Copy)]
pub struct BatchingBackend<'a> {
    inner: &'a dyn SplitBackend,
    shared: &'a BatchScheduler<'a>,
}

impl InferenceBackend for BatchingBackend<'_> {
    fn try_observe(&self, tb: &TrackBox, at: &Attempt) -> BackendReply {
        match self.inner.classify(at) {
            AttemptClass::Fault { fault, extra_ms } => BackendReply::fault(fault, extra_ms),
            AttemptClass::Corrupt { feature, extra_ms } => BackendReply {
                outcome: Ok(feature),
                extra_ms,
            },
            AttemptClass::Clean { extra_ms } => {
                let f = self.shared.request(FeatureKey::of(tb), tb);
                BackendReply {
                    outcome: Ok((*f).clone()),
                    extra_ms: extra_ms + self.shared.config.amortized_overhead_ms,
                }
            }
        }
    }

    fn available(&self, epoch: u64) -> bool {
        self.inner.available(epoch)
    }

    fn prefetch(&self, requests: &[(&TrackBox, Attempt)]) {
        for (tb, at) in requests {
            if let AttemptClass::Clean { .. } = self.inner.classify(at) {
                self.shared.offer(FeatureKey::of(tb), tb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appearance::AppearanceConfig;
    use crate::session::BoxKey;
    use tm_types::{BBox, FrameIdx, GtObjectId, TrackId};

    fn model() -> AppearanceModel {
        AppearanceModel::new(AppearanceConfig::default())
    }

    fn tb(frame: u64, x: f64, actor: u64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(x, 5.0, 10.0, 20.0))
            .with_provenance(GtObjectId(actor))
    }

    fn at(epoch: u64, track: u64, frame: u64) -> Attempt {
        Attempt {
            epoch,
            attempt: 0,
            key: BoxKey::new(TrackId(track), FrameIdx(frame)),
        }
    }

    #[test]
    fn lane_replies_match_the_bare_model() {
        let m = model();
        let sched = BatchScheduler::new(&m, BatchConfig::default());
        let lane = sched.backend(&m);
        for i in 0..5 {
            let b = tb(i, i as f64, i);
            let got = lane.try_observe(&b, &at(0, 7, i));
            let want = m.try_observe(&b, &at(0, 7, i));
            assert_eq!(got.outcome.unwrap(), want.outcome.unwrap());
            assert_eq!(got.extra_ms, 0.0);
        }
        assert_eq!(sched.stats().requests, 5);
        assert_eq!(sched.stats().computed, 5);
    }

    #[test]
    fn second_stream_hits_the_shared_cache() {
        let m = model();
        let sched = BatchScheduler::new(&m, BatchConfig::default());
        let lane_a = sched.backend(&m);
        let lane_b = sched.backend(&m);
        let b = tb(3, 1.0, 9);
        // Different per-stream BoxKeys, same content → one computation.
        let fa = lane_a.try_observe(&b, &at(0, 1, 3)).outcome.unwrap();
        let fb = lane_b.try_observe(&b, &at(0, 900, 3)).outcome.unwrap();
        assert_eq!(fa, fb);
        let s = sched.stats();
        assert_eq!((s.requests, s.computed, s.saved()), (2, 1, 1));
    }

    #[test]
    fn tenant_sizing_caps_the_dispatch_bound_per_stream() {
        let m = model();
        // A narrow tenant gets a proportionally small dispatch bound…
        let narrow = BatchScheduler::for_tenant(&m, BatchConfig::default(), 2);
        assert_eq!(narrow.config().max_batch, 16);
        // …a wide tenant keeps the configured one…
        let wide = BatchScheduler::for_tenant(&m, BatchConfig::default(), 8);
        assert_eq!(wide.config().max_batch, 32);
        // …and degenerate widths still clamp to a working scheduler whose
        // replies match the bare model.
        let degenerate = BatchScheduler::for_tenant(
            &m,
            BatchConfig {
                max_batch: 0,
                ..BatchConfig::default()
            },
            0,
        );
        assert_eq!(degenerate.config().max_batch, 1);
        let lane = degenerate.backend(&m);
        let b = tb(1, 2.0, 4);
        assert_eq!(
            lane.try_observe(&b, &at(0, 1, 1)).outcome.unwrap(),
            m.try_observe(&b, &at(0, 1, 1)).outcome.unwrap()
        );
    }

    #[test]
    fn prefetch_fills_batches_and_demand_flushes_the_rest() {
        let m = model();
        let sched = BatchScheduler::new(
            &m,
            BatchConfig {
                max_batch: 3,
                ..BatchConfig::default()
            },
        );
        let lane = sched.backend(&m);
        let boxes: Vec<TrackBox> = (0..5).map(|i| tb(i, 2.0 * i as f64, i)).collect();
        let hints: Vec<(&TrackBox, Attempt)> = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| (b, at(0, 1, i as u64)))
            .collect();
        lane.prefetch(&hints);
        // 5 offers at max_batch=3: one full batch flushed, 2 still queued.
        assert_eq!(sched.pending_len(), 2);
        assert_eq!(sched.cached_features(), 3);
        let s = sched.stats();
        assert_eq!(s.largest_batch, 3);
        assert_eq!(s.computed, 3);
        // Demanding any box (even an unqueued one) drains the queue.
        let extra = tb(99, 0.5, 42);
        lane.try_observe(&extra, &at(0, 1, 99));
        assert_eq!(sched.pending_len(), 0);
        assert_eq!(sched.stats().computed, 6);
        assert!(sched.stats().largest_batch <= 3);
    }

    #[test]
    fn duplicate_offers_are_suppressed() {
        let m = model();
        let sched = BatchScheduler::new(&m, BatchConfig::default());
        let lane = sched.backend(&m);
        let b = tb(1, 1.0, 1);
        lane.prefetch(&[(&b, at(0, 1, 1)), (&b, at(0, 2, 1))]);
        assert_eq!(sched.pending_len(), 1);
        // Already-cached content is not re-queued either.
        lane.try_observe(&b, &at(0, 1, 1));
        lane.prefetch(&[(&b, at(0, 3, 1))]);
        assert_eq!(sched.pending_len(), 0);
    }

    #[test]
    fn amortized_overhead_is_charged_per_clean_request() {
        let m = model();
        let sched = BatchScheduler::new(
            &m,
            BatchConfig {
                amortized_overhead_ms: 1.5,
                ..BatchConfig::default()
            },
        );
        let lane = sched.backend(&m);
        let b = tb(1, 1.0, 1);
        assert_eq!(lane.try_observe(&b, &at(0, 1, 1)).extra_ms, 1.5);
        // Cache hits pay it too: it models the stream's share of dispatch
        // overhead, not the compute.
        assert_eq!(lane.try_observe(&b, &at(0, 2, 1)).extra_ms, 1.5);
    }
}
