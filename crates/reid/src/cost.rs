//! The simulated-inference cost model and clock.
//!
//! The paper's efficiency results (Figs. 4–7, Table II) measure wall-clock
//! time dominated by ReID-model invocations on an Intel Xeon + TITAN Xp.
//! Rather than inherit whatever hardware this reproduction happens to run
//! on, every ReID operation charges a deterministic simulated clock using
//! the constants below. `Runtime` and `FPS` in the experiment harness are
//! read off this clock, making the efficiency experiments exactly
//! reproducible (Criterion benches additionally measure real wall-clock for
//! the algorithmic kernels).
//!
//! Constants were calibrated once against Table II's MOT-17 column; see
//! DESIGN.md §6 and EXPERIMENTS.md for paper-vs-measured numbers.

use serde::{Deserialize, Serialize};

/// Where the (simulated) ReID model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Device {
    /// Sequential per-item inference.
    Cpu,
    /// Batched inference: each call pays a launch overhead plus a small
    /// per-item marginal cost. `batch` is the paper's `B` — the number of
    /// track pairs jointly evaluated per round.
    Gpu {
        /// Maximum number of track pairs evaluated per round.
        batch: usize,
    },
}

impl Device {
    /// The batch size `B` (1 on CPU).
    pub fn batch(&self) -> usize {
        match self {
            Device::Cpu => 1,
            Device::Gpu { batch } => (*batch).max(1),
        }
    }

    /// True for the GPU variants (the paper's `-B` algorithms).
    pub fn is_gpu(&self) -> bool {
        matches!(self, Device::Gpu { .. })
    }
}

/// Simulated cost constants, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One feature inference on the CPU.
    pub cpu_infer_ms: f64,
    /// Fixed overhead per GPU round (kernel launch + transfer).
    pub gpu_call_overhead_ms: f64,
    /// Marginal cost per feature inference inside a GPU round.
    pub gpu_infer_item_ms: f64,
    /// One pairwise feature distance on the CPU.
    pub cpu_dist_ms: f64,
    /// Marginal cost per pairwise distance inside a GPU round.
    pub gpu_dist_item_ms: f64,
    /// Per-track-pair bookkeeping cost of one Thompson-sampling scan
    /// (drawing θ for every live pair and taking the argmin).
    pub thompson_scan_ms_per_pair: f64,
    /// Per-track-pair bookkeeping cost of one LCB scan (recomputing every
    /// pair's confidence bound and taking the argmin) — more expensive
    /// than a Thompson draw, as in the paper's Python implementation.
    pub lcb_scan_ms_per_pair: f64,
    /// Vectorization speedup applied to scan costs when running on GPU.
    pub gpu_scan_speedup: f64,
}

impl CostModel {
    /// Constants calibrated against the paper's Table II (see DESIGN.md §6).
    pub fn calibrated() -> Self {
        Self {
            cpu_infer_ms: 15.0,
            gpu_call_overhead_ms: 2.0,
            gpu_infer_item_ms: 0.5,
            cpu_dist_ms: 0.32,
            gpu_dist_item_ms: 0.02,
            thompson_scan_ms_per_pair: 0.002,
            lcb_scan_ms_per_pair: 0.025,
            gpu_scan_speedup: 20.0,
        }
    }

    /// A free cost model, for accuracy-only experiments and tests.
    pub fn zero() -> Self {
        Self {
            cpu_infer_ms: 0.0,
            gpu_call_overhead_ms: 0.0,
            gpu_infer_item_ms: 0.0,
            cpu_dist_ms: 0.0,
            gpu_dist_item_ms: 0.0,
            thompson_scan_ms_per_pair: 0.0,
            lcb_scan_ms_per_pair: 0.0,
            gpu_scan_speedup: 1.0,
        }
    }

    /// Cost of inferring `n_new` features in one call on `device`.
    /// Zero-item calls are free (no kernel is launched).
    pub fn infer_cost_ms(&self, n_new: usize, device: Device) -> f64 {
        if n_new == 0 {
            return 0.0;
        }
        match device {
            Device::Cpu => n_new as f64 * self.cpu_infer_ms,
            Device::Gpu { .. } => self.gpu_call_overhead_ms + n_new as f64 * self.gpu_infer_item_ms,
        }
    }

    /// Cost of `n` pairwise distances on `device` (distances ride the same
    /// round as the inference call, so no extra launch overhead).
    pub fn distance_cost_ms(&self, n: usize, device: Device) -> f64 {
        match device {
            Device::Cpu => n as f64 * self.cpu_dist_ms,
            Device::Gpu { .. } => n as f64 * self.gpu_dist_item_ms,
        }
    }

    /// Bookkeeping cost of one Thompson-sampling scan over `n_pairs` pairs.
    pub fn thompson_scan_cost_ms(&self, n_pairs: usize, device: Device) -> f64 {
        let base = n_pairs as f64 * self.thompson_scan_ms_per_pair;
        if device.is_gpu() {
            base / self.gpu_scan_speedup.max(1.0)
        } else {
            base
        }
    }

    /// Bookkeeping cost of one LCB scan over `n_pairs` pairs.
    pub fn lcb_scan_cost_ms(&self, n_pairs: usize, device: Device) -> f64 {
        let base = n_pairs as f64 * self.lcb_scan_ms_per_pair;
        if device.is_gpu() {
            base / self.gpu_scan_speedup.max(1.0)
        } else {
            base
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// A simulated wall clock accumulating charged milliseconds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    elapsed_ms: f64,
}

impl SimClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `ms` simulated milliseconds.
    pub fn charge(&mut self, ms: f64) {
        debug_assert!(ms >= 0.0, "cannot charge negative time");
        self.elapsed_ms += ms;
    }

    /// Total simulated time, milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ms
    }

    /// Total simulated time, seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ms / 1000.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.elapsed_ms = 0.0;
    }

    /// Restores a checkpointed reading, replacing the current one. Resume
    /// must reproduce the exact accumulated value, so this sets rather than
    /// charges.
    pub fn set_elapsed_ms(&mut self, ms: f64) {
        self.elapsed_ms = ms;
    }
}

/// Counters describing how hard the ReID model was worked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReidStats {
    /// Feature inferences actually executed.
    pub inferences: u64,
    /// Feature requests served from the cache (the paper's reuse
    /// optimization, §IV-B).
    pub cache_hits: u64,
    /// Pairwise distances evaluated.
    pub distances: u64,
    /// GPU rounds launched (0 on CPU).
    pub gpu_rounds: u64,
    /// Extraction attempts re-issued after a backend fault. Zero on the
    /// fault-free path, so adding the counter leaves historical reports
    /// unchanged.
    pub retries: u64,
    /// Backend faults observed (transient failures, unavailability windows,
    /// corrupted replies), whether or not a retry eventually succeeded.
    pub backend_faults: u64,
}

impl ReidStats {
    /// Cache hit rate in `[0, 1]`; 0 when nothing was requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.inferences + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_inference_is_linear() {
        let c = CostModel::calibrated();
        assert_eq!(c.infer_cost_ms(0, Device::Cpu), 0.0);
        assert_eq!(c.infer_cost_ms(10, Device::Cpu), 10.0 * c.cpu_infer_ms);
    }

    #[test]
    fn gpu_inference_amortizes_overhead() {
        let c = CostModel::calibrated();
        let gpu = Device::Gpu { batch: 100 };
        let one = c.infer_cost_ms(1, gpu);
        let hundred = c.infer_cost_ms(100, gpu);
        // 100 items cost far less than 100 single-item calls.
        assert!(hundred < 100.0 * one);
        assert_eq!(c.infer_cost_ms(0, gpu), 0.0);
        // Per-item cost on GPU is below CPU for realistic batch sizes.
        assert!(hundred / 100.0 < c.cpu_infer_ms);
    }

    #[test]
    fn gpu_distances_are_cheaper() {
        let c = CostModel::calibrated();
        assert!(
            c.distance_cost_ms(1000, Device::Gpu { batch: 10 })
                < c.distance_cost_ms(1000, Device::Cpu)
        );
    }

    #[test]
    fn lcb_scan_costs_more_than_thompson() {
        let c = CostModel::calibrated();
        assert!(c.lcb_scan_cost_ms(400, Device::Cpu) > c.thompson_scan_cost_ms(400, Device::Cpu));
        // GPU vectorization shrinks both.
        assert!(
            c.lcb_scan_cost_ms(400, Device::Gpu { batch: 10 })
                < c.lcb_scan_cost_ms(400, Device::Cpu)
        );
    }

    #[test]
    fn zero_model_charges_nothing() {
        let c = CostModel::zero();
        assert_eq!(c.infer_cost_ms(100, Device::Cpu), 0.0);
        assert_eq!(c.infer_cost_ms(100, Device::Gpu { batch: 4 }), 0.0);
        assert_eq!(c.distance_cost_ms(50, Device::Cpu), 0.0);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut clk = SimClock::new();
        clk.charge(10.0);
        clk.charge(5.5);
        assert!((clk.elapsed_ms() - 15.5).abs() < 1e-12);
        assert!((clk.elapsed_secs() - 0.0155).abs() < 1e-12);
        clk.reset();
        assert_eq!(clk.elapsed_ms(), 0.0);
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = ReidStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.inferences = 3;
        s.cache_hits = 1;
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn device_batch_accessor() {
        assert_eq!(Device::Cpu.batch(), 1);
        assert_eq!(Device::Gpu { batch: 64 }.batch(), 64);
        assert_eq!(Device::Gpu { batch: 0 }.batch(), 1);
        assert!(!Device::Cpu.is_gpu());
        assert!(Device::Gpu { batch: 2 }.is_gpu());
    }
}
