//! ReID feature vectors and distances.

use serde::{Deserialize, Serialize};

/// Maximum possible Euclidean distance between two unit-norm features; the
/// paper's normalized distance `d̃` is `d / NORMALIZER ∈ [0, 1]`.
pub const NORMALIZER: f64 = 2.0;

/// A feature vector produced by the (simulated) ReID model.
///
/// Invariant: unit Euclidean norm (enforced by [`Feature::normalized`],
/// which every producer in this crate goes through).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feature(Vec<f64>);

impl Feature {
    /// Wraps raw components, rescaling to unit norm. A zero vector becomes
    /// the first basis vector to keep the unit-norm invariant.
    pub fn normalized(mut components: Vec<f64>) -> Self {
        let norm = components.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut components {
                *x /= norm;
            }
        } else if let Some(first) = components.first_mut() {
            *first = 1.0;
        }
        Feature(components)
    }

    /// Wraps raw components **verbatim** — no rescaling. Two callers need
    /// this: checkpoint restore (re-normalizing an already-unit vector would
    /// perturb the low bits and break byte-exact resume) and fault injectors
    /// that deliberately build corrupted (non-finite) vectors. Everybody
    /// else goes through [`Feature::normalized`].
    pub fn from_raw(components: Vec<f64>) -> Self {
        Feature(components)
    }

    /// True when every component is finite. A backend reply failing this
    /// check is treated as a corrupted inference and retried.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }

    /// Dimensionality of the feature space.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Raw components.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Euclidean distance — the paper's `d(b₁, b₂)`. In `[0, 2]` for unit
    /// features.
    pub fn euclidean(&self, other: &Feature) -> f64 {
        debug_assert_eq!(self.dim(), other.dim(), "feature dims must match");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Normalized Euclidean distance `d̃ = d / 2 ∈ [0, 1]` for unit
    /// features (§IV-B of the paper).
    pub fn normalized_distance(&self, other: &Feature) -> f64 {
        (self.euclidean(other) / NORMALIZER).clamp(0.0, 1.0)
    }

    /// Cosine similarity in `[-1, 1]` (used by the DeepSORT-style
    /// appearance association in `tm-track`).
    pub fn cosine_similarity(&self, other: &Feature) -> f64 {
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_rescales_to_unit_norm() {
        let f = Feature::normalized(vec![3.0, 4.0]);
        let norm: f64 = f.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        assert!((f.as_slice()[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_becomes_basis_vector() {
        let f = Feature::normalized(vec![0.0, 0.0, 0.0]);
        assert_eq!(f.as_slice(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn euclidean_of_identical_is_zero() {
        let f = Feature::normalized(vec![1.0, 2.0, 3.0]);
        assert_eq!(f.euclidean(&f), 0.0);
    }

    #[test]
    fn antipodal_unit_features_have_distance_two() {
        let a = Feature::normalized(vec![1.0, 0.0]);
        let b = Feature::normalized(vec![-1.0, 0.0]);
        assert!((a.euclidean(&b) - 2.0).abs() < 1e-12);
        assert!((a.normalized_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_unit_features() {
        let a = Feature::normalized(vec![1.0, 0.0]);
        let b = Feature::normalized(vec![0.0, 1.0]);
        assert!((a.euclidean(&b) - 2f64.sqrt()).abs() < 1e-12);
        assert!((a.cosine_similarity(&b)).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let f = Feature::normalized(vec![0.2, -0.4, 0.9]);
        assert!((f.cosine_similarity(&f) - 1.0).abs() < 1e-12);
    }
}
