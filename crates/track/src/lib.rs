//! # tm-track
//!
//! The multi-object tracking substrate: the components a tracking paper
//! takes for granted, implemented from scratch —
//!
//! * a constant-velocity [`KalmanBoxFilter`] over the SORT state space,
//! * the Hungarian algorithm ([`hungarian::min_cost_assignment`]) for
//!   globally optimal association, with a flat, spatially gated,
//!   component-decomposed production path in [`assign`],
//! * association cost matrices (IoU, appearance, combined) in [`assoc`],
//! * shared track lifecycle management in [`lifecycle`], and
//! * five trackers behind one [`Tracker`] trait: [`Sort`], [`DeepSort`],
//!   [`TracktorLike`], [`CenterTrackLike`] and [`UmaLike`] — the algorithms
//!   the paper evaluates (§V-A, §V-G).
//!
//! These trackers consume the simulated detections from `tm-detect` and
//! produce the fragmented [`tm_types::TrackSet`]s whose repair is the
//! paper's subject. See DESIGN.md §1 for exactly which parts are published
//! algorithm and which are simulation surrogates.

pub mod assign;
pub mod assoc;
pub mod hungarian;
pub mod kalman;
pub mod lifecycle;
pub mod trackers;

pub use kalman::{KalmanBoxFilter, KalmanConfig};
pub use lifecycle::{ActiveTrack, LifecycleConfig, TrackManager};
pub use trackers::{
    track_video, ByteTrack, ByteTrackConfig, CenterTrackLike, CenterTrackLikeConfig, DeepSort,
    DeepSortConfig, IouTracker, IouTrackerConfig, Sort, SortConfig, Tracker, TrackerKind,
    TracktorLike, TracktorLikeConfig, UmaLike, UmaLikeConfig,
};
