//! Association costs between active tracks and detections.
//!
//! Two generations of API live here. The dense matrix builders
//! ([`iou_cost`], [`appearance_cost`], [`combined_cost`]) score every
//! track × detection pair and mark inadmissible ones with [`FORBIDDEN`];
//! they remain as the reference path. The edge builders ([`iou_edges`],
//! [`iou_edges_sub`], [`combined_edges_sub`]) produce only the admissible
//! pairs, using a [`BoxGrid`] to skip pairs that cannot pass an IoU gate,
//! and feed [`crate::assign::assign_sparse`] — same matches, less work.

use crate::assign::{AssignmentScratch, BoxGrid, Edge};
use crate::hungarian::FORBIDDEN;
use crate::lifecycle::ActiveTrack;
use tm_reid::Feature;
use tm_types::Detection;

/// IoU cost matrix: `1 − IoU(predicted track box, detection box)`, with
/// class mismatches forbidden. Rows are tracks, columns detections.
pub fn iou_cost(tracks: &[ActiveTrack], dets: &[Detection]) -> Vec<Vec<f64>> {
    tracks
        .iter()
        .map(|t| {
            dets.iter()
                .map(|d| {
                    if t.class != d.class {
                        FORBIDDEN
                    } else {
                        1.0 - t.predicted.iou(&d.bbox)
                    }
                })
                .collect()
        })
        .collect()
}

/// Appearance cost matrix: normalized Euclidean feature distance in
/// `[0, 1]`. Tracks without a gallery feature get a neutral cost of 0.5;
/// class mismatches are forbidden.
pub fn appearance_cost(
    tracks: &[ActiveTrack],
    dets: &[Detection],
    det_features: &[Feature],
) -> Vec<Vec<f64>> {
    debug_assert_eq!(dets.len(), det_features.len());
    tracks
        .iter()
        .map(|t| {
            dets.iter()
                .zip(det_features)
                .map(|(d, f)| {
                    if t.class != d.class {
                        FORBIDDEN
                    } else {
                        match &t.feature {
                            Some(g) => g.normalized_distance(f),
                            None => 0.5,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Convex combination `λ·a + (1−λ)·b`, preserving forbidden entries.
pub fn combined_cost(a: &[Vec<f64>], b: &[Vec<f64>], lambda: f64) -> Vec<Vec<f64>> {
    let l = lambda.clamp(0.0, 1.0);
    a.iter()
        .zip(b)
        .map(|(ra, rb)| {
            ra.iter()
                .zip(rb)
                .map(|(&ca, &cb)| {
                    if ca >= FORBIDDEN || cb >= FORBIDDEN {
                        FORBIDDEN
                    } else {
                        l * ca + (1.0 - l) * cb
                    }
                })
                .collect()
        })
        .collect()
}

/// Reusable working memory for edge building and assignment in a tracker's
/// per-frame loop. One per tracker instance; no per-frame allocations after
/// warm-up.
#[derive(Debug, Clone, Default)]
pub struct AssocScratch {
    grid: BoxGrid,
    det_boxes: Vec<tm_types::BBox>,
    cand: Vec<u32>,
    track_idx_buf: Vec<usize>,
    det_idx_buf: Vec<usize>,
    /// Admissible edges produced by the last builder call, sorted by
    /// `(row, col)` — ready for [`crate::assign::assign_sparse`].
    pub edges: Vec<Edge>,
    /// Solver scratch, borrowable disjointly from `edges`.
    pub assign: AssignmentScratch,
}

impl AssocScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Builds into `s.edges` the admissible IoU edges between all `tracks` and
/// all `dets`: pair `(t, d)` is admissible iff the classes match and
/// `1 − IoU(t.predicted, d.bbox) ≤ max_cost`.
///
/// Produces exactly the `≤ max_cost` entries of [`iou_cost`], but when
/// `max_cost < 1.0` (so zero-IoU pairs are inadmissible) only grid
/// candidate pairs are ever scored.
pub fn iou_edges(tracks: &[ActiveTrack], dets: &[Detection], max_cost: f64, s: &mut AssocScratch) {
    let track_idxs = std::mem::take(&mut s.track_idx_buf);
    let det_idxs = std::mem::take(&mut s.det_idx_buf);
    let track_idxs = refill_identity(track_idxs, tracks.len());
    let det_idxs = refill_identity(det_idxs, dets.len());
    iou_edges_sub(tracks, &track_idxs, dets, &det_idxs, max_cost, s);
    s.track_idx_buf = track_idxs;
    s.det_idx_buf = det_idxs;
}

fn refill_identity(mut buf: Vec<usize>, n: usize) -> Vec<usize> {
    buf.clear();
    buf.extend(0..n);
    buf
}

/// [`iou_edges`] over index subsets: row `r` of the produced edges is
/// `tracks[track_idxs[r]]`, column `c` is `dets[det_idxs[c]]`. Lets stage /
/// cascade trackers associate subsets without cloning tracks or detections.
pub fn iou_edges_sub(
    tracks: &[ActiveTrack],
    track_idxs: &[usize],
    dets: &[Detection],
    det_idxs: &[usize],
    max_cost: f64,
    s: &mut AssocScratch,
) {
    s.edges.clear();
    // A pair with zero IoU costs exactly 1.0, so the spatial gate is sound
    // only when such pairs are inadmissible.
    let gated = max_cost < 1.0;
    if gated {
        s.det_boxes.clear();
        s.det_boxes.extend(det_idxs.iter().map(|&i| dets[i].bbox));
        s.grid.rebuild(&s.det_boxes);
    }
    for (r, &ti) in track_idxs.iter().enumerate() {
        let t = &tracks[ti];
        if gated {
            s.grid.candidates(&t.predicted, &mut s.cand);
            for &c in &s.cand {
                let d = &dets[det_idxs[c as usize]];
                if t.class != d.class {
                    continue;
                }
                let cost = 1.0 - t.predicted.iou(&d.bbox);
                if cost <= max_cost {
                    s.edges.push(Edge {
                        row: r as u32,
                        col: c,
                        cost,
                    });
                }
            }
        } else {
            for (c, &di) in det_idxs.iter().enumerate() {
                let d = &dets[di];
                if t.class != d.class {
                    continue;
                }
                let cost = 1.0 - t.predicted.iou(&d.bbox);
                if cost <= max_cost {
                    s.edges.push(Edge {
                        row: r as u32,
                        col: c as u32,
                        cost,
                    });
                }
            }
        }
    }
}

/// Builds into `s.edges` the admissible combined IoU + appearance edges
/// over index subsets, with the same arithmetic as
/// [`combined_cost`]`(`[`iou_cost`]`, `[`appearance_cost`]`, lambda_iou)`:
/// `λ·(1 − IoU) + (1 − λ)·appearance ≤ max_cost`, classes must match.
///
/// `det_features` is indexed by *original* detection index (like `dets`).
/// `iou_min_recent`, when set, additionally requires
/// `1 − IoU ≤ 1 − iou_min_recent` (DeepSORT's recent-track gate); since
/// that bounds admissible pairs to intersecting boxes, the grid applies and
/// appearance distances are only computed for pairs that pass the IoU gate.
/// Without it appearance-only matches are legal and every class-matching
/// pair is scored.
#[allow(clippy::too_many_arguments)]
pub fn combined_edges_sub(
    tracks: &[ActiveTrack],
    track_idxs: &[usize],
    dets: &[Detection],
    det_idxs: &[usize],
    det_features: &[Feature],
    lambda_iou: f64,
    max_cost: f64,
    iou_min_recent: Option<f64>,
    s: &mut AssocScratch,
) {
    s.edges.clear();
    let l = lambda_iou.clamp(0.0, 1.0);
    let iou_gate = iou_min_recent.map(|g| 1.0 - g);
    let gated = matches!(iou_gate, Some(g) if g < 1.0);
    if gated {
        s.det_boxes.clear();
        s.det_boxes.extend(det_idxs.iter().map(|&i| dets[i].bbox));
        s.grid.rebuild(&s.det_boxes);
    }
    let push = |r: usize, c: usize, t: &ActiveTrack, di: usize, edges: &mut Vec<Edge>| {
        let d = &dets[di];
        if t.class != d.class {
            return;
        }
        let cost_iou = 1.0 - t.predicted.iou(&d.bbox);
        if let Some(g) = iou_gate {
            if cost_iou > g {
                return;
            }
        }
        // Appearance cost is ≥ 0, so the IoU term alone can disqualify the
        // pair before the (more expensive) feature distance is touched.
        if l * cost_iou > max_cost {
            return;
        }
        let cost_app = match &t.feature {
            Some(gallery) => gallery.normalized_distance(&det_features[di]),
            None => 0.5,
        };
        let cost = l * cost_iou + (1.0 - l) * cost_app;
        if cost <= max_cost {
            edges.push(Edge {
                row: r as u32,
                col: c as u32,
                cost,
            });
        }
    };
    for (r, &ti) in track_idxs.iter().enumerate() {
        let t = &tracks[ti];
        if gated {
            s.grid.candidates(&t.predicted, &mut s.cand);
            for &c in &s.cand {
                push(r, c as usize, t, det_idxs[c as usize], &mut s.edges);
            }
        } else {
            for (c, &di) in det_idxs.iter().enumerate() {
                push(r, c, t, di, &mut s.edges);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kalman::KalmanConfig;
    use crate::lifecycle::{LifecycleConfig, TrackManager};
    use tm_types::{ids::classes, BBox, Detection, FrameIdx, GtObjectId};

    fn det_at(x: f64, class: tm_types::ClassId) -> Detection {
        Detection::of_actor(
            FrameIdx(0),
            BBox::new(x, 0.0, 10.0, 10.0),
            0.9,
            class,
            1.0,
            GtObjectId(1),
        )
    }

    fn manager_with_track(x: f64) -> TrackManager {
        let mut m = TrackManager::new(LifecycleConfig {
            max_age: 5,
            min_hits: 1,
            min_confidence: 0.1,
            kalman: KalmanConfig::default(),
        });
        m.spawn(&det_at(x, classes::PEDESTRIAN), None);
        m
    }

    #[test]
    fn iou_cost_zero_for_identical_boxes() {
        let m = manager_with_track(5.0);
        let cost = iou_cost(&m.active, &[det_at(5.0, classes::PEDESTRIAN)]);
        assert!(cost[0][0] < 1e-9);
    }

    #[test]
    fn iou_cost_one_for_disjoint_boxes() {
        let m = manager_with_track(0.0);
        let cost = iou_cost(&m.active, &[det_at(100.0, classes::PEDESTRIAN)]);
        assert!((cost[0][0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn class_mismatch_is_forbidden() {
        let m = manager_with_track(0.0);
        let cost = iou_cost(&m.active, &[det_at(0.0, classes::CAR)]);
        assert_eq!(cost[0][0], FORBIDDEN);
    }

    #[test]
    fn appearance_cost_neutral_without_gallery() {
        let m = manager_with_track(0.0);
        let d = det_at(0.0, classes::PEDESTRIAN);
        let f = Feature::normalized(vec![1.0, 0.0]);
        let cost = appearance_cost(&m.active, &[d], &[f]);
        assert_eq!(cost[0][0], 0.5);
    }

    #[test]
    fn appearance_cost_uses_gallery_distance() {
        let mut m = manager_with_track(0.0);
        m.active[0].feature = Some(Feature::normalized(vec![1.0, 0.0]));
        let d = det_at(0.0, classes::PEDESTRIAN);
        let same = Feature::normalized(vec![1.0, 0.0]);
        let opposite = Feature::normalized(vec![-1.0, 0.0]);
        let cost = appearance_cost(&m.active, &[d, d], &[same, opposite]);
        assert!(cost[0][0] < 1e-9);
        assert!((cost[0][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn combined_cost_interpolates_and_keeps_forbidden() {
        let a = vec![vec![0.0, FORBIDDEN]];
        let b = vec![vec![1.0, 0.0]];
        let c = combined_cost(&a, &b, 0.25);
        assert!((c[0][0] - 0.75).abs() < 1e-9);
        assert_eq!(c[0][1], FORBIDDEN);
    }

    mod edge_equivalence {
        use super::super::{
            appearance_cost, combined_cost, combined_edges_sub, iou_cost, iou_edges, iou_edges_sub,
            AssocScratch,
        };
        use crate::assign::assign_sparse;
        use crate::hungarian::{assign_with_threshold_reference, FORBIDDEN};
        use crate::kalman::KalmanConfig;
        use crate::lifecycle::{ActiveTrack, LifecycleConfig, TrackManager};
        use proptest::prelude::*;
        use tm_reid::Feature;
        use tm_types::{ids::classes, BBox, ClassId, Detection, FrameIdx, GtObjectId};

        /// Spawns one confirmed track per `(box, class)` pair; `predicted`
        /// equals the spawn box, which is all the builders read.
        fn tracks_of(boxes: &[(BBox, ClassId)]) -> TrackManager {
            let mut m = TrackManager::new(LifecycleConfig {
                max_age: 5,
                min_hits: 1,
                min_confidence: 0.1,
                kalman: KalmanConfig::default(),
            });
            for (b, class) in boxes {
                let d = Detection::of_actor(FrameIdx(0), *b, 0.9, *class, 1.0, GtObjectId(1));
                m.spawn(&d, None);
            }
            m
        }

        fn dets_of(boxes: &[(BBox, ClassId)]) -> Vec<Detection> {
            boxes
                .iter()
                .map(|(b, class)| {
                    Detection::of_actor(FrameIdx(1), *b, 0.9, *class, 1.0, GtObjectId(1))
                })
                .collect()
        }

        /// The admissible `(row, col, cost)` triples of a dense matrix —
        /// what a correct edge builder must produce, in row-major order.
        fn dense_admissible(dense: &[Vec<f64>], max_cost: f64) -> Vec<(u32, u32, f64)> {
            let mut out = Vec::new();
            for (i, row) in dense.iter().enumerate() {
                for (j, &c) in row.iter().enumerate() {
                    if c <= max_cost {
                        out.push((i as u32, j as u32, c));
                    }
                }
            }
            out
        }

        fn edge_triples(s: &AssocScratch) -> Vec<(u32, u32, f64)> {
            s.edges.iter().map(|e| (e.row, e.col, e.cost)).collect()
        }

        fn boxes_strategy(max_len: usize) -> impl Strategy<Value = Vec<(BBox, ClassId)>> {
            proptest::collection::vec(
                (
                    0.0f64..300.0,
                    0.0f64..300.0,
                    5.0f64..60.0,
                    5.0f64..60.0,
                    any::<bool>(),
                ),
                0..max_len,
            )
            .prop_map(|raw| {
                raw.into_iter()
                    .map(|(x, y, w, h, ped)| {
                        let class = if ped {
                            classes::PEDESTRIAN
                        } else {
                            classes::CAR
                        };
                        (BBox::new(x, y, w, h), class)
                    })
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The gated IoU edge builder produces exactly the admissible
            /// cells of the dense `iou_cost` matrix (grid gating loses
            /// nothing, costs are bit-identical), and the sparse solve
            /// reproduces the dense reference's matches. With `max_cost =
            /// 1.0` disjoint boxes are admissible at cost exactly 1.0,
            /// which creates genuine exact ties; on ties the sentinel
            /// reference's match permutation is an artifact of its forced
            /// `FORBIDDEN` placements (see `assign.rs`), so there the
            /// comparison is cardinality + total cost.
            #[test]
            fn iou_edges_match_dense_reference(
                track_boxes in boxes_strategy(20),
                det_boxes in boxes_strategy(20),
                max_cost in proptest::sample::select(vec![0.3, 0.5, 0.7, 1.0]),
            ) {
                let manager = tracks_of(&track_boxes);
                let dets = dets_of(&det_boxes);
                let dense = iou_cost(&manager.active, &dets);
                let expected = assign_with_threshold_reference(&dense, max_cost);
                let mut s = AssocScratch::new();
                iou_edges(&manager.active, &dets, max_cost, &mut s);
                prop_assert_eq!(edge_triples(&s), dense_admissible(&dense, max_cost));
                let got: Vec<(usize, usize)> =
                    assign_sparse(manager.active.len(), dets.len(), &s.edges, &mut s.assign)
                        .iter()
                        .map(|&(r, c)| (r as usize, c as usize))
                        .collect();
                if max_cost < 1.0 {
                    // Continuous boxes make sub-1.0 cost ties measure-zero:
                    // exact match equality.
                    prop_assert_eq!(got, expected);
                } else {
                    prop_assert_eq!(got.len(), expected.len());
                    let total = |ms: &[(usize, usize)]| -> f64 {
                        ms.iter().map(|&(r, c)| dense[r][c]).sum()
                    };
                    prop_assert!((total(&got) - total(&expected)).abs() < 1e-9,
                        "total {} vs reference {}", total(&got), total(&expected));
                }
            }

            /// The subset builder agrees with cloning the subsets out and
            /// running the dense reference on them (ByteTrack's old path).
            #[test]
            fn iou_edges_sub_match_dense_reference(
                track_boxes in boxes_strategy(16),
                det_boxes in boxes_strategy(16),
                keep in proptest::collection::vec(any::<bool>(), 32),
            ) {
                let manager = tracks_of(&track_boxes);
                let dets = dets_of(&det_boxes);
                let track_idxs: Vec<usize> = (0..manager.active.len())
                    .filter(|&i| keep[i])
                    .collect();
                let det_idxs: Vec<usize> = (0..dets.len())
                    .filter(|&i| keep[16 + i])
                    .collect();
                let sub_tracks: Vec<ActiveTrack> = track_idxs
                    .iter()
                    .map(|&i| manager.active[i].clone())
                    .collect();
                let sub_dets: Vec<Detection> = det_idxs.iter().map(|&i| dets[i]).collect();
                let max_cost = 0.7;
                let dense = iou_cost(&sub_tracks, &sub_dets);
                let expected = assign_with_threshold_reference(&dense, max_cost);
                let mut s = AssocScratch::new();
                iou_edges_sub(&manager.active, &track_idxs, &dets, &det_idxs, max_cost, &mut s);
                prop_assert_eq!(edge_triples(&s), dense_admissible(&dense, max_cost));
                let got: Vec<(usize, usize)> =
                    assign_sparse(track_idxs.len(), det_idxs.len(), &s.edges, &mut s.assign)
                        .iter()
                        .map(|&(r, c)| (r as usize, c as usize))
                        .collect();
                prop_assert_eq!(got, expected);
            }

            /// Combined-cost edges reproduce the dense
            /// `combined_cost(iou, appearance)` reference, with and without
            /// the recent-track IoU gate.
            #[test]
            fn combined_edges_match_dense_reference(
                track_boxes in boxes_strategy(14),
                det_boxes in boxes_strategy(14),
                with_gate in any::<bool>(),
            ) {
                let mut manager = tracks_of(&track_boxes);
                // Give every other track a gallery feature so both arms of
                // the appearance cost are exercised. Every gallery and every
                // detection feature is distinct, so no two admissible pairs
                // can carry the exact same combined cost (the no-gallery
                // 0.5-appearance arm only matters for intersecting boxes,
                // whose IoU term is continuous): exact ties cannot occur
                // and match sets must agree exactly with the reference.
                for (i, t) in manager.active.iter_mut().enumerate() {
                    if i % 2 == 0 {
                        t.feature =
                            Some(Feature::normalized(vec![1.0, 0.3 + 0.17 * i as f64]));
                    }
                }
                let dets = dets_of(&det_boxes);
                let det_features: Vec<Feature> = (0..dets.len())
                    .map(|i| {
                        Feature::normalized(vec![1.0, 0.05 + 0.11 * i as f64])
                    })
                    .collect();
                let (lambda_iou, max_cost) = (0.4, 0.45);
                let iou = iou_cost(&manager.active, &dets);
                let app = appearance_cost(&manager.active, &dets, &det_features);
                let mut dense = combined_cost(&iou, &app, lambda_iou);
                let gate = if with_gate { Some(0.2) } else { None };
                if let Some(g) = gate {
                    for (r, row) in dense.iter_mut().enumerate() {
                        for (c, v) in row.iter_mut().enumerate() {
                            if iou[r][c] > 1.0 - g {
                                *v = FORBIDDEN;
                            }
                        }
                    }
                }
                let expected = assign_with_threshold_reference(&dense, max_cost);
                let mut s = AssocScratch::new();
                let track_idxs: Vec<usize> = (0..manager.active.len()).collect();
                let det_idxs: Vec<usize> = (0..dets.len()).collect();
                combined_edges_sub(
                    &manager.active,
                    &track_idxs,
                    &dets,
                    &det_idxs,
                    &det_features,
                    lambda_iou,
                    max_cost,
                    gate,
                    &mut s,
                );
                prop_assert_eq!(edge_triples(&s), dense_admissible(&dense, max_cost));
                let got: Vec<(usize, usize)> =
                    assign_sparse(track_idxs.len(), det_idxs.len(), &s.edges, &mut s.assign)
                        .iter()
                        .map(|&(r, c)| (r as usize, c as usize))
                        .collect();
                prop_assert_eq!(got, expected);
            }
        }
    }
}
