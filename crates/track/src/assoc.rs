//! Association cost matrices between active tracks and detections.

use crate::hungarian::FORBIDDEN;
use crate::lifecycle::ActiveTrack;
use tm_reid::Feature;
use tm_types::Detection;

/// IoU cost matrix: `1 − IoU(predicted track box, detection box)`, with
/// class mismatches forbidden. Rows are tracks, columns detections.
pub fn iou_cost(tracks: &[ActiveTrack], dets: &[Detection]) -> Vec<Vec<f64>> {
    tracks
        .iter()
        .map(|t| {
            dets.iter()
                .map(|d| {
                    if t.class != d.class {
                        FORBIDDEN
                    } else {
                        1.0 - t.predicted.iou(&d.bbox)
                    }
                })
                .collect()
        })
        .collect()
}

/// Appearance cost matrix: normalized Euclidean feature distance in
/// `[0, 1]`. Tracks without a gallery feature get a neutral cost of 0.5;
/// class mismatches are forbidden.
pub fn appearance_cost(
    tracks: &[ActiveTrack],
    dets: &[Detection],
    det_features: &[Feature],
) -> Vec<Vec<f64>> {
    debug_assert_eq!(dets.len(), det_features.len());
    tracks
        .iter()
        .map(|t| {
            dets.iter()
                .zip(det_features)
                .map(|(d, f)| {
                    if t.class != d.class {
                        FORBIDDEN
                    } else {
                        match &t.feature {
                            Some(g) => g.normalized_distance(f),
                            None => 0.5,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Convex combination `λ·a + (1−λ)·b`, preserving forbidden entries.
pub fn combined_cost(a: &[Vec<f64>], b: &[Vec<f64>], lambda: f64) -> Vec<Vec<f64>> {
    let l = lambda.clamp(0.0, 1.0);
    a.iter()
        .zip(b)
        .map(|(ra, rb)| {
            ra.iter()
                .zip(rb)
                .map(|(&ca, &cb)| {
                    if ca >= FORBIDDEN || cb >= FORBIDDEN {
                        FORBIDDEN
                    } else {
                        l * ca + (1.0 - l) * cb
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kalman::KalmanConfig;
    use crate::lifecycle::{LifecycleConfig, TrackManager};
    use tm_types::{ids::classes, BBox, Detection, FrameIdx, GtObjectId};

    fn det_at(x: f64, class: tm_types::ClassId) -> Detection {
        Detection::of_actor(
            FrameIdx(0),
            BBox::new(x, 0.0, 10.0, 10.0),
            0.9,
            class,
            1.0,
            GtObjectId(1),
        )
    }

    fn manager_with_track(x: f64) -> TrackManager {
        let mut m = TrackManager::new(LifecycleConfig {
            max_age: 5,
            min_hits: 1,
            min_confidence: 0.1,
            kalman: KalmanConfig::default(),
        });
        m.spawn(&det_at(x, classes::PEDESTRIAN), None);
        m
    }

    #[test]
    fn iou_cost_zero_for_identical_boxes() {
        let m = manager_with_track(5.0);
        let cost = iou_cost(&m.active, &[det_at(5.0, classes::PEDESTRIAN)]);
        assert!(cost[0][0] < 1e-9);
    }

    #[test]
    fn iou_cost_one_for_disjoint_boxes() {
        let m = manager_with_track(0.0);
        let cost = iou_cost(&m.active, &[det_at(100.0, classes::PEDESTRIAN)]);
        assert!((cost[0][0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn class_mismatch_is_forbidden() {
        let m = manager_with_track(0.0);
        let cost = iou_cost(&m.active, &[det_at(0.0, classes::CAR)]);
        assert_eq!(cost[0][0], FORBIDDEN);
    }

    #[test]
    fn appearance_cost_neutral_without_gallery() {
        let m = manager_with_track(0.0);
        let d = det_at(0.0, classes::PEDESTRIAN);
        let f = Feature::normalized(vec![1.0, 0.0]);
        let cost = appearance_cost(&m.active, &[d], &[f]);
        assert_eq!(cost[0][0], 0.5);
    }

    #[test]
    fn appearance_cost_uses_gallery_distance() {
        let mut m = manager_with_track(0.0);
        m.active[0].feature = Some(Feature::normalized(vec![1.0, 0.0]));
        let d = det_at(0.0, classes::PEDESTRIAN);
        let same = Feature::normalized(vec![1.0, 0.0]);
        let opposite = Feature::normalized(vec![-1.0, 0.0]);
        let cost = appearance_cost(&m.active, &[d, d], &[same, opposite]);
        assert!(cost[0][0] < 1e-9);
        assert!((cost[0][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn combined_cost_interpolates_and_keeps_forbidden() {
        let a = vec![vec![0.0, FORBIDDEN]];
        let b = vec![vec![1.0, 0.0]];
        let c = combined_cost(&a, &b, 0.25);
        assert!((c[0][0] - 0.75).abs() < 1e-9);
        assert_eq!(c[0][1], FORBIDDEN);
    }
}
