//! The flat, gated, component-decomposed assignment core.
//!
//! Everything per-frame in the trackers and metrics funnels through the
//! Kuhn–Munkres solver, so this module rebuilds it around three ideas:
//!
//! 1. **Flat storage + scratch reuse.** [`min_cost_assignment_flat`] solves a
//!    row-major `&[f64]` with all working buffers (potentials, slack,
//!    visited flags) held in a caller-owned [`AssignmentScratch`], so a
//!    per-frame loop performs no allocations. The `n > m` case solves the
//!    transposed problem, staged into a reused scratch buffer rather than a
//!    freshly allocated matrix.
//! 2. **Explicit gating.** [`assign_sparse`] takes the *admissible* pairs as
//!    an [`Edge`] list instead of a dense matrix with `FORBIDDEN` sentinels.
//!    Callers build edges only for geometrically plausible pairs (usually
//!    via [`BoxGrid`]), so IoU/appearance costs are never evaluated for
//!    pairs a threshold would discard anyway.
//! 3. **Connected-component decomposition.** The bipartite admissibility
//!    graph is split with a union–find; each component is solved as its own
//!    tiny dense problem. Components are discovered in edge order and rows /
//!    columns are kept in ascending original order inside each sub-problem,
//!    and the kernel's strict-`<` minimum selection is byte-for-byte the
//!    reference solver's, so ties break identically and the final match set
//!    equals the dense reference (`assign_with_threshold_reference`) —
//!    pinned by proptests in this module and in `hungarian.rs`.
//!
//! The original allocating solver survives as
//! [`crate::hungarian::min_cost_assignment_reference`] and is the oracle for
//! every equivalence test.

use crate::hungarian::FORBIDDEN;
use tm_types::BBox;

/// One admissible (row, column) candidate with its cost.
///
/// Edge lists handed to [`assign_sparse`] must be sorted by `(row, col)`
/// with no duplicates — the natural order when edges are emitted row by row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Row (track) index.
    pub row: u32,
    /// Column (detection) index.
    pub col: u32,
    /// Finite cost of this pairing; must be `< FORBIDDEN`.
    pub cost: f64,
}

/// Cumulative solver statistics, accumulated with plain integer adds on
/// the scratch (never a sink call per solve — the solvers sit in per-frame
/// hot loops) and handed to an observer at a batch boundary via
/// [`AssignStats::flush`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssignStats {
    /// Dense [`min_cost_assignment_flat`] solves.
    pub dense_solves: u64,
    /// Sparse component-decomposed solves ([`assign_sparse`] family).
    pub sparse_solves: u64,
    /// Connected components across all sparse solves.
    pub components: u64,
    /// [`iou_threshold_matches`] calls that took the grid-gated path.
    pub gated_matches: u64,
    /// [`iou_threshold_matches`] calls that fell back to the dense solve.
    pub dense_fallbacks: u64,
    /// Detections featurized fresh by a selectively-featurizing tracker
    /// (zero when selective featurization is off — see
    /// `DeepSortConfig::selective_featurize`).
    pub features_extracted: u64,
    /// Detections that reused a matched track's gallery feature instead
    /// of being featurized.
    pub features_reused: u64,
}

impl AssignStats {
    /// Emits the accumulated counts to `obs` and resets them. Call once
    /// per video / metric computation, not per frame. The featurization
    /// counters only exist when a tracker ran selective featurization, so
    /// they are dropped at zero — trackers that never gate keep their
    /// historical counter set byte-for-byte.
    pub fn flush(&mut self, obs: &tm_obs::Obs) {
        if obs.enabled() {
            obs.counter("assign.dense_solves", self.dense_solves);
            obs.counter("assign.sparse_solves", self.sparse_solves);
            obs.counter("assign.components", self.components);
            obs.counter("assign.gated_matches", self.gated_matches);
            obs.counter("assign.dense_fallbacks", self.dense_fallbacks);
            if self.features_extracted > 0 || self.features_reused > 0 {
                obs.counter("assign.features_extracted", self.features_extracted);
                obs.counter("assign.features_reused", self.features_reused);
            }
        }
        *self = Self::default();
    }
}

/// Reusable working memory for the assignment solvers.
///
/// Create one per tracker / metric computation and thread it through the
/// per-frame loop; after warm-up no solve allocates.
#[derive(Debug, Clone, Default)]
pub struct AssignmentScratch {
    /// Solver statistics since the last [`AssignStats::flush`].
    pub stats: AssignStats,
    // Kuhn–Munkres buffers (1-indexed; index 0 is the virtual source).
    u: Vec<f64>,
    v: Vec<f64>,
    matched_row: Vec<usize>,
    way: Vec<usize>,
    min_slack: Vec<f64>,
    used: Vec<bool>,
    row_to_col: Vec<Option<usize>>,
    col_to_row: Vec<Option<usize>>,
    // Component decomposition buffers.
    parent: Vec<u32>,
    comp_of_edge: Vec<u32>,
    comp_of_node: Vec<u32>,
    edge_order: Vec<u32>,
    comp_rows: Vec<u32>,
    comp_cols: Vec<u32>,
    row_local: Vec<u32>,
    col_local: Vec<u32>,
    submat: Vec<f64>,
    transpose: Vec<f64>,
    matches: Vec<(u32, u32)>,
}

impl AssignmentScratch {
    /// Creates an empty scratch; buffers grow to the working-set size on
    /// first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The O(n²·m) potentials sweep, identical in arithmetic (and therefore in
/// tie-breaking) to `min_cost_assignment_reference`, over a row-major flat
/// `n × m` matrix with every buffer reused. The current row slice and row
/// potential are hoisted out of the inner scan — the layout the optimizer
/// needs to keep the slack loop tight. Requires `1 ≤ n ≤ m`; fills
/// `s.row_to_col` (length `n`, every row assigned).
fn kuhn_munkres(n: usize, m: usize, cost: &[f64], s: &mut AssignmentScratch) {
    s.u.clear();
    s.u.resize(n + 1, 0.0);
    s.v.clear();
    s.v.resize(m + 1, 0.0);
    s.matched_row.clear();
    s.matched_row.resize(m + 1, 0);
    s.way.clear();
    s.way.resize(m + 1, 0);
    s.min_slack.clear();
    s.min_slack.resize(m + 1, f64::INFINITY);
    s.used.clear();
    s.used.resize(m + 1, false);
    // Hand the buffers to the sweep as distinct `&mut` slice *parameters*:
    // `noalias` metadata attaches at function boundaries, so this gives the
    // optimizer the same no-aliasing guarantee the reference solver gets
    // from fresh local `Vec`s. Exact-length slices let it drop the inner
    // bounds checks too.
    let AssignmentScratch {
        u,
        v,
        matched_row,
        way,
        min_slack,
        used,
        ..
    } = s;
    kuhn_munkres_sweep(
        n,
        m,
        cost,
        &mut u[..n + 1],
        &mut v[..m + 1],
        &mut matched_row[..m + 1],
        &mut way[..m + 1],
        &mut min_slack[..m + 1],
        &mut used[..m + 1],
    );
    s.row_to_col.clear();
    s.row_to_col.resize(n, None);
    for j in 1..=m {
        if s.matched_row[j] != 0 {
            s.row_to_col[s.matched_row[j] - 1] = Some(j - 1);
        }
    }
}

/// The potentials sweep proper, over preallocated 1-indexed buffers. A
/// separate function so each buffer is an independent `noalias` parameter.
#[allow(clippy::too_many_arguments)]
fn kuhn_munkres_sweep(
    n: usize,
    m: usize,
    cost: &[f64],
    u: &mut [f64],
    v: &mut [f64],
    matched_row: &mut [usize],
    way: &mut [usize],
    min_slack: &mut [f64],
    used: &mut [bool],
) {
    for i in 1..=n {
        matched_row[0] = i;
        let mut j0 = 0usize;
        min_slack.fill(f64::INFINITY);
        used.fill(false);
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let row = &cost[(i0 - 1) * m..i0 * m];
            let u_i0 = u[i0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let slack = row[j - 1] - u_i0 - v[j];
                if slack < min_slack[j] {
                    min_slack[j] = slack;
                    way[j] = j0;
                }
                if min_slack[j] < delta {
                    delta = min_slack[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    min_slack[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
}

/// Dense solve of a row-major flat `n × m` cost matrix into `s.row_to_col`.
/// When `n > m` the transpose is staged into a reused scratch buffer and
/// the inverted problem solved — the same strategy as the reference
/// solver's materialized transpose, without the per-call allocation.
fn solve_dense(n: usize, m: usize, cost: &[f64], s: &mut AssignmentScratch) {
    if n == 0 {
        s.row_to_col.clear();
        return;
    }
    if m == 0 {
        s.row_to_col.clear();
        s.row_to_col.resize(n, None);
        return;
    }
    if n > m {
        let mut tr = std::mem::take(&mut s.transpose);
        tr.clear();
        tr.reserve(n * m);
        for j in 0..m {
            tr.extend((0..n).map(|i| cost[i * m + j]));
        }
        kuhn_munkres(m, n, &tr, s);
        s.transpose = tr;
        s.col_to_row.clear();
        s.col_to_row.extend_from_slice(&s.row_to_col);
        s.row_to_col.clear();
        s.row_to_col.resize(n, None);
        for (j, row) in s.col_to_row.iter().enumerate() {
            if let Some(i) = row {
                s.row_to_col[*i] = Some(j);
            }
        }
    } else {
        kuhn_munkres(n, m, cost, s);
    }
}

/// Flat-storage minimum-cost assignment: solves the row-major
/// `n_rows × n_cols` matrix `cost` (so `cost[i * n_cols + j]` is entry
/// `(i, j)`) and returns, for each row, the assigned column.
///
/// Identical results to [`crate::hungarian::min_cost_assignment_reference`]
/// — same arithmetic, same tie-breaking — but with no per-call matrix
/// allocation; the `n_rows > n_cols` transpose is staged in the reused
/// scratch.
pub fn min_cost_assignment_flat(
    cost: &[f64],
    n_rows: usize,
    n_cols: usize,
    scratch: &mut AssignmentScratch,
) -> Vec<Option<usize>> {
    assert_eq!(
        cost.len(),
        n_rows * n_cols,
        "flat cost matrix has wrong length"
    );
    scratch.stats.dense_solves += 1;
    solve_dense(n_rows, n_cols, cost, scratch);
    scratch.row_to_col.clone()
}

/// [`min_cost_assignment_flat`] with the result written into a reused
/// buffer (cleared first) instead of a freshly allocated `Vec`, so
/// steady-state per-frame solves allocate nothing once the scratch and
/// `out` have grown to the working-set size.
pub fn min_cost_assignment_into(
    cost: &[f64],
    n_rows: usize,
    n_cols: usize,
    scratch: &mut AssignmentScratch,
    out: &mut Vec<Option<usize>>,
) {
    assert_eq!(
        cost.len(),
        n_rows * n_cols,
        "flat cost matrix has wrong length"
    );
    scratch.stats.dense_solves += 1;
    solve_dense(n_rows, n_cols, cost, scratch);
    out.clear();
    out.extend_from_slice(&scratch.row_to_col);
}

fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        parent[rb as usize] = ra;
    }
}

/// Sparse gated assignment: solves the minimum-cost matching restricted to
/// the admissible `edges` of an `n_rows × n_cols` bipartite problem and
/// returns the matched `(row, col)` pairs, sorted by row.
///
/// Equivalent to masking every non-edge with [`FORBIDDEN`] and running the
/// dense reference solver, then dropping forbidden matches — but the
/// admissibility graph is split into connected components first and each
/// component is solved as its own tiny dense problem, so the work scales
/// with component sizes instead of `n_rows × n_cols`.
///
/// `edges` must be sorted by `(row, col)` without duplicates, every cost
/// finite and `< FORBIDDEN`.
pub fn assign_sparse<'s>(
    n_rows: usize,
    n_cols: usize,
    edges: &[Edge],
    scratch: &'s mut AssignmentScratch,
) -> &'s [(u32, u32)] {
    solve_components(n_rows, n_cols, edges, FORBIDDEN, scratch);
    &scratch.matches
}

/// [`assign_sparse`] with an explicit fill cost for in-component non-edges.
///
/// With `fill = 0.0` this computes a maximum-weight matching over
/// negative-cost edges (identity metrics: cost `= −overlap`), where
/// unmatched is free rather than forbidden. Matches that land on fill
/// cells are always dropped from the result.
pub fn assign_sparse_with_fill<'s>(
    n_rows: usize,
    n_cols: usize,
    edges: &[Edge],
    fill: f64,
    scratch: &'s mut AssignmentScratch,
) -> &'s [(u32, u32)] {
    solve_components(n_rows, n_cols, edges, fill, scratch);
    &scratch.matches
}

fn solve_components(n: usize, m: usize, edges: &[Edge], fill: f64, s: &mut AssignmentScratch) {
    s.matches.clear();
    s.stats.sparse_solves += 1;
    if edges.is_empty() {
        return;
    }
    debug_assert!(
        edges
            .windows(2)
            .all(|w| (w[0].row, w[0].col) < (w[1].row, w[1].col)),
        "edges must be sorted by (row, col) without duplicates"
    );
    debug_assert!(edges
        .iter()
        .all(|e| (e.row as usize) < n && (e.col as usize) < m && e.cost.is_finite()));

    // Union-find over rows `[0, n)` and columns `[n, n + m)`.
    s.parent.clear();
    s.parent.extend(0..(n + m) as u32);
    for e in edges {
        union(&mut s.parent, e.row, n as u32 + e.col);
    }

    // Component ids in first-encounter (row-major edge) order, so the
    // processing order below is deterministic.
    s.comp_of_node.clear();
    s.comp_of_node.resize(n + m, u32::MAX);
    s.comp_of_edge.clear();
    let mut n_comps = 0u32;
    for e in edges {
        let root = find(&mut s.parent, e.row) as usize;
        if s.comp_of_node[root] == u32::MAX {
            s.comp_of_node[root] = n_comps;
            n_comps += 1;
        }
        s.comp_of_edge.push(s.comp_of_node[root]);
    }

    // Stable-sort edge indices by component: each component becomes a
    // contiguous run that preserves the original row-major edge order.
    s.edge_order.clear();
    s.edge_order.extend(0..edges.len() as u32);
    let edge_order = {
        let mut order = std::mem::take(&mut s.edge_order);
        order.sort_by_key(|&ei| s.comp_of_edge[ei as usize]);
        order
    };
    s.stats.components += n_comps as u64;

    s.row_local.resize(n, 0);
    s.col_local.resize(m, 0);

    let mut run_start = 0usize;
    while run_start < edge_order.len() {
        let comp = s.comp_of_edge[edge_order[run_start] as usize];
        let mut run_end = run_start + 1;
        while run_end < edge_order.len() && s.comp_of_edge[edge_order[run_end] as usize] == comp {
            run_end += 1;
        }
        solve_one_component(edges, &edge_order[run_start..run_end], fill, s);
        run_start = run_end;
    }
    s.edge_order = edge_order;

    // Components were emitted in discovery order; present matches in global
    // row order (rows are unique across components).
    s.matches.sort_unstable();
}

fn solve_one_component(edges: &[Edge], run: &[u32], fill: f64, s: &mut AssignmentScratch) {
    // Rows arrive in ascending order (row-major run); columns are sorted
    // explicitly. Ascending original order on both sides + the reference
    // kernel arithmetic is what makes ties break like the dense solve.
    s.comp_rows.clear();
    s.comp_cols.clear();
    for &ei in run {
        let e = &edges[ei as usize];
        if s.comp_rows.last() != Some(&e.row) {
            s.comp_rows.push(e.row);
        }
        s.comp_cols.push(e.col);
    }
    s.comp_cols.sort_unstable();
    s.comp_cols.dedup();
    let nc = s.comp_rows.len();
    let mc = s.comp_cols.len();
    for (li, &r) in s.comp_rows.iter().enumerate() {
        s.row_local[r as usize] = li as u32;
    }
    for (lj, &c) in s.comp_cols.iter().enumerate() {
        s.col_local[c as usize] = lj as u32;
    }
    s.submat.clear();
    s.submat.resize(nc * mc, fill);
    for &ei in run {
        let e = &edges[ei as usize];
        let li = s.row_local[e.row as usize] as usize;
        let lj = s.col_local[e.col as usize] as usize;
        s.submat[li * mc + lj] = e.cost;
    }
    let submat = std::mem::take(&mut s.submat);
    solve_dense(nc, mc, &submat, s);
    for li in 0..nc {
        if let Some(lj) = s.row_to_col[li] {
            // Matches that land on fill cells (a row parked on a non-edge)
            // are not real pairings.
            if submat[li * mc + lj] != fill {
                s.matches.push((s.comp_rows[li], s.comp_cols[lj]));
            }
        }
    }
    s.submat = submat;
}

/// A uniform spatial grid over a set of boxes, used to gate candidate
/// pairs: two axis-aligned boxes can only intersect if they share at least
/// one grid cell, so `candidates` never misses an intersecting pair.
///
/// Cell size adapts to the mean box dimension and the grid is capped at
/// 64×64 cells; boxes are inserted into every cell they overlap, queries
/// return a sorted, deduplicated candidate index list.
#[derive(Debug, Clone, Default)]
pub struct BoxGrid {
    origin: (f64, f64),
    inv_cell: (f64, f64),
    nx: u32,
    ny: u32,
    starts: Vec<u32>,
    entries: Vec<u32>,
    ranges: Vec<(u32, u32, u32, u32)>,
    cursors: Vec<u32>,
}

/// Maximum grid resolution per axis.
const MAX_CELLS: u32 = 64;

impl BoxGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell_x(&self, x: f64) -> u32 {
        (((x - self.origin.0) * self.inv_cell.0).floor() as i64).clamp(0, self.nx as i64 - 1) as u32
    }

    fn cell_y(&self, y: f64) -> u32 {
        (((y - self.origin.1) * self.inv_cell.1).floor() as i64).clamp(0, self.ny as i64 - 1) as u32
    }

    /// Rebuilds the grid over `boxes`, reusing all internal buffers.
    pub fn rebuild(&mut self, boxes: &[BBox]) {
        self.ranges.clear();
        self.entries.clear();
        self.starts.clear();
        if boxes.is_empty() {
            self.nx = 0;
            self.ny = 0;
            return;
        }
        let mut x0 = f64::INFINITY;
        let mut y0 = f64::INFINITY;
        let mut x1 = f64::NEG_INFINITY;
        let mut y1 = f64::NEG_INFINITY;
        let mut dim_sum = 0.0;
        for b in boxes {
            x0 = x0.min(b.x);
            y0 = y0.min(b.y);
            x1 = x1.max(b.x2());
            y1 = y1.max(b.y2());
            dim_sum += b.w + b.h;
        }
        // Cells near the mean box dimension keep the per-box cell count
        // small; the cap bounds the bucket table for huge scenes.
        let mean_dim = (dim_sum / (2.0 * boxes.len() as f64)).max(1e-6);
        let cell_w = mean_dim.max((x1 - x0) / MAX_CELLS as f64);
        let cell_h = mean_dim.max((y1 - y0) / MAX_CELLS as f64);
        self.origin = (x0, y0);
        self.inv_cell = (1.0 / cell_w, 1.0 / cell_h);
        self.nx = (((x1 - x0) / cell_w).floor() as u32 + 1).min(MAX_CELLS);
        self.ny = (((y1 - y0) / cell_h).floor() as u32 + 1).min(MAX_CELLS);
        let n_cells = (self.nx * self.ny) as usize;
        self.starts.resize(n_cells + 1, 0);
        // Pass 1: per-box cell rectangles + per-cell counts.
        for b in boxes {
            let cx0 = self.cell_x(b.x);
            let cx1 = self.cell_x(b.x2());
            let cy0 = self.cell_y(b.y);
            let cy1 = self.cell_y(b.y2());
            self.ranges.push((cx0, cx1, cy0, cy1));
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    self.starts[(cy * self.nx + cx) as usize + 1] += 1;
                }
            }
        }
        for i in 1..self.starts.len() {
            self.starts[i] += self.starts[i - 1];
        }
        self.entries.resize(self.starts[n_cells] as usize, 0);
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.starts[..n_cells]);
        // Pass 2: scatter box indices into their cells.
        for (bi, &(cx0, cx1, cy0, cy1)) in self.ranges.iter().enumerate() {
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    let cell = (cy * self.nx + cx) as usize;
                    self.entries[self.cursors[cell] as usize] = bi as u32;
                    self.cursors[cell] += 1;
                }
            }
        }
    }

    /// Collects into `out` the indices of all indexed boxes that could
    /// intersect `query` (a superset of the truly intersecting ones),
    /// sorted ascending and deduplicated.
    pub fn candidates(&self, query: &BBox, out: &mut Vec<u32>) {
        out.clear();
        if self.nx == 0 {
            return;
        }
        let cx0 = self.cell_x(query.x);
        let cx1 = self.cell_x(query.x2());
        let cy0 = self.cell_y(query.y);
        let cy1 = self.cell_y(query.y2());
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let cell = (cy * self.nx + cx) as usize;
                let lo = self.starts[cell] as usize;
                let hi = self.starts[cell + 1] as usize;
                out.extend_from_slice(&self.entries[lo..hi]);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Expected number of candidate entries one query gathers, assuming
    /// queries are distributed like the indexed boxes: mean bucket
    /// occupancy times the mean number of cells a box straddles. When this
    /// approaches the indexed box count the grid cannot prune — every
    /// bucket holds nearly everything — and a plain full scan is cheaper
    /// than per-query gather/sort/dedup.
    pub fn mean_query_load(&self) -> f64 {
        let cells = (self.nx * self.ny) as f64;
        let boxes = self.ranges.len() as f64;
        if cells == 0.0 || boxes == 0.0 {
            return 0.0;
        }
        let refs = self.entries.len() as f64;
        (refs / cells) * (refs / boxes)
    }
}

/// Reusable scratch for per-frame box-to-box matching (metrics).
#[derive(Debug, Clone, Default)]
pub struct BoxMatchScratch {
    grid: BoxGrid,
    cand: Vec<u32>,
    cand_costs: Vec<f64>,
    edges: Vec<Edge>,
    dense: Vec<f64>,
    /// Solver scratch, exposed for callers that also run their own solves.
    pub assign: AssignmentScratch,
}

impl BoxMatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Matches `rows` boxes against `cols` boxes under an IoU gate expressed in
/// cost space: pair `(r, c)` is admissible iff `1 − IoU ≤ max_cost`, and
/// the minimum-cost matching over admissible pairs is returned as
/// `(row, col)` pairs sorted by row.
///
/// Bit-identical to `assign_with_threshold(&iou_cost_matrix, max_cost)` on
/// the dense reference path (the admissibility test is the same `1.0 - iou`
/// expression), but IoU is only evaluated for grid candidates. Two cases
/// skip the grid and run the reference mask-and-solve over all pairs
/// instead (through the flat kernel, so results stay identical to the
/// dense reference — ungated candidates only add zero-IoU, inadmissible
/// pairs):
///
/// * `max_cost ≥ 1.0`, where the spatial gate is unsound (IoU 0 ⇒ cost 1
///   would be admissible), and
/// * degenerate occupancy ([`BoxGrid::mean_query_load`] at ≥ 25% of the
///   columns), where every bucket holds nearly every box: the gather/
///   sort/dedup and component machinery can prune nothing, and the plain
///   dense solve is cheaper.
pub fn iou_threshold_matches<'s>(
    rows: &[BBox],
    cols: &[BBox],
    max_cost: f64,
    s: &'s mut BoxMatchScratch,
) -> &'s [(u32, u32)] {
    let mut gated = max_cost < 1.0 && !cols.is_empty();
    if gated {
        s.grid.rebuild(cols);
        gated = s.grid.mean_query_load() < 0.25 * cols.len() as f64;
    }
    if !gated {
        // Dense fallback: masked flat matrix, one solve, drop forbidden.
        s.assign.stats.dense_fallbacks += 1;
        let (n, m) = (rows.len(), cols.len());
        s.dense.clear();
        s.dense.reserve(n * m);
        for rb in rows {
            // SIMD-dispatched, bit-identical to the scalar
            // `1.0 - rb.iou(cb)` mask-and-store (see `tm_types::simd`).
            tm_types::simd::iou_cost_row_masked(rb, cols, max_cost, FORBIDDEN, &mut s.dense);
        }
        solve_dense(n, m, &s.dense, &mut s.assign);
        s.assign.matches.clear();
        for r in 0..n {
            if let Some(c) = s.assign.row_to_col[r] {
                if s.dense[r * m + c] <= max_cost {
                    s.assign.matches.push((r as u32, c as u32));
                }
            }
        }
        return &s.assign.matches;
    }
    s.assign.stats.gated_matches += 1;
    s.edges.clear();
    for (r, rb) in rows.iter().enumerate() {
        s.grid.candidates(rb, &mut s.cand);
        s.cand_costs.clear();
        tm_types::simd::iou_costs_indexed(rb, cols, &s.cand, &mut s.cand_costs);
        for (&c, &cost) in s.cand.iter().zip(&s.cand_costs) {
            if cost <= max_cost {
                s.edges.push(Edge {
                    row: r as u32,
                    col: c,
                    cost,
                });
            }
        }
    }
    assign_sparse(rows.len(), cols.len(), &s.edges, &mut s.assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::{
        assign_with_threshold_reference, assignment_cost, min_cost_assignment_reference,
    };

    fn to_nested(flat: &[f64], n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| flat[i * m..(i + 1) * m].to_vec()).collect()
    }

    fn edges_from_matrix(cost: &[Vec<f64>], max_cost: f64) -> Vec<Edge> {
        let mut edges = Vec::new();
        for (i, row) in cost.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c <= max_cost {
                    edges.push(Edge {
                        row: i as u32,
                        col: j as u32,
                        cost: c,
                    });
                }
            }
        }
        edges
    }

    #[test]
    fn flat_matches_reference_on_fixed_cases() {
        let cases: Vec<(usize, usize, Vec<f64>)> = vec![
            (3, 3, vec![4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0]),
            (2, 4, vec![10.0, 1.0, 10.0, 10.0, 1.0, 10.0, 10.0, 10.0]),
            (3, 1, vec![5.0, 1.0, 3.0]),
            (1, 1, vec![7.0]),
            (3, 2, vec![2.0, 2.0, 2.0, 2.0, 2.0, 2.0]),
        ];
        let mut scratch = AssignmentScratch::new();
        for (n, m, flat) in cases {
            let nested = to_nested(&flat, n, m);
            assert_eq!(
                min_cost_assignment_flat(&flat, n, m, &mut scratch),
                min_cost_assignment_reference(&nested),
                "n={n} m={m}"
            );
        }
    }

    #[test]
    fn flat_empty_shapes() {
        let mut s = AssignmentScratch::new();
        assert!(min_cost_assignment_flat(&[], 0, 0, &mut s).is_empty());
        assert!(min_cost_assignment_flat(&[], 0, 5, &mut s).is_empty());
        assert_eq!(min_cost_assignment_flat(&[], 3, 0, &mut s), vec![None; 3]);
    }

    #[test]
    fn sparse_empty_edges_is_empty() {
        let mut s = AssignmentScratch::new();
        assert!(assign_sparse(4, 4, &[], &mut s).is_empty());
        assert!(assign_sparse(0, 0, &[], &mut s).is_empty());
    }

    #[test]
    fn stats_accumulate_and_flush_to_the_recorder() {
        let mut s = AssignmentScratch::new();
        min_cost_assignment_flat(&[1.0, 2.0, 3.0, 4.0], 2, 2, &mut s);
        min_cost_assignment_flat(&[5.0], 1, 1, &mut s);
        let edges = vec![
            Edge {
                row: 0,
                col: 0,
                cost: 1.0,
            },
            Edge {
                row: 1,
                col: 1,
                cost: 1.0,
            },
        ];
        assign_sparse(2, 2, &edges, &mut s);
        assert_eq!(s.stats.dense_solves, 2);
        assert_eq!(s.stats.sparse_solves, 1);
        assert_eq!(s.stats.components, 2);

        let rec = std::sync::Arc::new(tm_obs::Recorder::new());
        let obs = tm_obs::Obs::new(rec.clone());
        s.stats.flush(&obs);
        assert_eq!(rec.counter_value("assign.dense_solves"), 2);
        assert_eq!(rec.counter_value("assign.sparse_solves"), 1);
        assert_eq!(rec.counter_value("assign.components"), 2);
        assert_eq!(s.stats, AssignStats::default(), "flush must reset");

        // A second flush of the zeroed stats must not mint zero-valued
        // counter keys (would make snapshots scheduling-dependent).
        s.stats.flush(&obs);
        let snap_before = rec.snapshot();
        s.stats.flush(&obs);
        assert_eq!(rec.snapshot(), snap_before);
    }

    #[test]
    fn sparse_single_component_matches_reference() {
        let cost = vec![vec![0.2, 0.9], vec![0.9, 0.95]];
        let edges = edges_from_matrix(&cost, 0.5);
        let mut s = AssignmentScratch::new();
        let got: Vec<(usize, usize)> = assign_sparse(2, 2, &edges, &mut s)
            .iter()
            .map(|&(r, c)| (r as usize, c as usize))
            .collect();
        assert_eq!(got, assign_with_threshold_reference(&cost, 0.5));
    }

    #[test]
    fn sparse_two_components_solved_independently() {
        // Rows {0,1}×cols {0,1} and rows {2}×cols {3} are disconnected.
        let edges = vec![
            Edge {
                row: 0,
                col: 0,
                cost: 1.0,
            },
            Edge {
                row: 0,
                col: 1,
                cost: 2.0,
            },
            Edge {
                row: 1,
                col: 0,
                cost: 2.0,
            },
            Edge {
                row: 1,
                col: 1,
                cost: 4.0,
            },
            Edge {
                row: 2,
                col: 3,
                cost: 0.5,
            },
        ];
        let mut s = AssignmentScratch::new();
        let got = assign_sparse(3, 4, &edges, &mut s).to_vec();
        assert_eq!(got, vec![(0, 1), (1, 0), (2, 3)]);
    }

    #[test]
    fn sparse_overflow_row_is_unmatched() {
        // Two rows compete for one column: the cheaper (first, on ties)
        // row wins, the other stays unmatched.
        let edges = vec![
            Edge {
                row: 0,
                col: 0,
                cost: 3.0,
            },
            Edge {
                row: 1,
                col: 0,
                cost: 3.0,
            },
        ];
        let mut s = AssignmentScratch::new();
        assert_eq!(assign_sparse(2, 1, &edges, &mut s).to_vec(), vec![(0, 0)]);
    }

    #[test]
    fn zero_fill_prefers_value_over_cardinality() {
        // Max-weight matching on overlaps: r0–c0 weight 5 dominates the
        // 2-edge matching (1 + 1); cost = −overlap, unmatched free.
        let edges = vec![
            Edge {
                row: 0,
                col: 0,
                cost: -5.0,
            },
            Edge {
                row: 0,
                col: 1,
                cost: -1.0,
            },
            Edge {
                row: 1,
                col: 0,
                cost: -1.0,
            },
        ];
        let mut s = AssignmentScratch::new();
        let got = assign_sparse_with_fill(2, 2, &edges, 0.0, &mut s).to_vec();
        let value: f64 = got
            .iter()
            .map(|&(r, c)| {
                edges
                    .iter()
                    .find(|e| e.row == r && e.col == c)
                    .map(|e| -e.cost)
                    .unwrap_or(0.0)
            })
            .sum();
        assert_eq!(value, 5.0);
    }

    #[test]
    fn grid_candidates_cover_all_intersections() {
        let boxes: Vec<BBox> = (0..30)
            .map(|i| {
                let f = i as f64;
                BBox::new(10.0 * (f % 6.0), 17.0 * (f / 6.0).floor(), 8.0 + f, 9.0)
            })
            .collect();
        let mut grid = BoxGrid::new();
        grid.rebuild(&boxes);
        let mut cand = Vec::new();
        for q in &[
            BBox::new(0.0, 0.0, 100.0, 100.0),
            BBox::new(25.0, 25.0, 5.0, 5.0),
            BBox::new(-50.0, -50.0, 10.0, 10.0),
            BBox::new(500.0, 500.0, 10.0, 10.0),
        ] {
            grid.candidates(q, &mut cand);
            for (bi, b) in boxes.iter().enumerate() {
                if q.iou(b) > 0.0 {
                    assert!(
                        cand.contains(&(bi as u32)),
                        "grid missed intersecting box {bi} for query {q:?}"
                    );
                }
            }
            // Sorted + deduplicated.
            assert!(cand.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn grid_empty_boxes() {
        let mut grid = BoxGrid::new();
        grid.rebuild(&[]);
        let mut cand = vec![1, 2, 3];
        grid.candidates(&BBox::new(0.0, 0.0, 1.0, 1.0), &mut cand);
        assert!(cand.is_empty());
    }

    #[test]
    fn iou_threshold_matches_equals_reference() {
        let rows = vec![
            BBox::new(0.0, 0.0, 10.0, 10.0),
            BBox::new(100.0, 0.0, 10.0, 10.0),
            BBox::new(3.0, 2.0, 10.0, 10.0),
        ];
        let cols = vec![
            BBox::new(1.0, 1.0, 10.0, 10.0),
            BBox::new(101.0, 0.0, 10.0, 10.0),
            BBox::new(50.0, 50.0, 10.0, 10.0),
        ];
        let cost: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| cols.iter().map(|c| 1.0 - r.iou(c)).collect())
            .collect();
        let max_cost = 0.7;
        let mut s = BoxMatchScratch::new();
        let got: Vec<(usize, usize)> = iou_threshold_matches(&rows, &cols, max_cost, &mut s)
            .iter()
            .map(|&(r, c)| (r as usize, c as usize))
            .collect();
        assert_eq!(got, assign_with_threshold_reference(&cost, max_cost));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        /// Matrices sized 0–64 with either continuous costs or a tiny
        /// discrete value set (maximizing ties).
        fn matrix_strategy() -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
            (0usize..=64, 0usize..=64, any::<bool>()).prop_flat_map(|(n, m, ties)| {
                let cell = if ties {
                    proptest::sample::select(vec![0.0, 0.25, 0.5, 0.75, 1.0]).boxed()
                } else {
                    (0.0f64..1.0).boxed()
                };
                proptest::collection::vec(cell, n * m).prop_map(move |flat| (n, m, flat))
            })
        }

        /// Continuous-cost matrices: exact cost ties (the only case where
        /// the sentinel-dense reference's artifact placements of
        /// unmatchable rows can reshuffle otherwise-equal matchings) have
        /// measure zero, so the sparse solver must agree exactly.
        fn continuous_matrix_strategy() -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
            (0usize..=64, 0usize..=64).prop_flat_map(|(n, m)| {
                proptest::collection::vec(0.0f64..1.0, n * m).prop_map(move |flat| (n, m, flat))
            })
        }

        /// Independent oracle for the component solver's exact semantics:
        /// brute-force component labelling, then the verbatim reference
        /// solver on a materialized fill-padded submatrix per component.
        fn component_oracle(n: usize, m: usize, edges: &[Edge], fill: f64) -> Vec<(usize, usize)> {
            let mut parent: Vec<usize> = (0..n + m).collect();
            fn root(p: &mut [usize], mut x: usize) -> usize {
                while p[x] != x {
                    p[x] = p[p[x]];
                    x = p[x];
                }
                x
            }
            for e in edges {
                let (a, b) = (
                    root(&mut parent, e.row as usize),
                    root(&mut parent, n + e.col as usize),
                );
                if a != b {
                    parent[b] = a;
                }
            }
            let mut comps: Vec<Vec<Edge>> = Vec::new();
            let mut id_of: HashMap<usize, usize> = HashMap::new();
            for e in edges {
                let r = root(&mut parent, e.row as usize);
                let id = *id_of.entry(r).or_insert_with(|| {
                    comps.push(Vec::new());
                    comps.len() - 1
                });
                comps[id].push(*e);
            }
            let mut out = Vec::new();
            for comp in &comps {
                let mut rows: Vec<u32> = comp.iter().map(|e| e.row).collect();
                rows.sort_unstable();
                rows.dedup();
                let mut cols: Vec<u32> = comp.iter().map(|e| e.col).collect();
                cols.sort_unstable();
                cols.dedup();
                let mut sub = vec![vec![fill; cols.len()]; rows.len()];
                for e in comp {
                    let li = rows.binary_search(&e.row).unwrap();
                    let lj = cols.binary_search(&e.col).unwrap();
                    sub[li][lj] = e.cost;
                }
                for (li, j) in min_cost_assignment_reference(&sub).into_iter().enumerate() {
                    if let Some(lj) = j {
                        if sub[li][lj] != fill {
                            out.push((rows[li] as usize, cols[lj] as usize));
                        }
                    }
                }
            }
            out.sort_unstable();
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The flat solver is bit-identical to the reference, including
            /// tie cases, across sizes 0–64.
            #[test]
            fn flat_equals_reference((n, m, flat) in matrix_strategy()) {
                let nested = to_nested(&flat, n, m);
                let mut s = AssignmentScratch::new();
                let got = min_cost_assignment_flat(&flat, n, m, &mut s);
                prop_assert_eq!(got, min_cost_assignment_reference(&nested));
            }

            /// On continuous (generically tie-free) costs the gated
            /// component solver returns exactly the sentinel-dense
            /// reference's admissible matches, including the all-forbidden
            /// case (threshold 0.0 excludes nearly everything).
            #[test]
            fn sparse_equals_reference_threshold(
                (n, m, flat) in continuous_matrix_strategy(),
                max_cost in proptest::sample::select(vec![0.0, 0.3, 0.5, 0.75]),
            ) {
                let nested = to_nested(&flat, n, m);
                let edges = edges_from_matrix(&nested, max_cost);
                let mut s = AssignmentScratch::new();
                let got: Vec<(usize, usize)> = assign_sparse(n, m, &edges, &mut s)
                    .iter()
                    .map(|&(r, c)| (r as usize, c as usize))
                    .collect();
                prop_assert_eq!(got, assign_with_threshold_reference(&nested, max_cost));
            }

            /// Tie-heavy matrices: the production solver must equal the
            /// per-component reference oracle *exactly* (that pins kernel
            /// arithmetic, decomposition bookkeeping and tie order), and
            /// must equal the sentinel-dense reference in matched pair
            /// count and total cost (on exact ties the sentinel path may
            /// permute equal-cost matches through the arbitrary placement
            /// of unmatchable rows on `FORBIDDEN` cells — an artifact this
            /// module deprecates, see DESIGN.md §9).
            #[test]
            fn sparse_ties_equal_oracle_and_reference_value(
                (n, m, flat) in matrix_strategy(),
                max_cost in proptest::sample::select(vec![0.25, 0.5, 0.75, 1.0]),
            ) {
                let nested = to_nested(&flat, n, m);
                let edges = edges_from_matrix(&nested, max_cost);
                let mut s = AssignmentScratch::new();
                let got: Vec<(usize, usize)> = assign_sparse(n, m, &edges, &mut s)
                    .iter()
                    .map(|&(r, c)| (r as usize, c as usize))
                    .collect();
                prop_assert_eq!(&got, &component_oracle(n, m, &edges, FORBIDDEN));
                let reference = assign_with_threshold_reference(&nested, max_cost);
                prop_assert_eq!(got.len(), reference.len());
                let total = |ms: &[(usize, usize)]| -> f64 {
                    ms.iter().map(|&(r, c)| nested[r][c]).sum()
                };
                prop_assert!((total(&got) - total(&reference)).abs() < 1e-9,
                    "total {} vs reference {}", total(&got), total(&reference));
            }

            /// Adversarial sparsity: block-diagonal admissibility (many
            /// components) still matches the dense reference.
            #[test]
            fn sparse_equals_reference_blocks(
                blocks in proptest::collection::vec((1usize..4, 1usize..4), 1..6),
                seed_costs in proptest::collection::vec(0.0f64..0.4, 64),
            ) {
                let n: usize = blocks.iter().map(|b| b.0).sum();
                let m: usize = blocks.iter().map(|b| b.1).sum();
                let mut nested = vec![vec![1.0f64; m]; n];
                let (mut r0, mut c0, mut k) = (0usize, 0usize, 0usize);
                for &(bn, bm) in &blocks {
                    for i in 0..bn {
                        for j in 0..bm {
                            nested[r0 + i][c0 + j] = seed_costs[k % seed_costs.len()];
                            k += 1;
                        }
                    }
                    r0 += bn;
                    c0 += bm;
                }
                let max_cost = 0.5;
                let edges = edges_from_matrix(&nested, max_cost);
                let mut s = AssignmentScratch::new();
                let got: Vec<(usize, usize)> = assign_sparse(n, m, &edges, &mut s)
                    .iter()
                    .map(|&(r, c)| (r as usize, c as usize))
                    .collect();
                prop_assert_eq!(got, assign_with_threshold_reference(&nested, max_cost));
            }

            /// The zero-fill (max-weight) component solve achieves the
            /// same total matched weight as the dense reference over the
            /// full matrix — the invariant identity metrics rely on.
            #[test]
            fn zero_fill_matches_reference_value(
                (n, m, mut flat) in matrix_strategy(),
            ) {
                // Sparse positive weights: zero out most cells, negate the
                // rest so the min-cost solve maximizes weight.
                for (i, c) in flat.iter_mut().enumerate() {
                    *c = if i % 3 == 0 { -(*c * 10.0).ceil() } else { 0.0 };
                }
                let nested = to_nested(&flat, n, m);
                let reference = min_cost_assignment_reference(&nested);
                let ref_value: f64 = -assignment_cost(&nested, &reference);
                let mut edges = Vec::new();
                for (i, row) in nested.iter().enumerate() {
                    for (j, &c) in row.iter().enumerate() {
                        if c < 0.0 {
                            edges.push(Edge { row: i as u32, col: j as u32, cost: c });
                        }
                    }
                }
                let mut s = AssignmentScratch::new();
                let got_value: f64 = assign_sparse_with_fill(n, m, &edges, 0.0, &mut s)
                    .iter()
                    .map(|&(r, c)| -nested[r as usize][c as usize])
                    .sum();
                prop_assert!((got_value - ref_value).abs() < 1e-6,
                    "component value {got_value} vs reference {ref_value}");
            }
        }
    }
}
