//! A UMA-style tracker (Yin et al., 2020) surrogate.
//!
//! UMA learns a *Unified Motion and Affinity* model: a single cost that
//! blends motion consistency with appearance affinity, solved as a global
//! assignment. The published paper does not specify its internals at the
//! level SORT/DeepSORT do, so this is explicitly a surrogate (DESIGN.md §1):
//! a Kalman-gated Mahalanobis motion cost combined with ReID appearance
//! affinity under one Hungarian assignment.

use crate::assign::{assign_sparse, Edge};
use crate::assoc::AssocScratch;
use crate::lifecycle::{LifecycleConfig, TrackManager};
use crate::trackers::Tracker;
use tm_reid::{AppearanceModel, Feature};
use tm_types::{Detection, FrameIdx, TrackSet};

/// UMA-surrogate parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UmaLikeConfig {
    /// Weight of the motion term (the rest is appearance).
    pub lambda_motion: f64,
    /// Gating threshold on the normalized Mahalanobis centre distance;
    /// larger distances are forbidden.
    pub motion_gate: f64,
    /// Reject matches whose combined cost exceeds this.
    pub max_cost: f64,
    /// EMA momentum of the appearance gallery.
    pub feature_momentum: f64,
    /// Lifecycle parameters.
    pub lifecycle: LifecycleConfig,
}

impl Default for UmaLikeConfig {
    fn default() -> Self {
        Self {
            lambda_motion: 0.5,
            motion_gate: 50.0,
            max_cost: 0.5,
            feature_momentum: 0.85,
            lifecycle: LifecycleConfig {
                max_age: 8,
                min_hits: 3,
                min_confidence: 0.5,
                ..LifecycleConfig::default()
            },
        }
    }
}

/// The UMA-style tracker.
#[derive(Debug, Clone)]
pub struct UmaLike<'m> {
    config: UmaLikeConfig,
    manager: TrackManager,
    model: &'m AppearanceModel,
    scratch: AssocScratch,
}

impl<'m> UmaLike<'m> {
    /// Creates a UMA-style tracker over the given appearance model.
    pub fn new(config: UmaLikeConfig, model: &'m AppearanceModel) -> Self {
        Self {
            manager: TrackManager::new(config.lifecycle),
            config,
            model,
            scratch: AssocScratch::new(),
        }
    }
}

impl Tracker for UmaLike<'_> {
    fn name(&self) -> &'static str {
        "UMA"
    }

    fn step(&mut self, _frame: FrameIdx, detections: &[Detection]) {
        self.manager.predict_all();
        let det_features: Vec<Feature> = detections
            .iter()
            .map(|d| self.model.observe_detection(d))
            .collect();

        // Motion cost: gated Mahalanobis centre distance, normalized to the
        // gate so it lands in [0, 1]. The motion term is checked first so
        // appearance distances are never computed for class-mismatched or
        // motion-gated pairs.
        let l = self.config.lambda_motion.clamp(0.0, 1.0);
        self.scratch.edges.clear();
        for (r, t) in self.manager.active.iter().enumerate() {
            for (c, d) in detections.iter().enumerate() {
                if t.class != d.class {
                    continue;
                }
                let g = t.kf.center_gate_distance(&d.bbox);
                if g > self.config.motion_gate {
                    continue;
                }
                let cost_motion = g / self.config.motion_gate;
                // Appearance cost is ≥ 0: the motion term alone can already
                // exceed the acceptance threshold.
                if l * cost_motion > self.config.max_cost {
                    continue;
                }
                let cost_app = match &t.feature {
                    Some(gallery) => gallery.normalized_distance(&det_features[c]),
                    None => 0.5,
                };
                let cost = l * cost_motion + (1.0 - l) * cost_app;
                if cost <= self.config.max_cost {
                    self.scratch.edges.push(Edge {
                        row: r as u32,
                        col: c as u32,
                        cost,
                    });
                }
            }
        }
        let matches = assign_sparse(
            self.manager.active.len(),
            detections.len(),
            &self.scratch.edges,
            &mut self.scratch.assign,
        );

        let mut det_matched = vec![false; detections.len()];
        for &(ti, di) in matches {
            let di = di as usize;
            self.manager.commit_match(
                ti as usize,
                &detections[di],
                Some(det_features[di].clone()),
                self.config.feature_momentum,
            );
            det_matched[di] = true;
        }
        for (di, d) in detections.iter().enumerate() {
            if !det_matched[di] {
                self.manager.spawn(d, Some(det_features[di].clone()));
            }
        }
        self.manager.finalize_frame();
    }

    fn finish(&mut self) -> TrackSet {
        self.scratch.assign.stats.flush(&tm_obs::current());
        self.manager.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trackers::track_video;
    use tm_reid::AppearanceConfig;
    use tm_types::{ids::classes, BBox, GtObjectId};

    fn model() -> AppearanceModel {
        AppearanceModel::new(AppearanceConfig::default())
    }

    fn det(frame: u64, x: f64, y: f64, actor: u64) -> Detection {
        Detection::of_actor(
            FrameIdx(frame),
            BBox::new(x, y, 40.0, 80.0),
            0.9,
            classes::PEDESTRIAN,
            1.0,
            GtObjectId(actor),
        )
    }

    #[test]
    fn clean_video_yields_one_track_per_actor() {
        let m = model();
        let frames: Vec<Vec<Detection>> = (0..50u64)
            .map(|f| {
                vec![
                    det(f, 10.0 + 3.0 * f as f64, 100.0, 1),
                    det(f, 10.0 + 3.0 * f as f64, 500.0, 2),
                ]
            })
            .collect();
        let mut t = UmaLike::new(UmaLikeConfig::default(), &m);
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn fragments_beyond_patience() {
        let m = model();
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..80u64 {
            if (30..55).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)]);
            }
        }
        let mut t = UmaLike::new(UmaLikeConfig::default(), &m);
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn motion_gate_prevents_teleport_matches() {
        let m = model();
        let mut frames: Vec<Vec<Detection>> =
            (0..20u64).map(|f| vec![det(f, 10.0, 100.0, 1)]).collect();
        // Same actor suddenly at the other end of the scene.
        frames.extend((20..40u64).map(|f| vec![det(f, 900.0, 700.0, 1)]));
        let mut t = UmaLike::new(UmaLikeConfig::default(), &m);
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2, "teleport must break the motion gate");
    }

    #[test]
    fn deterministic() {
        let m = model();
        let frames: Vec<Vec<Detection>> = (0..30u64)
            .map(|f| vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)])
            .collect();
        let a = track_video(&mut UmaLike::new(UmaLikeConfig::default(), &m), &frames);
        let b = track_video(&mut UmaLike::new(UmaLikeConfig::default(), &m), &frames);
        assert_eq!(a, b);
    }
}
