//! A CenterTrack-style point tracker (Zhou et al., 2020) surrogate.
//!
//! CenterTrack represents objects as centre points and associates a
//! detection to the previous frame's object whose predicted centre (point +
//! learned offset) is nearest, using a greedy match within a size-dependent
//! radius. The learned offset head is surrogated by the Kalman velocity;
//! the greedy nearest-centre association is the published one.

use crate::lifecycle::{LifecycleConfig, TrackManager};
use crate::trackers::Tracker;
use tm_types::{Detection, FrameIdx, TrackSet};

/// CenterTrack-surrogate parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CenterTrackLikeConfig {
    /// Match radius as a multiple of the track box's geometric mean size
    /// (`κ·√(w·h)`).
    pub radius_factor: f64,
    /// Lifecycle parameters.
    pub lifecycle: LifecycleConfig,
}

impl Default for CenterTrackLikeConfig {
    fn default() -> Self {
        Self {
            radius_factor: 0.8,
            lifecycle: LifecycleConfig {
                max_age: 5,
                min_hits: 3,
                min_confidence: 0.5,
                ..LifecycleConfig::default()
            },
        }
    }
}

/// The CenterTrack-style tracker.
#[derive(Debug, Clone)]
pub struct CenterTrackLike {
    config: CenterTrackLikeConfig,
    manager: TrackManager,
}

impl CenterTrackLike {
    /// Creates a CenterTrack-style tracker.
    pub fn new(config: CenterTrackLikeConfig) -> Self {
        Self {
            manager: TrackManager::new(config.lifecycle),
            config,
        }
    }
}

impl Tracker for CenterTrackLike {
    fn name(&self) -> &'static str {
        "CenterTrack"
    }

    fn step(&mut self, _frame: FrameIdx, detections: &[Detection]) {
        self.manager.predict_all();

        // Greedy: detections in descending confidence claim the nearest
        // unclaimed track centre within the radius (CenterTrack's greedy
        // decode order).
        let mut det_order: Vec<usize> = (0..detections.len()).collect();
        det_order.sort_by(|&a, &b| {
            detections[b]
                .confidence
                .partial_cmp(&detections[a].confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut track_claimed = vec![false; self.manager.active.len()];
        let mut pending: Vec<(usize, usize)> = Vec::new(); // (track, det)
        let mut det_matched = vec![false; detections.len()];
        for &di in &det_order {
            let d = &detections[di];
            let mut best: Option<(usize, f64)> = None;
            for (ti, t) in self.manager.active.iter().enumerate() {
                if track_claimed[ti] || t.class != d.class {
                    continue;
                }
                let radius = self.config.radius_factor * t.predicted.area().sqrt();
                let dist = t.predicted.center().distance(&d.bbox.center());
                if dist <= radius && best.is_none_or(|(_, b)| dist < b) {
                    best = Some((ti, dist));
                }
            }
            if let Some((ti, _)) = best {
                track_claimed[ti] = true;
                det_matched[di] = true;
                pending.push((ti, di));
            }
        }
        for (ti, di) in pending {
            self.manager.commit_match(ti, &detections[di], None, 1.0);
        }
        for (di, d) in detections.iter().enumerate() {
            if !det_matched[di] {
                self.manager.spawn(d, None);
            }
        }
        self.manager.finalize_frame();
    }

    fn finish(&mut self) -> TrackSet {
        self.manager.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trackers::track_video;
    use tm_types::{ids::classes, BBox, GtObjectId};

    fn det(frame: u64, x: f64, y: f64, actor: u64) -> Detection {
        Detection::of_actor(
            FrameIdx(frame),
            BBox::new(x, y, 40.0, 80.0),
            0.9,
            classes::PEDESTRIAN,
            1.0,
            GtObjectId(actor),
        )
    }

    #[test]
    fn clean_video_yields_one_track_per_actor() {
        let frames: Vec<Vec<Detection>> = (0..50u64)
            .map(|f| {
                vec![
                    det(f, 10.0 + 3.0 * f as f64, 100.0, 1),
                    det(f, 10.0 + 3.0 * f as f64, 500.0, 2),
                ]
            })
            .collect();
        let mut t = CenterTrackLike::new(CenterTrackLikeConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2);
        for tr in tracks.iter() {
            assert_eq!(tr.len(), 50);
        }
    }

    #[test]
    fn gap_beyond_patience_fragments() {
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..60u64 {
            if (25..40).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)]);
            }
        }
        let mut t = CenterTrackLike::new(CenterTrackLikeConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn distant_detection_does_not_match() {
        // An actor teleporting far outside the radius becomes a new track.
        let mut frames: Vec<Vec<Detection>> =
            (0..20u64).map(|f| vec![det(f, 10.0, 100.0, 1)]).collect();
        frames.extend((20..40u64).map(|f| vec![det(f, 800.0, 600.0, 1)]));
        let mut t = CenterTrackLike::new(CenterTrackLikeConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn deterministic() {
        let frames: Vec<Vec<Detection>> = (0..30u64)
            .map(|f| vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)])
            .collect();
        let a = track_video(
            &mut CenterTrackLike::new(CenterTrackLikeConfig::default()),
            &frames,
        );
        let b = track_video(
            &mut CenterTrackLike::new(CenterTrackLikeConfig::default()),
            &frames,
        );
        assert_eq!(a, b);
    }
}
