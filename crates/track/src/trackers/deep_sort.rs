//! DeepSORT — SORT with a deep appearance metric (Wojke et al., 2017).
//!
//! Adds to SORT: per-detection ReID features, an exponential-moving-average
//! appearance gallery per track, a matching *cascade* that prefers recently
//! updated tracks, and a much longer patience. The appearance term lets the
//! tracker re-associate an object after a gap that SORT would give up on —
//! which is why DeepSORT fragments less (but still fragments, per the
//! paper's Fig. 11).
//!
//! The learned CNN descriptor is replaced by the `tm-reid` appearance
//! simulator; the association logic is the published one.

use crate::assign::assign_sparse;
use crate::assoc::{self, AssocScratch};
use crate::lifecycle::{LifecycleConfig, TrackManager};
use crate::trackers::Tracker;
use tm_reid::{AppearanceModel, Feature};
use tm_types::{Detection, FrameIdx, TrackSet};

/// DeepSORT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepSortConfig {
    /// Weight of the IoU term in the combined cost (the rest is
    /// appearance).
    pub lambda_iou: f64,
    /// Reject matches whose combined cost exceeds this gate.
    pub max_cost: f64,
    /// Reject matches whose IoU gate alone fails for *recent* tracks
    /// (time_since_update == 0); coasted tracks rely on appearance.
    pub iou_min_recent: f64,
    /// EMA momentum of the appearance gallery (fraction of old feature
    /// kept on each update).
    pub feature_momentum: f64,
    /// Depth of the matching cascade: tracks are matched in increasing
    /// time-since-update order up to this age.
    pub cascade_depth: u64,
    /// Reuse the overlapping track's EMA gallery feature for unambiguous
    /// detections instead of featurizing them — the tracker-side analogue
    /// of the session's extraction gate. A detection is unambiguous when
    /// exactly one *recent* track (time_since_update == 0, gallery
    /// present) overlaps it at IoU ≥ `iou_min_recent`, and that track
    /// overlaps no other detection as strongly. Off by default: the
    /// default tracker is bit-identical to the pre-gating DeepSORT.
    pub selective_featurize: bool,
    /// Lifecycle parameters.
    pub lifecycle: LifecycleConfig,
}

impl Default for DeepSortConfig {
    fn default() -> Self {
        Self {
            lambda_iou: 0.4,
            max_cost: 0.45,
            iou_min_recent: 0.2,
            feature_momentum: 0.8,
            cascade_depth: 15,
            selective_featurize: false,
            lifecycle: LifecycleConfig {
                max_age: 15,
                min_hits: 3,
                min_confidence: 0.5,
                ..LifecycleConfig::default()
            },
        }
    }
}

/// The DeepSORT tracker. Borrows the ReID model to featurize detections.
#[derive(Debug, Clone)]
pub struct DeepSort<'m> {
    config: DeepSortConfig,
    manager: TrackManager,
    model: &'m AppearanceModel,
    scratch: AssocScratch,
}

impl<'m> DeepSort<'m> {
    /// Creates a DeepSORT tracker over the given appearance model.
    pub fn new(config: DeepSortConfig, model: &'m AppearanceModel) -> Self {
        Self {
            manager: TrackManager::new(config.lifecycle),
            config,
            model,
            scratch: AssocScratch::new(),
        }
    }

    /// Featurizes `detections` selectively: a detection with exactly one
    /// strongly-overlapping recent track (which itself overlaps no other
    /// detection as strongly) inherits that track's gallery feature; every
    /// other detection is featurized fresh. Counted into the assignment
    /// stats so the savings surface as `assign.features_{extracted,reused}`.
    fn selective_features(&mut self, detections: &[Detection]) -> Vec<Feature> {
        let gate = self.config.iou_min_recent;
        // candidate[di] = (number of recent overlapping tracks, last such
        // track); claims[ti] = number of detections that track overlaps.
        let mut candidate: Vec<(usize, usize)> = vec![(0, usize::MAX); detections.len()];
        let mut claims: Vec<usize> = vec![0; self.manager.active.len()];
        for (ti, t) in self.manager.active.iter().enumerate() {
            if t.time_since_update != 0 || t.feature.is_none() {
                continue;
            }
            for (di, d) in detections.iter().enumerate() {
                if t.predicted.iou(&d.bbox) >= gate {
                    candidate[di].0 += 1;
                    candidate[di].1 = ti;
                    claims[ti] += 1;
                }
            }
        }
        let stats = &mut self.scratch.assign.stats;
        detections
            .iter()
            .zip(&candidate)
            .map(|(d, &(n, ti))| {
                if n == 1 && claims[ti] == 1 {
                    if let Some(f) = &self.manager.active[ti].feature {
                        stats.features_reused += 1;
                        return f.clone();
                    }
                }
                stats.features_extracted += 1;
                self.model.observe_detection(d)
            })
            .collect()
    }
}

impl Tracker for DeepSort<'_> {
    fn name(&self) -> &'static str {
        "DeepSORT"
    }

    fn step(&mut self, _frame: FrameIdx, detections: &[Detection]) {
        self.manager.predict_all();
        let det_features: Vec<Feature> = if self.config.selective_featurize {
            self.selective_features(detections)
        } else {
            detections
                .iter()
                .map(|d| self.model.observe_detection(d))
                .collect()
        };

        let mut det_matched = vec![false; detections.len()];

        // Matching cascade: tracks with the smallest time-since-update get
        // first pick, so long-coasted tracks cannot steal fresh detections.
        for age in 0..=self.config.cascade_depth {
            let track_idxs: Vec<usize> = self
                .manager
                .active
                .iter()
                .enumerate()
                .filter(|(_, t)| t.time_since_update == age)
                .map(|(i, _)| i)
                .collect();
            if track_idxs.is_empty() {
                continue;
            }
            let det_idxs: Vec<usize> = (0..detections.len()).filter(|&i| !det_matched[i]).collect();
            if det_idxs.is_empty() {
                break;
            }
            // Recent tracks additionally require a minimum IoU (they should
            // not teleport); coasted tracks are allowed appearance-only
            // matches since their motion prediction has drifted. The IoU
            // gate also makes the recent tier spatially gateable, so its
            // appearance distances are only computed for intersecting pairs.
            let iou_gate = (age == 0).then_some(self.config.iou_min_recent);
            assoc::combined_edges_sub(
                &self.manager.active,
                &track_idxs,
                detections,
                &det_idxs,
                &det_features,
                self.config.lambda_iou,
                self.config.max_cost,
                iou_gate,
                &mut self.scratch,
            );
            let matches = assign_sparse(
                track_idxs.len(),
                det_idxs.len(),
                &self.scratch.edges,
                &mut self.scratch.assign,
            );
            for &(sub_t, sub_d) in matches {
                let ti = track_idxs[sub_t as usize];
                let di = det_idxs[sub_d as usize];
                self.manager.commit_match(
                    ti,
                    &detections[di],
                    Some(det_features[di].clone()),
                    self.config.feature_momentum,
                );
                det_matched[di] = true;
            }
        }

        for (di, d) in detections.iter().enumerate() {
            if !det_matched[di] {
                self.manager.spawn(d, Some(det_features[di].clone()));
            }
        }
        self.manager.finalize_frame();
    }

    fn finish(&mut self) -> TrackSet {
        self.scratch.assign.stats.flush(&tm_obs::current());
        self.manager.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trackers::track_video;
    use tm_reid::AppearanceConfig;
    use tm_types::{ids::classes, BBox, GtObjectId};

    fn model() -> AppearanceModel {
        AppearanceModel::new(AppearanceConfig::default())
    }

    fn det(frame: u64, x: f64, y: f64, actor: u64) -> Detection {
        Detection::of_actor(
            FrameIdx(frame),
            BBox::new(x, y, 40.0, 80.0),
            0.9,
            classes::PEDESTRIAN,
            1.0,
            GtObjectId(actor),
        )
    }

    #[test]
    fn clean_video_yields_one_track_per_actor() {
        let m = model();
        let frames: Vec<Vec<Detection>> = (0..50u64)
            .map(|f| {
                vec![
                    det(f, 10.0 + 3.0 * f as f64, 100.0, 1),
                    det(f, 10.0 + 3.0 * f as f64, 500.0, 2),
                ]
            })
            .collect();
        let mut ds = DeepSort::new(DeepSortConfig::default(), &m);
        let tracks = track_video(&mut ds, &frames);
        assert_eq!(tracks.len(), 2);
        for t in tracks.iter() {
            assert_eq!(t.majority_actor().unwrap().1, 50);
        }
    }

    #[test]
    fn bridges_gaps_that_fragment_sort() {
        // A 10-frame gap: SORT (max_age 3) splits, DeepSORT (max_age 15 +
        // appearance) must bridge.
        let m = model();
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..60u64 {
            if (25..35).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)]);
            }
        }
        let mut ds = DeepSort::new(DeepSortConfig::default(), &m);
        let tracks = track_video(&mut ds, &frames);
        assert_eq!(tracks.len(), 1, "DeepSORT should coast over a 10-frame gap");
    }

    #[test]
    fn fragments_beyond_patience() {
        let m = model();
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..100u64 {
            if (30..60).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)]);
            }
        }
        let mut ds = DeepSort::new(DeepSortConfig::default(), &m);
        let tracks = track_video(&mut ds, &frames);
        assert_eq!(
            tracks.len(),
            2,
            "a 30-frame gap exceeds DeepSORT's patience"
        );
    }

    #[test]
    fn appearance_prevents_swap_on_crossing() {
        // Two visually distinct actors crossing: appearance keeps identities.
        let m = model();
        let frames: Vec<Vec<Detection>> = (0..40u64)
            .map(|f| {
                vec![
                    det(f, 10.0 + 5.0 * f as f64, 100.0, 1),
                    det(f, 210.0 - 5.0 * f as f64, 100.0, 2),
                ]
            })
            .collect();
        let mut ds = DeepSort::new(DeepSortConfig::default(), &m);
        let tracks = track_video(&mut ds, &frames);
        // Identity purity: every track is dominated by one actor with at
        // least 80% of its boxes.
        for t in tracks.iter() {
            let (_, votes) = t.majority_actor().unwrap();
            assert!(
                votes as f64 / t.len() as f64 > 0.8,
                "track {} is mixed ({votes}/{})",
                t.id,
                t.len()
            );
        }
    }

    #[test]
    fn selective_featurization_keeps_identity_and_saves_extractions() {
        use std::sync::Arc;
        let m = model();
        let frames: Vec<Vec<Detection>> = (0..50u64)
            .map(|f| {
                vec![
                    det(f, 10.0 + 3.0 * f as f64, 100.0, 1),
                    det(f, 10.0 + 3.0 * f as f64, 500.0, 2),
                ]
            })
            .collect();
        let rec = Arc::new(tm_obs::Recorder::new());
        let tracks = tm_obs::scoped(tm_obs::Obs::new(rec.clone()), || {
            let mut ds = DeepSort::new(
                DeepSortConfig {
                    selective_featurize: true,
                    ..DeepSortConfig::default()
                },
                &m,
            );
            track_video(&mut ds, &frames)
        });
        // Quality unchanged on a clean video…
        assert_eq!(tracks.len(), 2);
        for t in tracks.iter() {
            assert_eq!(t.majority_actor().unwrap().1, 50);
        }
        // …with most featurizations replaced by gallery reuse.
        let snap = rec.snapshot();
        let counter = |name: &str| {
            snap.lines()
                .find(|l| l.contains(name))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        let reused = counter("assign.features_reused");
        let extracted = counter("assign.features_extracted");
        assert_eq!(extracted + reused, 100, "every detection gets a feature");
        assert!(
            reused > extracted,
            "steady tracking must reuse more than it extracts ({reused} vs {extracted})"
        );
    }

    #[test]
    fn default_config_never_touches_featurization_counters() {
        use std::sync::Arc;
        let m = model();
        let frames: Vec<Vec<Detection>> = (0..20u64)
            .map(|f| vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)])
            .collect();
        let rec = Arc::new(tm_obs::Recorder::new());
        tm_obs::scoped(tm_obs::Obs::new(rec.clone()), || {
            track_video(&mut DeepSort::new(DeepSortConfig::default(), &m), &frames)
        });
        let snap = rec.snapshot();
        assert!(
            !snap.contains("assign.features_"),
            "ungated DeepSORT must keep the historical counter set: {snap}"
        );
    }

    #[test]
    fn deterministic() {
        let m = model();
        let frames: Vec<Vec<Detection>> = (0..30u64)
            .map(|f| vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)])
            .collect();
        let a = track_video(&mut DeepSort::new(DeepSortConfig::default(), &m), &frames);
        let b = track_video(&mut DeepSort::new(DeepSortConfig::default(), &m), &frames);
        assert_eq!(a, b);
    }
}
