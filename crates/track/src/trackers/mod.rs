//! The tracker implementations and their shared interface.

pub mod byte_track;
pub mod center_track;
pub mod deep_sort;
pub mod iou_tracker;
pub mod sort;
pub mod tracktor;
pub mod uma;

pub use byte_track::{ByteTrack, ByteTrackConfig};
pub use center_track::{CenterTrackLike, CenterTrackLikeConfig};
pub use deep_sort::{DeepSort, DeepSortConfig};
pub use iou_tracker::{IouTracker, IouTrackerConfig};
pub use sort::{Sort, SortConfig};
pub use tracktor::{TracktorLike, TracktorLikeConfig};
pub use uma::{UmaLike, UmaLikeConfig};

use tm_reid::AppearanceModel;
use tm_types::{Detection, FrameIdx, TrackSet};

/// An online multi-object tracker.
///
/// Call [`Tracker::step`] once per frame in order, then [`Tracker::finish`]
/// to obtain the full track set. The [`track_video`] helper does exactly
/// that.
pub trait Tracker {
    /// Human-readable tracker name (used by the experiment harness).
    fn name(&self) -> &'static str;

    /// Processes one frame's detections.
    fn step(&mut self, frame: FrameIdx, detections: &[Detection]);

    /// Flushes all state and returns every track produced.
    fn finish(&mut self) -> TrackSet;
}

/// Runs a tracker over a whole video (one detection list per frame).
pub fn track_video<T: Tracker + ?Sized>(
    tracker: &mut T,
    detection_frames: &[Vec<Detection>],
) -> TrackSet {
    for (f, dets) in detection_frames.iter().enumerate() {
        tracker.step(FrameIdx(f as u64), dets);
    }
    tracker.finish()
}

/// The tracking algorithms available for experiments (§V-A / §V-G of the
/// paper evaluates SORT, DeepSORT, Tracktor, UMA and CenterTrack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackerKind {
    /// SORT [3]: Kalman + IoU Hungarian, short patience.
    Sort,
    /// DeepSORT [4]: adds appearance association and longer patience.
    DeepSort,
    /// Tracktor [5] surrogate: regression-style greedy propagation
    /// (part-to-whole strategy); the paper's best performer.
    Tracktor,
    /// CenterTrack [32] surrogate: point-offset greedy association.
    CenterTrack,
    /// UMA [31] surrogate: unified motion + affinity Hungarian.
    Uma,
    /// ByteTrack [extension]: two-stage association that also uses
    /// low-confidence detections (published after the paper's comparison).
    ByteTrack,
    /// Plain greedy IoU tracker [extension]: the weakest baseline, with no
    /// motion model and near-zero patience.
    Iou,
}

impl TrackerKind {
    /// The kinds the paper's experiments compare, in its order.
    pub const ALL: [TrackerKind; 5] = [
        TrackerKind::Tracktor,
        TrackerKind::DeepSort,
        TrackerKind::Uma,
        TrackerKind::Sort,
        TrackerKind::CenterTrack,
    ];

    /// Every tracker including the extension kinds.
    pub const EXTENDED: [TrackerKind; 7] = [
        TrackerKind::Tracktor,
        TrackerKind::DeepSort,
        TrackerKind::Uma,
        TrackerKind::Sort,
        TrackerKind::CenterTrack,
        TrackerKind::ByteTrack,
        TrackerKind::Iou,
    ];

    /// Instantiates the tracker with its default configuration.
    /// Appearance-based trackers borrow the ReID model.
    pub fn build<'m>(self, model: &'m AppearanceModel) -> Box<dyn Tracker + 'm> {
        match self {
            TrackerKind::Sort => Box::new(Sort::new(SortConfig::default())),
            TrackerKind::DeepSort => Box::new(DeepSort::new(DeepSortConfig::default(), model)),
            TrackerKind::Tracktor => Box::new(TracktorLike::new(TracktorLikeConfig::default())),
            TrackerKind::CenterTrack => {
                Box::new(CenterTrackLike::new(CenterTrackLikeConfig::default()))
            }
            TrackerKind::Uma => Box::new(UmaLike::new(UmaLikeConfig::default(), model)),
            TrackerKind::ByteTrack => Box::new(ByteTrack::new(ByteTrackConfig::default())),
            TrackerKind::Iou => Box::new(IouTracker::new(IouTrackerConfig::default())),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TrackerKind::Sort => "SORT",
            TrackerKind::DeepSort => "DeepSORT",
            TrackerKind::Tracktor => "Tracktor",
            TrackerKind::CenterTrack => "CenterTrack",
            TrackerKind::Uma => "UMA",
            TrackerKind::ByteTrack => "ByteTrack",
            TrackerKind::Iou => "IoU",
        }
    }
}
