//! SORT — Simple Online and Realtime Tracking (Bewley et al., 2016).
//!
//! The published association logic, implemented faithfully: Kalman
//! prediction, Hungarian assignment on an IoU cost with a hard IoU gate,
//! immediate spawning of unmatched detections, and a short `max_age`
//! patience. SORT's short patience makes it the most fragmentation-prone
//! tracker in this crate — useful for stress-testing TMerge.

use crate::assign::assign_sparse;
use crate::assoc::{self, AssocScratch};
use crate::lifecycle::{LifecycleConfig, TrackManager};
use crate::trackers::Tracker;
use tm_types::{Detection, FrameIdx, TrackSet};

/// SORT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortConfig {
    /// Reject matches with IoU below this gate.
    pub iou_min: f64,
    /// Lifecycle parameters (patience, confirmation, confidence floor).
    pub lifecycle: LifecycleConfig,
}

impl Default for SortConfig {
    fn default() -> Self {
        Self {
            iou_min: 0.3,
            lifecycle: LifecycleConfig {
                max_age: 3,
                min_hits: 3,
                min_confidence: 0.5,
                ..LifecycleConfig::default()
            },
        }
    }
}

/// The SORT tracker.
#[derive(Debug, Clone)]
pub struct Sort {
    config: SortConfig,
    manager: TrackManager,
    scratch: AssocScratch,
}

impl Sort {
    /// Creates a SORT tracker.
    pub fn new(config: SortConfig) -> Self {
        Self {
            manager: TrackManager::new(config.lifecycle),
            config,
            scratch: AssocScratch::new(),
        }
    }
}

impl Tracker for Sort {
    fn name(&self) -> &'static str {
        "SORT"
    }

    fn step(&mut self, _frame: FrameIdx, detections: &[Detection]) {
        self.manager.predict_all();
        assoc::iou_edges(
            &self.manager.active,
            detections,
            1.0 - self.config.iou_min,
            &mut self.scratch,
        );
        let matches = assign_sparse(
            self.manager.active.len(),
            detections.len(),
            &self.scratch.edges,
            &mut self.scratch.assign,
        );
        let mut det_matched = vec![false; detections.len()];
        for &(ti, di) in matches {
            self.manager
                .commit_match(ti as usize, &detections[di as usize], None, 1.0);
            det_matched[di as usize] = true;
        }
        for (di, d) in detections.iter().enumerate() {
            if !det_matched[di] {
                self.manager.spawn(d, None);
            }
        }
        self.manager.finalize_frame();
    }

    fn finish(&mut self) -> TrackSet {
        self.scratch.assign.stats.flush(&tm_obs::current());
        self.manager.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trackers::track_video;
    use tm_types::{ids::classes, BBox, GtObjectId, TrackId};

    fn det(frame: u64, x: f64, y: f64, actor: u64) -> Detection {
        Detection::of_actor(
            FrameIdx(frame),
            BBox::new(x, y, 40.0, 80.0),
            0.9,
            classes::PEDESTRIAN,
            1.0,
            GtObjectId(actor),
        )
    }

    /// Two well-separated actors moving linearly, fully detected.
    fn clean_two_actor_video(n: u64) -> Vec<Vec<Detection>> {
        (0..n)
            .map(|f| {
                vec![
                    det(f, 10.0 + 3.0 * f as f64, 100.0, 1),
                    det(f, 10.0 + 3.0 * f as f64, 500.0, 2),
                ]
            })
            .collect()
    }

    #[test]
    fn clean_video_yields_one_track_per_actor() {
        let mut sort = Sort::new(SortConfig::default());
        let tracks = track_video(&mut sort, &clean_two_actor_video(50));
        assert_eq!(tracks.len(), 2);
        for t in tracks.iter() {
            assert_eq!(t.len(), 50);
            // Pure tracks: one actor each.
            let (actor, votes) = t.majority_actor().unwrap();
            assert_eq!(votes, 50, "track mixed actors");
            assert!(actor == GtObjectId(1) || actor == GtObjectId(2));
        }
    }

    #[test]
    fn detection_gap_beyond_max_age_fragments_track() {
        // One actor, detections vanish for 10 frames (>> max_age = 3).
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..60u64 {
            if (25..35).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)]);
            }
        }
        let mut sort = Sort::new(SortConfig::default());
        let tracks = track_video(&mut sort, &frames);
        assert_eq!(tracks.len(), 2, "occlusion gap must split the track");
        // Both fragments belong to the same GT actor → polyonymous pair.
        for t in tracks.iter() {
            assert_eq!(t.majority_actor().unwrap().0, GtObjectId(1));
        }
    }

    #[test]
    fn short_gap_within_max_age_is_bridged() {
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..40u64 {
            if (20..22).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)]);
            }
        }
        let mut sort = Sort::new(SortConfig::default());
        let tracks = track_video(&mut sort, &frames);
        assert_eq!(tracks.len(), 1, "a 2-frame gap must be coasted over");
    }

    #[test]
    fn low_confidence_detections_do_not_spawn() {
        let mut frames = clean_two_actor_video(20);
        // A persistent low-confidence false positive.
        for (f, dets) in frames.iter_mut().enumerate() {
            dets.push(Detection::false_positive(
                FrameIdx(f as u64),
                BBox::new(700.0, 700.0, 30.0, 30.0),
                0.3,
                classes::PEDESTRIAN,
            ));
        }
        let mut sort = Sort::new(SortConfig::default());
        let tracks = track_video(&mut sort, &frames);
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn crossing_actors_keep_distinct_ids_mostly() {
        // Two actors crossing paths; SORT may swap but must keep 2 tracks.
        let frames: Vec<Vec<Detection>> = (0..60u64)
            .map(|f| {
                vec![
                    det(f, 10.0 + 5.0 * f as f64, 100.0, 1),
                    det(f, 310.0 - 5.0 * f as f64, 110.0, 2),
                ]
            })
            .collect();
        let mut sort = Sort::new(SortConfig::default());
        let tracks = track_video(&mut sort, &frames);
        assert!(tracks.len() >= 2, "got {} tracks", tracks.len());
        assert_eq!(tracks.iter().map(|t| t.len()).sum::<usize>(), 120);
    }

    #[test]
    fn tracker_is_deterministic() {
        let frames = clean_two_actor_video(30);
        let a = track_video(&mut Sort::new(SortConfig::default()), &frames);
        let b = track_video(&mut Sort::new(SortConfig::default()), &frames);
        assert_eq!(a, b);
    }

    #[test]
    fn ids_start_at_one() {
        let frames = clean_two_actor_video(10);
        let tracks = track_video(&mut Sort::new(SortConfig::default()), &frames);
        assert!(tracks.get(TrackId(1)).is_some());
    }
}
