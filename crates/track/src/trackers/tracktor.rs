//! A Tracktor-style regression tracker (Bergmann et al., 2019) surrogate.
//!
//! Tracktor has no explicit data association: each track carries its own
//! box forward by *regressing* it onto the object in the new frame, using
//! the detector's regression head, and claims the detection it lands on.
//! Without a CNN the regression is surrogated by the track's own motion
//! extrapolation followed by a greedy claim of the best-overlapping
//! detection (the part-to-whole strategy: a partially visible object can
//! still be claimed at a modest IoU). New tracks spawn only from detections
//! that no existing track overlaps — Tracktor's "detections far from any
//! active track" rule.
//!
//! With its long patience and greedy high-overlap claims this is the best
//! fragmenter-avoider in the crate, mirroring the paper's finding that
//! Tracktor produces the fewest polyonymous tracks.

use crate::assign::BoxGrid;
use crate::lifecycle::{LifecycleConfig, TrackManager};
use crate::trackers::Tracker;
use tm_types::{BBox, Detection, FrameIdx, TrackSet};

/// Tracktor-surrogate parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracktorLikeConfig {
    /// Minimum IoU between the regressed track box and a detection for the
    /// track to claim it (`σ_active` in the Tracktor paper).
    pub sigma_active: f64,
    /// A new track spawns from a detection only when its IoU with every
    /// active track is below this (`λ_new`).
    pub lambda_new: f64,
    /// Lifecycle parameters.
    pub lifecycle: LifecycleConfig,
}

impl Default for TracktorLikeConfig {
    fn default() -> Self {
        Self {
            sigma_active: 0.25,
            lambda_new: 0.3,
            lifecycle: LifecycleConfig {
                max_age: 25,
                min_hits: 3,
                min_confidence: 0.5,
                ..LifecycleConfig::default()
            },
        }
    }
}

/// The Tracktor-style tracker.
#[derive(Debug, Clone)]
pub struct TracktorLike {
    config: TracktorLikeConfig,
    manager: TrackManager,
    grid: BoxGrid,
    boxes: Vec<BBox>,
    cand: Vec<u32>,
}

impl TracktorLike {
    /// Creates a Tracktor-style tracker.
    pub fn new(config: TracktorLikeConfig) -> Self {
        Self {
            manager: TrackManager::new(config.lifecycle),
            config,
            grid: BoxGrid::new(),
            boxes: Vec::new(),
            cand: Vec::new(),
        }
    }
}

impl Tracker for TracktorLike {
    fn name(&self) -> &'static str {
        "Tracktor"
    }

    fn step(&mut self, _frame: FrameIdx, detections: &[Detection]) {
        self.manager.predict_all();

        // Greedy claims, highest-confidence tracks first (Tracktor processes
        // its own detections in score order).
        let mut order: Vec<usize> = (0..self.manager.active.len()).collect();
        order.sort_by(|&a, &b| {
            self.manager.active[b]
                .last_confidence
                .partial_cmp(&self.manager.active[a].last_confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(self.manager.active[a].id.cmp(&self.manager.active[b].id))
        });
        let mut det_claimed = vec![false; detections.len()];
        // Claims need iou ≥ sigma_active, so when the gate is positive a
        // claimable detection must intersect the predicted box and the grid
        // restricts the scan; candidates come back in ascending detection
        // order, preserving the full scan's first-wins tie behavior.
        let claim_gated = self.config.sigma_active > 0.0;
        if claim_gated {
            self.boxes.clear();
            self.boxes.extend(detections.iter().map(|d| d.bbox));
            self.grid.rebuild(&self.boxes);
        }
        for ti in order {
            let t = &self.manager.active[ti];
            let mut best: Option<(usize, f64)> = None;
            let consider = |di: usize, best: &mut Option<(usize, f64)>| {
                let d = &detections[di];
                if det_claimed[di] || d.class != t.class {
                    return;
                }
                let iou = t.predicted.iou(&d.bbox);
                if iou >= self.config.sigma_active && best.is_none_or(|(_, b)| iou > b) {
                    *best = Some((di, iou));
                }
            };
            if claim_gated {
                self.grid.candidates(&t.predicted, &mut self.cand);
                for &di in &self.cand {
                    consider(di as usize, &mut best);
                }
            } else {
                for di in 0..detections.len() {
                    consider(di, &mut best);
                }
            }
            if let Some((di, _)) = best {
                det_claimed[di] = true;
                self.manager.commit_match(ti, &detections[di], None, 1.0);
            }
        }

        // Spawn rule: a detection starts a new track only if it is far from
        // every active track (claimed or not) — *including* tracks spawned
        // earlier in this very loop, which is what suppresses duplicate
        // detections of one new object. The grid covers the tracks that
        // existed at the start of the loop; the (few) freshly spawned ones
        // are scanned directly.
        let n_preexisting = self.manager.active.len();
        let spawn_gated = self.config.lambda_new > 0.0;
        if spawn_gated {
            self.boxes.clear();
            self.boxes
                .extend(self.manager.active.iter().map(|t| t.predicted));
            self.grid.rebuild(&self.boxes);
        }
        for (di, d) in detections.iter().enumerate() {
            if det_claimed[di] {
                continue;
            }
            let near_existing = if spawn_gated {
                self.grid.candidates(&d.bbox, &mut self.cand);
                self.cand.iter().any(|&tj| {
                    self.manager.active[tj as usize].predicted.iou(&d.bbox)
                        >= self.config.lambda_new
                }) || self.manager.active[n_preexisting..]
                    .iter()
                    .any(|t| t.predicted.iou(&d.bbox) >= self.config.lambda_new)
            } else {
                self.manager
                    .active
                    .iter()
                    .any(|t| t.predicted.iou(&d.bbox) >= self.config.lambda_new)
            };
            if !near_existing {
                self.manager.spawn(d, None);
            }
        }
        self.manager.finalize_frame();
    }

    fn finish(&mut self) -> TrackSet {
        self.manager.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trackers::track_video;
    use tm_types::{ids::classes, BBox, GtObjectId};

    fn det(frame: u64, x: f64, y: f64, actor: u64) -> Detection {
        Detection::of_actor(
            FrameIdx(frame),
            BBox::new(x, y, 40.0, 80.0),
            0.9,
            classes::PEDESTRIAN,
            1.0,
            GtObjectId(actor),
        )
    }

    #[test]
    fn clean_video_yields_one_track_per_actor() {
        let frames: Vec<Vec<Detection>> = (0..50u64)
            .map(|f| {
                vec![
                    det(f, 10.0 + 3.0 * f as f64, 100.0, 1),
                    det(f, 10.0 + 3.0 * f as f64, 500.0, 2),
                ]
            })
            .collect();
        let mut t = TracktorLike::new(TracktorLikeConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn long_patience_bridges_wide_gaps() {
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..80u64 {
            if (30..50).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)]);
            }
        }
        let mut t = TracktorLike::new(TracktorLikeConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 1, "20-frame gap within patience 25");
    }

    #[test]
    fn fragments_beyond_patience() {
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..120u64 {
            if (30..70).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)]);
            }
        }
        let mut t = TracktorLike::new(TracktorLikeConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn spawn_rule_suppresses_overlapping_detections() {
        // Duplicate detections of the same object must not spawn twins.
        let frames: Vec<Vec<Detection>> = (0..30u64)
            .map(|f| {
                let x = 10.0 + 3.0 * f as f64;
                vec![det(f, x, 100.0, 1), det(f, x + 5.0, 102.0, 1)]
            })
            .collect();
        let mut t = TracktorLike::new(TracktorLikeConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 1, "near-duplicate detections spawned twins");
    }

    #[test]
    fn deterministic() {
        let frames: Vec<Vec<Detection>> = (0..30u64)
            .map(|f| vec![det(f, 10.0 + 3.0 * f as f64, 100.0, 1)])
            .collect();
        let a = track_video(
            &mut TracktorLike::new(TracktorLikeConfig::default()),
            &frames,
        );
        let b = track_video(
            &mut TracktorLike::new(TracktorLikeConfig::default()),
            &frames,
        );
        assert_eq!(a, b);
    }
}
