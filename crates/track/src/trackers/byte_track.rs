//! A ByteTrack-style tracker (Zhang et al., 2022) — two-stage association.
//!
//! ByteTrack's insight: do not discard low-confidence detections. Stage 1
//! associates high-confidence detections to tracks by IoU (Hungarian);
//! stage 2 associates the *remaining* tracks to the low-confidence
//! detections — often exactly the half-occluded objects other trackers
//! miss, which is why ByteTrack fragments less through partial occlusions.
//! Only unmatched high-confidence detections spawn new tracks.
//!
//! Published after the TMerge paper's comparison set; included here as an
//! extension tracker for the fragmentation studies.

use crate::assign::assign_sparse;
use crate::assoc::{self, AssocScratch};
use crate::lifecycle::{LifecycleConfig, TrackManager};
use crate::trackers::Tracker;
use tm_types::{Detection, FrameIdx, TrackSet};

/// ByteTrack parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByteTrackConfig {
    /// Detections at or above this confidence enter stage 1.
    pub high_conf: f64,
    /// Detections at or above this (but below `high_conf`) enter stage 2.
    pub low_conf: f64,
    /// IoU gate of stage 1.
    pub iou_min_high: f64,
    /// IoU gate of stage 2 (stricter: low-confidence boxes are noisy).
    pub iou_min_low: f64,
    /// Lifecycle parameters.
    pub lifecycle: LifecycleConfig,
}

impl Default for ByteTrackConfig {
    fn default() -> Self {
        Self {
            high_conf: 0.6,
            low_conf: 0.1,
            iou_min_high: 0.3,
            iou_min_low: 0.5,
            lifecycle: LifecycleConfig {
                max_age: 10,
                min_hits: 3,
                min_confidence: 0.6,
                ..LifecycleConfig::default()
            },
        }
    }
}

/// The ByteTrack-style tracker.
#[derive(Debug, Clone)]
pub struct ByteTrack {
    config: ByteTrackConfig,
    manager: TrackManager,
    scratch: AssocScratch,
}

impl ByteTrack {
    /// Creates a ByteTrack-style tracker.
    pub fn new(config: ByteTrackConfig) -> Self {
        Self {
            manager: TrackManager::new(config.lifecycle),
            config,
            scratch: AssocScratch::new(),
        }
    }

    /// Hungarian IoU association of a detection subset against a track
    /// subset; commits matches and returns which detections were used.
    /// Both subsets are addressed by index — no tracks or detections are
    /// cloned out.
    fn associate(
        &mut self,
        track_idxs: &[usize],
        detections: &[Detection],
        det_idxs: &[usize],
        iou_min: f64,
    ) -> (Vec<usize>, Vec<usize>) {
        if track_idxs.is_empty() || det_idxs.is_empty() {
            return (track_idxs.to_vec(), det_idxs.to_vec());
        }
        assoc::iou_edges_sub(
            &self.manager.active,
            track_idxs,
            detections,
            det_idxs,
            1.0 - iou_min,
            &mut self.scratch,
        );
        let matches = assign_sparse(
            track_idxs.len(),
            det_idxs.len(),
            &self.scratch.edges,
            &mut self.scratch.assign,
        );
        let mut track_used = vec![false; track_idxs.len()];
        let mut det_used = vec![false; det_idxs.len()];
        for &(st, sd) in matches {
            let (st, sd) = (st as usize, sd as usize);
            self.manager
                .commit_match(track_idxs[st], &detections[det_idxs[sd]], None, 1.0);
            track_used[st] = true;
            det_used[sd] = true;
        }
        let free_tracks = track_idxs
            .iter()
            .zip(&track_used)
            .filter(|(_, used)| !**used)
            .map(|(&i, _)| i)
            .collect();
        let free_dets = det_idxs
            .iter()
            .zip(&det_used)
            .filter(|(_, used)| !**used)
            .map(|(&i, _)| i)
            .collect();
        (free_tracks, free_dets)
    }
}

impl Tracker for ByteTrack {
    fn name(&self) -> &'static str {
        "ByteTrack"
    }

    fn step(&mut self, _frame: FrameIdx, detections: &[Detection]) {
        self.manager.predict_all();
        let high: Vec<usize> = (0..detections.len())
            .filter(|&i| detections[i].confidence >= self.config.high_conf)
            .collect();
        let low: Vec<usize> = (0..detections.len())
            .filter(|&i| {
                detections[i].confidence >= self.config.low_conf
                    && detections[i].confidence < self.config.high_conf
            })
            .collect();
        let all_tracks: Vec<usize> = (0..self.manager.active.len()).collect();

        // Stage 1: high-confidence detections vs all tracks.
        let (free_tracks, free_high) =
            self.associate(&all_tracks, detections, &high, self.config.iou_min_high);
        // Stage 2: the leftover tracks try the low-confidence detections.
        let (_, _) = self.associate(&free_tracks, detections, &low, self.config.iou_min_low);

        // Only unmatched high-confidence detections start new tracks.
        for di in free_high {
            self.manager.spawn(&detections[di], None);
        }
        self.manager.finalize_frame();
    }

    fn finish(&mut self) -> TrackSet {
        self.scratch.assign.stats.flush(&tm_obs::current());
        self.manager.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trackers::track_video;
    use tm_types::{ids::classes, BBox, GtObjectId};

    fn det_conf(frame: u64, x: f64, conf: f64) -> Detection {
        Detection::of_actor(
            FrameIdx(frame),
            BBox::new(x, 100.0, 40.0, 80.0),
            conf,
            classes::PEDESTRIAN,
            conf, // visibility tracks confidence in this toy input
            GtObjectId(1),
        )
    }

    #[test]
    fn clean_video_single_track() {
        let frames: Vec<Vec<Detection>> = (0..40)
            .map(|f| vec![det_conf(f, 10.0 + 3.0 * f as f64, 0.9)])
            .collect();
        let mut t = ByteTrack::new(ByteTrackConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks.iter().next().unwrap().len(), 40);
    }

    #[test]
    fn low_confidence_stretch_is_bridged_by_stage_two() {
        // Confidence collapses to 0.3 for 20 frames (a partial occlusion).
        // SORT-style single-stage trackers with min_confidence 0.5 would
        // lose the object and fragment; ByteTrack's stage 2 keeps it.
        let frames: Vec<Vec<Detection>> = (0..60)
            .map(|f| {
                let conf = if (20..40).contains(&f) { 0.3 } else { 0.9 };
                vec![det_conf(f, 10.0 + 3.0 * f as f64, conf)]
            })
            .collect();
        let mut t = ByteTrack::new(ByteTrackConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 1, "stage 2 must bridge the low-conf stretch");
        assert_eq!(tracks.iter().next().unwrap().len(), 60);
    }

    #[test]
    fn low_confidence_detections_never_spawn() {
        let frames: Vec<Vec<Detection>> = (0..30).map(|f| vec![det_conf(f, 10.0, 0.3)]).collect();
        let mut t = ByteTrack::new(ByteTrackConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert!(
            tracks.is_empty(),
            "0.3-confidence boxes must not spawn tracks"
        );
    }

    #[test]
    fn full_gap_still_fragments() {
        // Total detection loss beyond max_age still splits the track:
        // ByteTrack reduces, not eliminates, fragmentation.
        let frames: Vec<Vec<Detection>> = (0..80)
            .map(|f| {
                if (30..55).contains(&f) {
                    vec![]
                } else {
                    vec![det_conf(f, 10.0 + 3.0 * f as f64, 0.9)]
                }
            })
            .collect();
        let mut t = ByteTrack::new(ByteTrackConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn deterministic() {
        let frames: Vec<Vec<Detection>> = (0..30)
            .map(|f| vec![det_conf(f, 10.0 + 3.0 * f as f64, 0.9)])
            .collect();
        let a = track_video(&mut ByteTrack::new(ByteTrackConfig::default()), &frames);
        let b = track_video(&mut ByteTrack::new(ByteTrackConfig::default()), &frames);
        assert_eq!(a, b);
    }
}
