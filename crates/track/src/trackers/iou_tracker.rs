//! The plain IoU tracker (Bochinski et al., 2017) — the simplest published
//! multi-object tracker: greedy frame-to-frame IoU association with no
//! motion model at all.
//!
//! Included as the weakest reasonable baseline for the fragmentation
//! studies: with zero coasting ability it fragments on every missed
//! detection, which makes it a useful stress generator for TMerge.

use crate::lifecycle::{LifecycleConfig, TrackManager};
use crate::trackers::Tracker;
use tm_types::{Detection, FrameIdx, TrackSet};

/// IoU-tracker parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IouTrackerConfig {
    /// Minimum IoU between a track's last box and a detection.
    pub iou_min: f64,
    /// Lifecycle parameters (`max_age` is typically 0–2: the original
    /// algorithm terminates a track on the first miss).
    pub lifecycle: LifecycleConfig,
}

impl Default for IouTrackerConfig {
    fn default() -> Self {
        Self {
            iou_min: 0.4,
            lifecycle: LifecycleConfig {
                max_age: 1,
                min_hits: 3,
                min_confidence: 0.5,
                ..LifecycleConfig::default()
            },
        }
    }
}

/// The greedy IoU tracker.
#[derive(Debug, Clone)]
pub struct IouTracker {
    config: IouTrackerConfig,
    manager: TrackManager,
}

impl IouTracker {
    /// Creates an IoU tracker.
    pub fn new(config: IouTrackerConfig) -> Self {
        Self {
            manager: TrackManager::new(config.lifecycle),
            config,
        }
    }
}

impl Tracker for IouTracker {
    fn name(&self) -> &'static str {
        "IoU"
    }

    fn step(&mut self, _frame: FrameIdx, detections: &[Detection]) {
        // No motion model: "prediction" is the last committed box. The
        // shared manager still advances the Kalman state, but association
        // uses the raw predicted box which, with IoU-tracker noise
        // settings, stays glued to the last observation; for fidelity we
        // associate greedily per track in id order, as the original does.
        self.manager.predict_all();
        let mut det_claimed = vec![false; detections.len()];
        let order: Vec<usize> = (0..self.manager.active.len()).collect();
        for ti in order {
            let t = &self.manager.active[ti];
            let mut best: Option<(usize, f64)> = None;
            for (di, d) in detections.iter().enumerate() {
                if det_claimed[di] || d.class != t.class {
                    continue;
                }
                let iou = t.predicted.iou(&d.bbox);
                if iou >= self.config.iou_min && best.is_none_or(|(_, b)| iou > b) {
                    best = Some((di, iou));
                }
            }
            if let Some((di, _)) = best {
                det_claimed[di] = true;
                self.manager.commit_match(ti, &detections[di], None, 1.0);
            }
        }
        for (di, d) in detections.iter().enumerate() {
            if !det_claimed[di] {
                self.manager.spawn(d, None);
            }
        }
        self.manager.finalize_frame();
    }

    fn finish(&mut self) -> TrackSet {
        self.manager.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trackers::track_video;
    use tm_types::{ids::classes, BBox, GtObjectId};

    fn det(frame: u64, x: f64, actor: u64) -> Detection {
        Detection::of_actor(
            FrameIdx(frame),
            BBox::new(x, 100.0, 40.0, 80.0),
            0.9,
            classes::PEDESTRIAN,
            1.0,
            GtObjectId(actor),
        )
    }

    #[test]
    fn tracks_a_slow_object() {
        let frames: Vec<Vec<Detection>> = (0..40)
            .map(|f| vec![det(f, 10.0 + 2.0 * f as f64, 1)])
            .collect();
        let mut t = IouTracker::new(IouTrackerConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 1);
    }

    #[test]
    fn fragments_on_a_two_frame_gap() {
        let frames: Vec<Vec<Detection>> = (0..40)
            .map(|f| {
                if (20..23).contains(&f) {
                    vec![]
                } else {
                    vec![det(f, 10.0 + 2.0 * f as f64, 1)]
                }
            })
            .collect();
        let mut t = IouTracker::new(IouTrackerConfig::default());
        let tracks = track_video(&mut t, &frames);
        assert_eq!(tracks.len(), 2, "max_age 1 must split on a 3-frame gap");
    }

    #[test]
    fn deterministic() {
        let frames: Vec<Vec<Detection>> = (0..30)
            .map(|f| vec![det(f, 10.0 + 2.0 * f as f64, 1)])
            .collect();
        let a = track_video(&mut IouTracker::new(IouTrackerConfig::default()), &frames);
        let b = track_video(&mut IouTracker::new(IouTrackerConfig::default()), &frames);
        assert_eq!(a, b);
    }
}
