//! Minimum-cost bipartite assignment (Kuhn–Munkres / Hungarian algorithm).
//!
//! The O(n²m) potentials formulation. Used by the trackers to associate
//! detections to tracks and by `tm-metrics` for the CLEAR-MOT / identity
//! correspondences.
//!
//! The allocating solver here is the *reference*: the production paths run
//! on [`crate::assign`] (flat storage, reusable scratch, spatial gating and
//! connected-component decomposition), which is proptest-pinned to produce
//! bit-identical assignments. The convenience wrappers
//! [`min_cost_assignment`] and [`assign_with_threshold`] delegate to the
//! fast core.

use crate::assign::{assign_sparse, min_cost_assignment_flat, AssignmentScratch, Edge};

/// Cost used to mark a forbidden pairing. Large but finite so the potential
/// updates stay well-conditioned.
///
/// Note: the sentinel-matrix style (`cost[i][j] = FORBIDDEN`, solve dense,
/// filter) is superseded by explicit gating — build only admissible
/// [`crate::assign::Edge`]s and call [`crate::assign::assign_sparse`].
/// `FORBIDDEN` remains for the reference solver, for legacy dense-matrix
/// call sites, and as the in-component fill cost of the sparse path.
pub const FORBIDDEN: f64 = 1e9;

/// Solves the minimum-cost assignment for a rectangular cost matrix.
///
/// Returns, for each row, the assigned column (or `None`). When
/// `rows ≤ cols` every row is assigned; when `rows > cols` exactly `cols`
/// rows are assigned. An empty matrix yields an empty / all-`None` result.
///
/// `cost[i][j]` must be finite; use [`FORBIDDEN`] for disallowed pairs.
///
/// Delegates to the flat solver (identical results, see
/// [`min_cost_assignment_reference`]); per-frame loops should call
/// [`crate::assign::min_cost_assignment_flat`] directly with a reused
/// [`AssignmentScratch`] to avoid the flattening copy.
///
/// ```
/// use tm_track::hungarian::min_cost_assignment;
/// let cost = vec![vec![4.0, 1.0], vec![2.0, 8.0]];
/// assert_eq!(min_cost_assignment(&cost), vec![Some(1), Some(0)]);
/// ```
pub fn min_cost_assignment(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    debug_assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");
    let mut flat = Vec::with_capacity(n * m);
    for row in cost {
        flat.extend_from_slice(row);
    }
    min_cost_assignment_flat(&flat, n, m, &mut AssignmentScratch::new())
}

/// The original allocating solver, kept verbatim as the equivalence oracle
/// for the flat/gated paths in [`crate::assign`].
pub fn min_cost_assignment_reference(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    debug_assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");
    if m == 0 {
        return vec![None; n];
    }
    if n > m {
        // Transpose so that rows ≤ cols, then invert the result.
        let t: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..n).map(|i| cost[i][j]).collect())
            .collect();
        let col_to_row = min_cost_assignment_reference(&t);
        let mut out = vec![None; n];
        for (j, row) in col_to_row.iter().enumerate() {
            if let Some(i) = row {
                out[*i] = Some(j);
            }
        }
        return out;
    }

    // Potentials formulation, 1-indexed (index 0 is the virtual source).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut matched_row = vec![0usize; m + 1]; // matched_row[j]: row using column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        matched_row[0] = i;
        let mut j0 = 0usize;
        let mut min_slack = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let slack = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if slack < min_slack[j] {
                    min_slack[j] = slack;
                    way[j] = j0;
                }
                if min_slack[j] < delta {
                    delta = min_slack[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    min_slack[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = vec![None; n];
    for j in 1..=m {
        if matched_row[j] != 0 {
            out[matched_row[j] - 1] = Some(j - 1);
        }
    }
    out
}

/// Assignment with a feasibility threshold: pairs whose cost exceeds
/// `max_cost` are treated as forbidden, and only admissible matches are
/// returned as `(row, col)` pairs.
///
/// This is the form trackers use: "match detections to tracks, but never
/// accept an IoU below the gate". The threshold is folded into the solver
/// as a gate — admissible pairs become [`Edge`]s and the component solver
/// runs on those alone; no masked matrix copy is allocated. Results are
/// identical to [`assign_with_threshold_reference`].
pub fn assign_with_threshold(cost: &[Vec<f64>], max_cost: f64) -> Vec<(usize, usize)> {
    let n = cost.len();
    let m = cost.first().map_or(0, |r| r.len());
    let mut edges = Vec::new();
    for (i, row) in cost.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c <= max_cost {
                edges.push(Edge {
                    row: i as u32,
                    col: j as u32,
                    cost: c,
                });
            }
        }
    }
    let mut scratch = AssignmentScratch::new();
    assign_sparse(n, m, &edges, &mut scratch)
        .iter()
        .map(|&(r, c)| (r as usize, c as usize))
        .collect()
}

/// The original clone-and-mask thresholded assignment over
/// [`min_cost_assignment_reference`]; the oracle for the gated path.
pub fn assign_with_threshold_reference(cost: &[Vec<f64>], max_cost: f64) -> Vec<(usize, usize)> {
    let masked: Vec<Vec<f64>> = cost
        .iter()
        .map(|row| {
            row.iter()
                .map(|&c| if c > max_cost { FORBIDDEN } else { c })
                .collect()
        })
        .collect();
    min_cost_assignment_reference(&masked)
        .into_iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| (i, j)))
        .filter(|&(i, j)| cost[i][j] <= max_cost)
        .collect()
}

/// Total cost of an assignment (for tests and diagnostics).
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| cost[i][j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force minimum over all injections rows→cols.
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let m = cost[0].len();
        fn rec(cost: &[Vec<f64>], i: usize, used: &mut Vec<bool>) -> f64 {
            let n = cost.len();
            let m = cost[0].len();
            if i == n {
                return 0.0;
            }
            // When rows > cols, some rows may stay unassigned; allow skipping
            // a row only if there are more rows left than free columns.
            let free_cols = used.iter().filter(|u| !**u).count();
            let rows_left = n - i;
            let mut best = f64::INFINITY;
            if rows_left > free_cols {
                best = rec(cost, i + 1, used);
            }
            for j in 0..m {
                if !used[j] {
                    used[j] = true;
                    let c = cost[i][j] + rec(cost, i + 1, used);
                    used[j] = false;
                    if c < best {
                        best = c;
                    }
                }
            }
            best
        }
        let mut used = vec![false; m];
        rec(cost, 0, &mut used).min(f64::INFINITY)
    }

    #[test]
    fn simple_3x3() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = min_cost_assignment(&cost);
        assert_eq!(a, vec![Some(1), Some(0), Some(2)]);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }

    #[test]
    fn rectangular_wide() {
        let cost = vec![vec![10.0, 1.0, 10.0, 10.0], vec![1.0, 10.0, 10.0, 10.0]];
        let a = min_cost_assignment(&cost);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_tall_assigns_cols_rows() {
        let cost = vec![vec![5.0], vec![1.0], vec![3.0]];
        let a = min_cost_assignment(&cost);
        assert_eq!(a, vec![None, Some(0), None]);
    }

    #[test]
    fn empty_matrices() {
        assert!(min_cost_assignment(&[]).is_empty());
        let no_cols: Vec<Vec<f64>> = vec![vec![], vec![]];
        assert_eq!(min_cost_assignment(&no_cols), vec![None, None]);
    }

    #[test]
    fn single_cell() {
        assert_eq!(min_cost_assignment(&[vec![7.0]]), vec![Some(0)]);
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases: Vec<Vec<Vec<f64>>> = vec![
            vec![
                vec![9.0, 2.0, 7.0, 8.0],
                vec![6.0, 4.0, 3.0, 7.0],
                vec![5.0, 8.0, 1.0, 8.0],
                vec![7.0, 6.0, 9.0, 4.0],
            ],
            vec![vec![1.0, 2.0, 3.0], vec![3.0, 1.0, 2.0]],
            vec![vec![2.0, 2.0], vec![2.0, 2.0], vec![2.0, 2.0]],
        ];
        for cost in cases {
            let a = min_cost_assignment(&cost);
            let assigned = a.iter().filter(|x| x.is_some()).count();
            assert_eq!(assigned, cost.len().min(cost[0].len()));
            assert!(
                (assignment_cost(&cost, &a) - brute_force(&cost)).abs() < 1e-9,
                "hungarian {} vs brute {}",
                assignment_cost(&cost, &a),
                brute_force(&cost)
            );
        }
    }

    #[test]
    fn assignment_is_injective() {
        let cost = vec![
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ];
        let a = min_cost_assignment(&cost);
        let mut cols: Vec<usize> = a.iter().flatten().copied().collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn threshold_filters_expensive_pairs() {
        let cost = vec![vec![0.2, 0.9], vec![0.9, 0.95]];
        let matches = assign_with_threshold(&cost, 0.5);
        assert_eq!(matches, vec![(0, 0)]);
    }

    #[test]
    fn threshold_all_forbidden_is_empty() {
        let cost = vec![vec![0.9, 0.9], vec![0.9, 0.9]];
        assert!(assign_with_threshold(&cost, 0.5).is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn matrix_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
            (1usize..5, 1usize..5).prop_flat_map(|(n, m)| {
                proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, m..=m), n..=n)
            })
        }

        proptest! {
            #[test]
            fn optimal_vs_brute_force(cost in matrix_strategy()) {
                let a = min_cost_assignment(&cost);
                let hung = assignment_cost(&cost, &a);
                let brute = brute_force(&cost);
                prop_assert!((hung - brute).abs() < 1e-6,
                    "hungarian {hung} vs brute {brute}");
            }

            #[test]
            fn assignment_shape_is_valid(cost in matrix_strategy()) {
                let a = min_cost_assignment(&cost);
                let n = cost.len();
                let m = cost[0].len();
                prop_assert_eq!(a.len(), n);
                // Injective on columns.
                let mut cols: Vec<usize> = a.iter().flatten().copied().collect();
                let total = cols.len();
                cols.sort_unstable();
                cols.dedup();
                prop_assert_eq!(cols.len(), total);
                // Complete on the smaller side.
                prop_assert_eq!(total, n.min(m));
            }

            /// The public wrappers are pinned to the reference solver.
            #[test]
            fn wrapper_equals_reference(cost in matrix_strategy()) {
                prop_assert_eq!(
                    min_cost_assignment(&cost),
                    min_cost_assignment_reference(&cost)
                );
            }

            #[test]
            fn threshold_equals_reference(
                cost in matrix_strategy(),
                max_cost in 0.0f64..100.0,
            ) {
                prop_assert_eq!(
                    assign_with_threshold(&cost, max_cost),
                    assign_with_threshold_reference(&cost, max_cost)
                );
            }
        }
    }
}
