//! Shared track-lifecycle machinery used by every tracker.
//!
//! All five trackers in this crate follow the same online skeleton —
//! predict, associate, update/spawn, age, kill — and differ in their
//! association strategy and patience parameters. The [`TrackManager`]
//! implements the shared parts: Kalman state per active track, hit counting,
//! time-since-update aging, termination after `max_age` missed frames, and
//! final export as a [`TrackSet`].
//!
//! Track termination after an occlusion longer than `max_age`, followed by a
//! fresh spawn on re-detection, is precisely the mechanism that produces the
//! paper's *polyonymous tracks*.

use crate::kalman::{KalmanBoxFilter, KalmanConfig};
use tm_reid::Feature;
use tm_types::{BBox, ClassId, Detection, Track, TrackBox, TrackId, TrackSet};

/// Lifecycle parameters shared by all trackers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleConfig {
    /// Kill a track after this many consecutive frames without a matched
    /// detection. Small values fragment aggressively under occlusion.
    pub max_age: u64,
    /// Only export tracks that accumulated at least this many matched
    /// detections (suppresses tracks born from false positives).
    pub min_hits: u64,
    /// Ignore detections below this confidence when spawning new tracks.
    pub min_confidence: f64,
    /// Kalman noise configuration.
    pub kalman: KalmanConfig,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        Self {
            max_age: 10,
            min_hits: 3,
            min_confidence: 0.45,
            kalman: KalmanConfig::default(),
        }
    }
}

/// One track currently being maintained by a tracker.
#[derive(Debug, Clone)]
pub struct ActiveTrack {
    /// Assigned tracking identifier.
    pub id: TrackId,
    /// Object class (fixed at spawn).
    pub class: ClassId,
    /// Motion filter.
    pub kf: KalmanBoxFilter,
    /// Box predicted for the current frame (set by `predict_all`).
    pub predicted: BBox,
    /// Number of matched detections so far.
    pub hits: u64,
    /// Consecutive frames without a match.
    pub time_since_update: u64,
    /// Confidence of the last matched detection.
    pub last_confidence: f64,
    /// Exponential-moving-average appearance feature (appearance-based
    /// trackers only).
    pub feature: Option<Feature>,
    /// Whether a detection was committed to this track this frame.
    updated_this_frame: bool,
    boxes: Vec<TrackBox>,
}

impl ActiveTrack {
    /// The committed boxes so far (for diagnostics).
    pub fn n_boxes(&self) -> usize {
        self.boxes.len()
    }
}

/// Shared lifecycle state: active tracks, finished tracks, id assignment.
#[derive(Debug, Clone)]
pub struct TrackManager {
    config: LifecycleConfig,
    next_id: u64,
    /// Tracks currently alive. Public so association strategies can read
    /// predicted boxes / features; mutation goes through the manager.
    pub active: Vec<ActiveTrack>,
    finished: Vec<Track>,
}

impl TrackManager {
    /// Creates a manager with no tracks; ids are assigned from 1 upward.
    pub fn new(config: LifecycleConfig) -> Self {
        Self {
            config,
            next_id: 1,
            active: Vec::new(),
            finished: Vec::new(),
        }
    }

    /// The lifecycle configuration.
    pub fn config(&self) -> &LifecycleConfig {
        &self.config
    }

    /// Advances every active track's motion model one frame and records the
    /// predicted boxes. Call once at the start of each frame.
    pub fn predict_all(&mut self) {
        for t in &mut self.active {
            t.predicted = t.kf.predict();
        }
    }

    /// Commits a matched detection to the active track at `idx`.
    ///
    /// `feature` (if provided) is folded into the track's appearance with
    /// EMA weight `feature_momentum` (0 → replace, 1 → never change).
    pub fn commit_match(
        &mut self,
        idx: usize,
        det: &Detection,
        feature: Option<Feature>,
        feature_momentum: f64,
    ) {
        let t = &mut self.active[idx];
        t.kf.update(&det.bbox);
        t.hits += 1;
        t.time_since_update = 0;
        t.updated_this_frame = true;
        t.last_confidence = det.confidence;
        t.boxes.push(
            TrackBox::new(det.frame, det.bbox)
                .with_confidence(det.confidence)
                .with_visibility(det.visibility)
                .with_provenance_opt(det.provenance),
        );
        if let Some(new_f) = feature {
            t.feature = Some(match t.feature.take() {
                None => new_f,
                Some(old) => {
                    let m = feature_momentum.clamp(0.0, 1.0);
                    let mixed: Vec<f64> = old
                        .as_slice()
                        .iter()
                        .zip(new_f.as_slice())
                        .map(|(o, n)| m * o + (1.0 - m) * n)
                        .collect();
                    Feature::normalized(mixed)
                }
            });
        }
    }

    /// Spawns a new track from an unmatched detection, if it clears the
    /// confidence floor. Returns the new track's id if spawned.
    pub fn spawn(&mut self, det: &Detection, feature: Option<Feature>) -> Option<TrackId> {
        if det.confidence < self.config.min_confidence {
            return None;
        }
        let id = TrackId(self.next_id);
        self.next_id += 1;
        let boxes = vec![TrackBox::new(det.frame, det.bbox)
            .with_confidence(det.confidence)
            .with_visibility(det.visibility)
            .with_provenance_opt(det.provenance)];
        self.active.push(ActiveTrack {
            id,
            class: det.class,
            kf: KalmanBoxFilter::new(&det.bbox, self.config.kalman),
            predicted: det.bbox,
            hits: 1,
            time_since_update: 0,
            last_confidence: det.confidence,
            feature,
            updated_this_frame: true,
            boxes,
        });
        Some(id)
    }

    /// Ends the frame: ages unmatched tracks and terminates those that
    /// exceeded `max_age` misses. Call once per frame after association.
    pub fn finalize_frame(&mut self) {
        let max_age = self.config.max_age;
        let min_hits = self.config.min_hits;
        let mut idx = 0;
        while idx < self.active.len() {
            let t = &mut self.active[idx];
            if t.updated_this_frame {
                t.updated_this_frame = false;
                idx += 1;
                continue;
            }
            t.time_since_update += 1;
            if t.time_since_update > max_age {
                let dead = self.active.swap_remove(idx);
                if dead.hits >= min_hits {
                    self.finished
                        .push(Track::with_boxes(dead.id, dead.class, dead.boxes));
                }
            } else {
                idx += 1;
            }
        }
    }

    /// Flushes every remaining active track and returns the full result.
    pub fn finish(&mut self) -> TrackSet {
        let min_hits = self.config.min_hits;
        for t in self.active.drain(..) {
            if t.hits >= min_hits {
                self.finished
                    .push(Track::with_boxes(t.id, t.class, t.boxes));
            }
        }
        let mut tracks = std::mem::take(&mut self.finished);
        tracks.sort_by_key(|t| t.id);
        TrackSet::from_tracks(tracks)
    }
}

/// Extension to build a `TrackBox` from an optional provenance without
/// branching at every call site.
trait TrackBoxExt {
    fn with_provenance_opt(self, p: Option<tm_types::GtObjectId>) -> Self;
}

impl TrackBoxExt for TrackBox {
    fn with_provenance_opt(mut self, p: Option<tm_types::GtObjectId>) -> Self {
        self.provenance = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, FrameIdx, GtObjectId};

    fn det(frame: u64, x: f64, conf: f64) -> Detection {
        Detection::of_actor(
            FrameIdx(frame),
            BBox::new(x, 100.0, 40.0, 80.0),
            conf,
            classes::PEDESTRIAN,
            1.0,
            GtObjectId(1),
        )
    }

    fn cfg(max_age: u64, min_hits: u64) -> LifecycleConfig {
        LifecycleConfig {
            max_age,
            min_hits,
            min_confidence: 0.4,
            kalman: KalmanConfig::default(),
        }
    }

    #[test]
    fn spawn_respects_confidence_floor() {
        let mut m = TrackManager::new(cfg(5, 1));
        assert!(m.spawn(&det(0, 0.0, 0.2), None).is_none());
        assert!(m.spawn(&det(0, 0.0, 0.9), None).is_some());
        assert_eq!(m.active.len(), 1);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut m = TrackManager::new(cfg(5, 1));
        let a = m.spawn(&det(0, 0.0, 0.9), None).unwrap();
        let b = m.spawn(&det(0, 100.0, 0.9), None).unwrap();
        assert!(b > a);
    }

    #[test]
    fn unmatched_track_dies_after_max_age() {
        let mut m = TrackManager::new(cfg(3, 1));
        m.spawn(&det(0, 0.0, 0.9), None);
        m.finalize_frame(); // spawned this frame → survives untouched
        for _ in 0..3 {
            m.predict_all();
            m.finalize_frame();
        }
        assert_eq!(m.active.len(), 1, "at max_age misses the track still lives");
        m.predict_all();
        m.finalize_frame();
        assert!(m.active.is_empty(), "beyond max_age the track must die");
        let out = m.finish();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn min_hits_suppresses_short_tracks() {
        let mut m = TrackManager::new(cfg(1, 3));
        m.spawn(&det(0, 0.0, 0.9), None);
        m.finalize_frame();
        // Only one hit → suppressed at finish.
        assert_eq!(m.finish().len(), 0);

        let mut m = TrackManager::new(cfg(1, 3));
        m.spawn(&det(0, 0.0, 0.9), None);
        m.finalize_frame();
        for f in 1..3 {
            m.predict_all();
            m.commit_match(0, &det(f, f as f64 * 2.0, 0.9), None, 0.9);
            m.finalize_frame();
        }
        assert_eq!(m.finish().len(), 1);
    }

    #[test]
    fn commit_match_resets_age_and_records_boxes() {
        let mut m = TrackManager::new(cfg(5, 1));
        m.spawn(&det(0, 0.0, 0.9), None);
        m.finalize_frame();
        m.predict_all();
        m.finalize_frame(); // one miss
        assert_eq!(m.active[0].time_since_update, 1);
        m.predict_all();
        m.commit_match(0, &det(2, 4.0, 0.8), None, 0.9);
        m.finalize_frame();
        assert_eq!(m.active[0].time_since_update, 0);
        assert_eq!(m.active[0].n_boxes(), 2);
        assert_eq!(m.active[0].hits, 2);
    }

    #[test]
    fn feature_ema_updates() {
        let mut m = TrackManager::new(cfg(5, 1));
        let f0 = Feature::normalized(vec![1.0, 0.0]);
        let f1 = Feature::normalized(vec![0.0, 1.0]);
        m.spawn(&det(0, 0.0, 0.9), Some(f0.clone()));
        m.finalize_frame();
        m.predict_all();
        m.commit_match(0, &det(1, 2.0, 0.9), Some(f1.clone()), 0.5);
        let mixed = m.active[0].feature.clone().unwrap();
        // Equal mix of orthogonal units, re-normalized → (√2/2, √2/2).
        assert!((mixed.as_slice()[0] - mixed.as_slice()[1]).abs() < 1e-9);
        assert!(mixed.cosine_similarity(&f0) > 0.5);
        assert!(mixed.cosine_similarity(&f1) > 0.5);
    }

    #[test]
    fn finish_drains_active_and_sorts_by_id() {
        let mut m = TrackManager::new(cfg(5, 1));
        m.spawn(&det(0, 0.0, 0.9), None);
        m.spawn(&det(0, 200.0, 0.9), None);
        m.finalize_frame();
        let out = m.finish();
        assert_eq!(out.len(), 2);
        let ids: Vec<TrackId> = out.ids().collect();
        assert_eq!(ids, vec![TrackId(1), TrackId(2)]);
        // Manager is reusable-empty afterwards.
        assert!(m.finish().is_empty());
    }

    #[test]
    fn provenance_flows_into_track_boxes() {
        let mut m = TrackManager::new(cfg(5, 1));
        m.spawn(&det(0, 0.0, 0.9), None);
        m.finalize_frame();
        let out = m.finish();
        let t = out.get(TrackId(1)).unwrap();
        assert_eq!(t.boxes[0].provenance, Some(GtObjectId(1)));
    }
}
