//! A constant-velocity Kalman filter over the SORT state space.
//!
//! State `x = [cx, cy, s, r, v_cx, v_cy, v_s]ᵀ`: box centre, scale (area),
//! aspect ratio and the velocities of the first three (the aspect ratio is
//! modelled as constant, exactly as in SORT [3]). Observations are
//! `z = [cx, cy, s, r]ᵀ` from [`tm_types::BBox::to_cxcysr`].
//!
//! The linear algebra is hand-rolled over fixed-size arrays — the dimensions
//! are small and static, and keeping the filter dependency-free makes it a
//! reusable substrate piece.

// Index-based loops mirror the textbook matrix formulas; iterator forms
// obscure them here.
#![allow(clippy::needless_range_loop)]

use tm_types::BBox;

const NX: usize = 7; // state dimension
const NZ: usize = 4; // observation dimension

type Vx = [f64; NX];
type Mx = [[f64; NX]; NX];
type Mz = [[f64; NZ]; NZ];

/// Process/observation noise configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanConfig {
    /// Process noise on the position/scale block.
    pub q_pos: f64,
    /// Process noise on the velocity block.
    pub q_vel: f64,
    /// Observation noise on centre coordinates.
    pub r_pos: f64,
    /// Observation noise on scale and ratio.
    pub r_scale: f64,
    /// Initial velocity uncertainty.
    pub p0_vel: f64,
}

impl Default for KalmanConfig {
    /// Noise levels in the spirit of the original SORT implementation.
    fn default() -> Self {
        Self {
            q_pos: 1.0,
            q_vel: 0.01,
            r_pos: 1.0,
            r_scale: 10.0,
            p0_vel: 1000.0,
        }
    }
}

/// A constant-velocity Kalman filter tracking one bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanBoxFilter {
    x: Vx,
    p: Mx,
    config: KalmanConfig,
}

impl KalmanBoxFilter {
    /// Initializes the filter on a first observed box, with zero velocity
    /// and large velocity uncertainty.
    pub fn new(bbox: &BBox, config: KalmanConfig) -> Self {
        let z = bbox.to_cxcysr();
        let mut x = [0.0; NX];
        x[..NZ].copy_from_slice(&z);
        let mut p = [[0.0; NX]; NX];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = if i < NZ { 10.0 } else { config.p0_vel };
        }
        Self { x, p, config }
    }

    /// Advances the state one frame under the constant-velocity model and
    /// returns the predicted box.
    pub fn predict(&mut self) -> BBox {
        // Keep scale non-negative under a strongly negative scale velocity,
        // as the reference SORT implementation does.
        if self.x[2] + self.x[6] <= 0.0 {
            self.x[6] = 0.0;
        }
        let f = transition();
        self.x = mat_vec(&f, &self.x);
        let fp = mat_mul(&f, &self.p);
        self.p = mat_add(&mat_mul_t(&fp, &f), &self.process_noise());
        self.current_box()
    }

    /// Fuses an observed box into the state.
    pub fn update(&mut self, bbox: &BBox) {
        let z = bbox.to_cxcysr();
        // Innovation y = z − Hx (H selects the first 4 state entries).
        let mut y = [0.0; NZ];
        for i in 0..NZ {
            y[i] = z[i] - self.x[i];
        }
        // S = H P Hᵀ + R  — the top-left 4×4 block of P plus R.
        let mut s = [[0.0; NZ]; NZ];
        for i in 0..NZ {
            for j in 0..NZ {
                s[i][j] = self.p[i][j];
            }
            s[i][i] += self.obs_noise_diag(i);
        }
        let s_inv = invert4(&s);
        // K = P Hᵀ S⁻¹ : (7×4) — P's first four columns times S⁻¹.
        let mut k = [[0.0; NZ]; NX];
        for i in 0..NX {
            for j in 0..NZ {
                let mut acc = 0.0;
                for l in 0..NZ {
                    acc += self.p[i][l] * s_inv[l][j];
                }
                k[i][j] = acc;
            }
        }
        // x ← x + K y
        for i in 0..NX {
            let mut acc = 0.0;
            for (j, yj) in y.iter().enumerate() {
                acc += k[i][j] * yj;
            }
            self.x[i] += acc;
        }
        // P ← (I − K H) P ; KH only touches the first four columns.
        let mut kh = [[0.0; NX]; NX];
        for i in 0..NX {
            for j in 0..NZ {
                kh[i][j] = k[i][j];
            }
        }
        let mut ikh = [[0.0; NX]; NX];
        for i in 0..NX {
            for j in 0..NX {
                ikh[i][j] = f64::from(u8::from(i == j)) - kh[i][j];
            }
        }
        self.p = mat_mul(&ikh, &self.p);
    }

    /// The box implied by the current state.
    pub fn current_box(&self) -> BBox {
        BBox::from_cxcysr([
            self.x[0],
            self.x[1],
            self.x[2].max(0.0),
            self.x[3].max(1e-6),
        ])
    }

    /// Estimated per-frame velocity of the box centre.
    pub fn velocity(&self) -> (f64, f64) {
        (self.x[4], self.x[5])
    }

    /// Squared Mahalanobis-style normalized distance of an observed centre
    /// from the predicted centre (used for gating in UMA-like tracking).
    pub fn center_gate_distance(&self, bbox: &BBox) -> f64 {
        let z = bbox.to_cxcysr();
        let sx = (self.p[0][0] + self.config.r_pos).max(1e-6);
        let sy = (self.p[1][1] + self.config.r_pos).max(1e-6);
        let dx = z[0] - self.x[0];
        let dy = z[1] - self.x[1];
        dx * dx / sx + dy * dy / sy
    }

    fn process_noise(&self) -> Mx {
        let mut q = [[0.0; NX]; NX];
        for (i, row) in q.iter_mut().enumerate() {
            row[i] = if i < NZ {
                self.config.q_pos
            } else {
                self.config.q_vel
            };
        }
        q
    }

    fn obs_noise_diag(&self, i: usize) -> f64 {
        if i < 2 {
            self.config.r_pos
        } else {
            self.config.r_scale
        }
    }
}

/// The constant-velocity transition matrix.
fn transition() -> Mx {
    let mut f = [[0.0; NX]; NX];
    for (i, row) in f.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    f[0][4] = 1.0;
    f[1][5] = 1.0;
    f[2][6] = 1.0;
    f
}

fn mat_vec(m: &Mx, v: &Vx) -> Vx {
    let mut out = [0.0; NX];
    for i in 0..NX {
        let mut acc = 0.0;
        for (j, vj) in v.iter().enumerate() {
            acc += m[i][j] * vj;
        }
        out[i] = acc;
    }
    out
}

fn mat_mul(a: &Mx, b: &Mx) -> Mx {
    let mut out = [[0.0; NX]; NX];
    for i in 0..NX {
        for l in 0..NX {
            let ail = a[i][l];
            if ail == 0.0 {
                continue;
            }
            for j in 0..NX {
                out[i][j] += ail * b[l][j];
            }
        }
    }
    out
}

/// `a · bᵀ`.
fn mat_mul_t(a: &Mx, b: &Mx) -> Mx {
    let mut out = [[0.0; NX]; NX];
    for i in 0..NX {
        for j in 0..NX {
            let mut acc = 0.0;
            for l in 0..NX {
                acc += a[i][l] * b[j][l];
            }
            out[i][j] = acc;
        }
    }
    out
}

fn mat_add(a: &Mx, b: &Mx) -> Mx {
    let mut out = [[0.0; NX]; NX];
    for i in 0..NX {
        for j in 0..NX {
            out[i][j] = a[i][j] + b[i][j];
        }
    }
    out
}

/// Gauss–Jordan inversion of a 4×4 matrix. The innovation covariance is
/// positive definite by construction, so a vanishing pivot indicates a bug;
/// we fall back to the identity in release builds to avoid NaN poisoning.
fn invert4(m: &Mz) -> Mz {
    let mut a = *m;
    let mut inv = [[0.0; NZ]; NZ];
    for (i, row) in inv.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for col in 0..NZ {
        // Partial pivoting.
        let mut pivot = col;
        for r in col + 1..NZ {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            debug_assert!(false, "singular innovation covariance");
            return identity4();
        }
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let d = a[col][col];
        for j in 0..NZ {
            a[col][j] /= d;
            inv[col][j] /= d;
        }
        for r in 0..NZ {
            if r == col {
                continue;
            }
            let factor = a[r][col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..NZ {
                a[r][j] -= factor * a[col][j];
                inv[r][j] -= factor * inv[col][j];
            }
        }
    }
    inv
}

fn identity4() -> Mz {
    let mut id = [[0.0; NZ]; NZ];
    for (i, row) in id.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moving_box(frame: u64) -> BBox {
        BBox::from_center(
            100.0 + 5.0 * frame as f64,
            200.0 - 2.0 * frame as f64,
            40.0,
            80.0,
        )
    }

    #[test]
    fn initial_state_matches_observation() {
        let b = BBox::from_center(50.0, 60.0, 20.0, 40.0);
        let kf = KalmanBoxFilter::new(&b, KalmanConfig::default());
        let cur = kf.current_box();
        assert!((cur.center().x - 50.0).abs() < 1e-9);
        assert!((cur.center().y - 60.0).abs() < 1e-9);
        assert!((cur.area() - b.area()).abs() < 1e-6);
    }

    #[test]
    fn filter_learns_constant_velocity() {
        let mut kf = KalmanBoxFilter::new(&moving_box(0), KalmanConfig::default());
        for f in 1..30 {
            kf.predict();
            kf.update(&moving_box(f));
        }
        let (vx, vy) = kf.velocity();
        assert!((vx - 5.0).abs() < 0.5, "vx={vx}");
        assert!((vy + 2.0).abs() < 0.5, "vy={vy}");
        // Prediction without update lands close to the true next position.
        let pred = kf.predict();
        let truth = moving_box(30);
        assert!(pred.center().distance(&truth.center()) < 3.0);
    }

    #[test]
    fn coasting_extrapolates_linearly() {
        let mut kf = KalmanBoxFilter::new(&moving_box(0), KalmanConfig::default());
        for f in 1..20 {
            kf.predict();
            kf.update(&moving_box(f));
        }
        // Coast 10 frames with no updates (an occlusion).
        let mut last = kf.current_box();
        for _ in 0..10 {
            last = kf.predict();
        }
        let truth = moving_box(29);
        assert!(
            last.center().distance(&truth.center()) < 8.0,
            "coasted centre {:?} vs truth {:?}",
            last.center(),
            truth.center()
        );
    }

    #[test]
    fn update_pulls_state_toward_observation() {
        let mut kf = KalmanBoxFilter::new(
            &BBox::from_center(0.0, 0.0, 10.0, 10.0),
            KalmanConfig::default(),
        );
        kf.predict();
        kf.update(&BBox::from_center(10.0, 0.0, 10.0, 10.0));
        let c = kf.current_box().center();
        assert!(c.x > 1.0 && c.x <= 10.0, "cx={}", c.x);
    }

    #[test]
    fn scale_never_goes_negative() {
        let mut kf = KalmanBoxFilter::new(
            &BBox::from_center(0.0, 0.0, 10.0, 10.0),
            KalmanConfig::default(),
        );
        // Feed shrinking boxes to build a negative scale velocity.
        for f in 1..10 {
            kf.predict();
            let s = (10.0 - f as f64).max(1.0);
            kf.update(&BBox::from_center(0.0, 0.0, s, s));
        }
        for _ in 0..50 {
            let b = kf.predict();
            assert!(b.area() >= 0.0);
            assert!(b.w.is_finite() && b.h.is_finite());
        }
    }

    #[test]
    fn invert4_inverts() {
        let m = [
            [4.0, 1.0, 0.0, 0.5],
            [1.0, 3.0, 0.2, 0.0],
            [0.0, 0.2, 5.0, 1.0],
            [0.5, 0.0, 1.0, 2.0],
        ];
        let inv = invert4(&m);
        // m · inv ≈ I
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0;
                for l in 0..4 {
                    acc += m[i][l] * inv[l][j];
                }
                let expect = f64::from(u8::from(i == j));
                assert!((acc - expect).abs() < 1e-9, "({i},{j}) = {acc}");
            }
        }
    }

    #[test]
    fn gate_distance_grows_with_offset() {
        let mut kf = KalmanBoxFilter::new(&moving_box(0), KalmanConfig::default());
        for f in 1..10 {
            kf.predict();
            kf.update(&moving_box(f));
        }
        kf.predict();
        let near = kf.center_gate_distance(&moving_box(10));
        let far = kf.center_gate_distance(&moving_box(30));
        assert!(near < far);
    }
}
