//! Contract tests every tracker must satisfy, run against all five
//! implementations through the `Tracker` trait.

use tm_reid::{AppearanceConfig, AppearanceModel};
use tm_track::{track_video, TrackerKind};
use tm_types::{ids::classes, BBox, Detection, FrameIdx, GtObjectId, TrackSet};

fn det(frame: u64, x: f64, y: f64, actor: u64) -> Detection {
    Detection::of_actor(
        FrameIdx(frame),
        BBox::new(x, y, 40.0, 80.0),
        0.9,
        classes::PEDESTRIAN,
        1.0,
        GtObjectId(actor),
    )
}

fn clean_video(n: u64) -> Vec<Vec<Detection>> {
    (0..n)
        .map(|f| {
            vec![
                det(f, 10.0 + 3.0 * f as f64, 100.0, 1),
                det(f, 900.0 - 3.0 * f as f64, 400.0, 2),
            ]
        })
        .collect()
}

fn run(kind: TrackerKind, frames: &[Vec<Detection>]) -> TrackSet {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let mut t = kind.build(&model);
    track_video(t.as_mut(), frames)
}

#[test]
fn empty_video_yields_empty_tracks() {
    for kind in TrackerKind::EXTENDED {
        let tracks = run(kind, &[]);
        assert!(tracks.is_empty(), "{}", kind.name());
    }
}

#[test]
fn all_empty_frames_yield_empty_tracks() {
    let frames: Vec<Vec<Detection>> = vec![vec![]; 50];
    for kind in TrackerKind::EXTENDED {
        let tracks = run(kind, &frames);
        assert!(tracks.is_empty(), "{}", kind.name());
    }
}

#[test]
fn clean_video_one_track_per_actor_for_every_tracker() {
    let frames = clean_video(60);
    for kind in TrackerKind::EXTENDED {
        let tracks = run(kind, &frames);
        assert_eq!(tracks.len(), 2, "{}", kind.name());
        for t in tracks.iter() {
            let (_, votes) = t.majority_actor().expect("attributed");
            assert_eq!(votes, t.len(), "{} produced a mixed track", kind.name());
        }
    }
}

#[test]
fn every_tracker_is_deterministic() {
    let frames = clean_video(40);
    for kind in TrackerKind::EXTENDED {
        assert_eq!(run(kind, &frames), run(kind, &frames), "{}", kind.name());
    }
}

#[test]
fn every_committed_box_comes_from_a_detection() {
    // Trackers must not invent boxes: each track box equals some detection
    // box of that frame.
    let frames = clean_video(40);
    for kind in TrackerKind::EXTENDED {
        let tracks = run(kind, &frames);
        for t in tracks.iter() {
            for b in &t.boxes {
                let frame_dets = &frames[b.frame.get() as usize];
                assert!(
                    frame_dets.iter().any(|d| d.bbox == b.bbox),
                    "{} committed a box not among frame {} detections",
                    kind.name(),
                    b.frame
                );
            }
        }
    }
}

#[test]
fn finish_is_drain_and_repeatable() {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let frames = clean_video(30);
    for kind in TrackerKind::EXTENDED {
        let mut t = kind.build(&model);
        let first = track_video(t.as_mut(), &frames);
        assert!(!first.is_empty(), "{}", kind.name());
        // A second finish on the drained tracker yields nothing.
        let second = t.finish();
        assert!(second.is_empty(), "{} finish() is not a drain", kind.name());
    }
}

#[test]
fn track_ids_are_unique_per_run() {
    let frames = clean_video(60);
    for kind in TrackerKind::EXTENDED {
        let tracks = run(kind, &frames);
        let mut ids: Vec<_> = tracks.ids().collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "{} reused an id", kind.name());
    }
}

#[test]
fn single_frame_video() {
    // min_hits filtering means one detection never confirms a track; the
    // contract is simply "no panic, no garbage".
    let frames = vec![vec![det(0, 10.0, 100.0, 1)]];
    for kind in TrackerKind::EXTENDED {
        let tracks = run(kind, &frames);
        assert!(tracks.len() <= 1, "{}", kind.name());
    }
}
