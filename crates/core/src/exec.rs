//! Shared window-execution plumbing.
//!
//! The three pipeline entry points — the serial fault-tolerant walk
//! (`crate::run_pipeline_with_backend`), the per-window parallel walk
//! (`crate::run_pipeline_parallel`) and the online
//! [`crate::StreamingMerger`] — plus the multi-stream fleet
//! (`crate::fleet`) all execute the same window protocol: build a session,
//! select (or degrade behind the breaker), and emit the same observability
//! signals. This module is the single home of that protocol so the paths
//! cannot drift; `crates/core/tests/path_equivalence.rs` pins all of them
//! equal on a fixture video.
//!
//! Every helper preserves the exact counter/event emission order of the
//! code it replaced — the recorder's aggregates are commutative, but the
//! per-stream clocks and decisions those emissions bracket are compared
//! bit-for-bit across paths, so nothing here may charge or reorder work.

use crate::resilience::{degraded_candidates, Breaker, RobustnessConfig, RobustnessReport};
use crate::selector::{CandidateSelector, SelectionInput, SelectionResult};
use std::sync::Arc;
use tm_obs::{Obs, Value};
use tm_reid::{
    AppearanceModel, CostModel, Device, GatePolicy, InferenceBackend, ReidSession, RetryPolicy,
    SharedFeatureCache,
};
use tm_types::{Result, TrackPair, TrackSet};

/// Builds the one true per-window/per-stream [`ReidSession`]: private or
/// shared cache, optional fallible backend, optional retry override,
/// extraction gate — the construction every execution path shares, so all
/// four entry paths run one [`GatePolicy`].
pub(crate) fn window_session<'m>(
    model: &'m AppearanceModel,
    cost: CostModel,
    device: Device,
    cache: Option<Arc<SharedFeatureCache>>,
    backend: Option<&'m dyn InferenceBackend>,
    retry: Option<RetryPolicy>,
    gate: GatePolicy,
) -> ReidSession<'m> {
    let mut session = match cache {
        Some(cache) => ReidSession::with_shared_cache(model, cost, device, cache),
        None => ReidSession::new(model, cost, device),
    };
    if let Some(backend) = backend {
        session = session.with_backend(backend);
    }
    if let Some(retry) = retry {
        session = session.with_retry_policy(retry);
    }
    session.with_gate(gate)
}

/// Flushes the session's gate decision counters (once per decided window,
/// the `AssignStats` cadence) and attributes the saved charges to the
/// selector that ran (`reid.gate.saved_charges.<slug>`). No-op — no
/// counters, no allocation — for ungated sessions.
pub(crate) fn flush_gate_obs(session: &mut ReidSession<'_>, obs: &Obs, selector_slug: &str) {
    let delta = session.flush_gate_obs();
    if obs.enabled() && delta.saved_charges() > 0 {
        obs.counter(
            &format!("reid.gate.saved_charges.{selector_slug}"),
            delta.saved_charges(),
        );
    }
}

/// How one window was decided.
pub(crate) enum WindowVerdict {
    /// The selector ran with real ReID.
    Normal(SelectionResult),
    /// The breaker (already open, or tripped by this window's failure)
    /// forced spatio-temporal-only candidates; the caller must stash the
    /// window for re-verification.
    Degraded(Vec<TrackPair>),
}

/// Selects a non-empty window's candidates, or degrades it: breaker open →
/// degrade immediately; selector success → record it on the breaker;
/// backend failure → count a possible trip, then degrade; any other error
/// propagates. Emission order (trip counter/event before the degraded
/// counter) matches the historical serial and streaming walks exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_or_degrade(
    selector: &dyn CandidateSelector,
    input: &SelectionInput<'_>,
    session: &mut ReidSession<'_>,
    breaker: &mut Breaker,
    report: &mut RobustnessReport,
    robustness: &RobustnessConfig,
    obs: &Obs,
    window_index: u64,
) -> Result<WindowVerdict> {
    if breaker.is_open() {
        return Ok(WindowVerdict::Degraded(degrade_window(
            input, report, robustness, obs,
        )?));
    }
    let outcome = selector.select(input, session);
    // Gate decisions accumulated during selection flush here whether the
    // window succeeded or failed — failed extractions still made (and
    // charged) their decisions.
    flush_gate_obs(session, obs, selector.obs_slug());
    match outcome {
        Ok(result) => {
            breaker.record_success();
            Ok(WindowVerdict::Normal(result))
        }
        Err(e) if e.is_backend() => {
            note_breaker_failure(breaker, report, obs, window_index);
            Ok(WindowVerdict::Degraded(degrade_window(
                input, report, robustness, obs,
            )?))
        }
        Err(e) => Err(e),
    }
}

/// Decides one window on spatio-temporal evidence only, counting it as
/// degraded. Shared by the breaker path above and the streaming merger's
/// serve-level shed-load mode, which forces this path without consulting
/// the breaker at all.
pub(crate) fn degrade_window(
    input: &SelectionInput<'_>,
    report: &mut RobustnessReport,
    robustness: &RobustnessConfig,
    obs: &Obs,
) -> Result<Vec<TrackPair>> {
    let provisional =
        degraded_candidates(input.pairs, input.tracks, input.m(), &robustness.degraded)?;
    report.degraded_windows += 1;
    obs.counter("pipeline.windows_degraded", 1);
    Ok(provisional)
}

/// Records a window's backend failure on the breaker, counting the trip if
/// this one opened it.
pub(crate) fn note_breaker_failure(
    breaker: &mut Breaker,
    report: &mut RobustnessReport,
    obs: &Obs,
    window_index: u64,
) {
    if breaker.record_failure() {
        report.breaker_trips += 1;
        obs.counter("pipeline.breaker_trips", 1);
        obs.event("breaker_trip", &[("window", Value::U64(window_index))]);
    }
}

/// Records one stashed window successfully re-scored with real ReID.
pub(crate) fn note_reverified(report: &mut RobustnessReport, obs: &Obs) {
    report.reverified_windows += 1;
    obs.counter("pipeline.windows_reverified", 1);
}

/// Announces a breaker recovery observed at `epoch`.
pub(crate) fn emit_breaker_recovery(obs: &Obs, epoch: u64) {
    obs.counter("pipeline.breaker_recoveries", 1);
    obs.event("breaker_recovery", &[("window", Value::U64(epoch))]);
}

/// Emits one decided window's lifecycle counters and event.
pub(crate) fn emit_window_obs(
    obs: &Obs,
    window_index: u64,
    n_pairs: usize,
    candidates: &[TrackPair],
    degraded: bool,
) {
    if !obs.enabled() {
        return;
    }
    obs.counter("pipeline.windows", 1);
    obs.counter("pipeline.pairs", n_pairs as u64);
    obs.counter("pipeline.candidates", candidates.len() as u64);
    obs.event(
        "window",
        &[
            ("id", Value::U64(window_index)),
            ("pairs", Value::U64(n_pairs as u64)),
            ("candidates", Value::U64(candidates.len() as u64)),
            (
                "mode",
                Value::Str(if degraded { "degraded" } else { "normal" }),
            ),
        ],
    );
}

/// One stashed window queued for re-verification.
#[derive(Clone, Copy)]
pub(crate) struct ReverifyItem<'w> {
    /// Caller-side handle handed back to `commit` (the offline walk's slot
    /// position; the streaming merger ignores it).
    pub(crate) slot: usize,
    /// The window's index, used for the `breaker_trip` event on renewed
    /// failure.
    pub(crate) window_index: u64,
    /// The window's full pair set.
    pub(crate) pairs: &'w [TrackPair],
}

/// Re-scores degraded windows with the (recovered) backend, in window
/// order. `commit` receives each successfully re-scored window's slot and
/// result (emission order: commit, then the reverified counter — as both
/// historical walks did). Returns how many windows were committed: on a
/// renewed backend failure the caller re-stashes `pending[committed..]`;
/// other errors propagate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reverify_windows(
    pending: &[ReverifyItem<'_>],
    tracks: &TrackSet,
    k: f64,
    selector: &dyn CandidateSelector,
    session: &mut ReidSession<'_>,
    breaker: &mut Breaker,
    report: &mut RobustnessReport,
    obs: &Obs,
    mut commit: impl FnMut(usize, SelectionResult),
) -> Result<usize> {
    for (i, item) in pending.iter().enumerate() {
        let input = SelectionInput {
            pairs: item.pairs,
            tracks,
            k,
            voi: None,
        };
        let outcome = selector.select(&input, session);
        flush_gate_obs(session, obs, selector.obs_slug());
        match outcome {
            Ok(result) => {
                commit(item.slot, result);
                note_reverified(report, obs);
            }
            Err(e) if e.is_backend() => {
                note_breaker_failure(breaker, report, obs, item.window_index);
                return Ok(i);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(pending.len())
}
