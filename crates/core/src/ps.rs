//! PS — proportional stratified sampling (§V-B, compared algorithm 2).
//!
//! Each track pair is a stratum; a fixed proportion `η` of its BBox pairs
//! is sampled uniformly without replacement and the sample mean estimates
//! the score. Unlike TMerge the effort is spread evenly: promising and
//! hopeless pairs receive the same budget, which is exactly the
//! inefficiency the bandit formulation removes.

use crate::sampling::WithoutReplacement;
use crate::score::{PairBoxes, MAX_ROUND_ITEMS};
use crate::selector::{top_m_by_score, CandidateSelector, SelectionInput, SelectionResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tm_reid::{ReidSession, NORMALIZER};
use tm_types::{Result, TmError, TrackPair};

/// PS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsConfig {
    /// Fraction of each pair's BBox pairs to evaluate, `η ∈ (0, 1]`.
    /// At least one BBox pair is always sampled per stratum.
    pub eta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PsConfig {
    fn default() -> Self {
        Self { eta: 0.05, seed: 0 }
    }
}

/// The PS selector.
#[derive(Debug, Clone, Copy)]
pub struct ProportionalSampling {
    config: PsConfig,
}

impl ProportionalSampling {
    /// Creates the selector.
    pub fn new(config: PsConfig) -> Self {
        Self { config }
    }
}

impl CandidateSelector for ProportionalSampling {
    fn name(&self) -> String {
        format!("PS(η={})", self.config.eta)
    }

    fn obs_slug(&self) -> &'static str {
        "ps"
    }

    fn select(
        &self,
        input: &SelectionInput<'_>,
        session: &mut ReidSession<'_>,
    ) -> Result<SelectionResult> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let eta = self.config.eta.clamp(0.0, 1.0);
        let batch = session.device().batch();
        let before = session.stats().distances;

        let mut scores: Vec<(TrackPair, f64)> = Vec::with_capacity(input.pairs.len());
        // Process `batch` track pairs per round (§IV-F semantics).
        for group in input.pairs.chunks(batch.max(1)) {
            let resolved: Vec<PairBoxes<'_>> = group
                .iter()
                .map(|&p| PairBoxes::resolve(p, input.tracks))
                .collect::<Result<_>>()?;
            let mut sums = vec![(0.0f64, 0u64); resolved.len()];
            let mut round: Vec<tm_reid::BoxPairRef<'_>> = Vec::new();
            let mut owners: Vec<usize> = Vec::new();
            for (pi, pb) in resolved.iter().enumerate() {
                let total = pb.total_bbox_pairs();
                if total == 0 {
                    continue;
                }
                let n_samples = ((eta * total as f64).ceil() as u64).clamp(1, total);
                let mut sampler = WithoutReplacement::new(total);
                for _ in 0..n_samples {
                    let flat = sampler
                        .draw(&mut rng)
                        .ok_or(TmError::Empty("stratum bbox-pair pool"))?;
                    round.push(pb.bbox_pair(flat));
                    owners.push(pi);
                    if round.len() >= MAX_ROUND_ITEMS {
                        drain_round(session, &mut round, &mut owners, &mut sums)?;
                    }
                }
            }
            drain_round(session, &mut round, &mut owners, &mut sums)?;
            for (pb, (sum, count)) in resolved.iter().zip(&sums) {
                let score = if *count == 0 {
                    1.0
                } else {
                    sum / *count as f64
                };
                scores.push((pb.pair, score));
            }
        }

        let candidates = top_m_by_score(&scores, input.m());
        let distance_evals = session.stats().distances - before;
        let obs = session.obs();
        if obs.enabled() {
            obs.counter("selector.ps.selections", 1);
            obs.counter("selector.ps.pulls", distance_evals);
            obs.counter("selector.ps.accepted", candidates.len() as u64);
            obs.counter(
                "selector.ps.rejected",
                (scores.len() - candidates.len()) as u64,
            );
        }
        Ok(SelectionResult {
            candidates,
            scores: scores.into_iter().collect(),
            distance_evals,
            history: Vec::new(),
        })
    }
}

fn drain_round(
    session: &mut ReidSession<'_>,
    round: &mut Vec<tm_reid::BoxPairRef<'_>>,
    owners: &mut Vec<usize>,
    sums: &mut [(f64, u64)],
) -> Result<()> {
    if round.is_empty() {
        return Ok(());
    }
    let ds = session.try_pair_distances_batch(round)?;
    for (owner, d) in owners.iter().zip(&ds) {
        sums[*owner].0 += d / NORMALIZER;
        sums[*owner].1 += 1;
    }
    round.clear();
    owners.clear();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
    use tm_types::TrackId;
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackSet};

    fn track(id: u64, actor: u64, start: u64, n: usize) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn fixture() -> (AppearanceModel, TrackSet, Vec<TrackPair>) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 12),
            track(2, 10, 40, 12),
            track(3, 11, 0, 12),
            track(4, 12, 0, 12),
        ]);
        let ids: Vec<u64> = (1..=4).collect();
        let mut pairs = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
            }
        }
        (model, tracks, pairs)
    }

    #[test]
    fn samples_the_requested_fraction() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.5,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let ps = ProportionalSampling::new(PsConfig { eta: 0.25, seed: 1 });
        let r = ps.select(&input, &mut session).unwrap();
        // Each pair has 144 bbox pairs → 36 samples each, 6 pairs → 216.
        assert_eq!(r.distance_evals, 6 * 36);
    }

    #[test]
    fn eta_one_equals_baseline_scores() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut s1 = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let full = ProportionalSampling::new(PsConfig { eta: 1.0, seed: 3 })
            .select(&input, &mut s1)
            .unwrap();
        let mut s2 = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let bl = Baseline.select(&input, &mut s2).unwrap();
        for (p, s) in &full.scores {
            assert!((s - bl.scores[p]).abs() < 1e-9, "pair {p}");
        }
    }

    #[test]
    fn finds_the_polyonymous_pair() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0 / 6.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let ps = ProportionalSampling::new(PsConfig { eta: 0.3, seed: 7 });
        let r = ps.select(&input, &mut session).unwrap();
        assert_eq!(
            r.candidates,
            vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()]
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.5,
            voi: None,
        };
        let run = |seed| {
            let mut s = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
            ProportionalSampling::new(PsConfig { eta: 0.1, seed })
                .select(&input, &mut s)
                .unwrap()
        };
        assert_eq!(run(5).candidates, run(5).candidates);
    }

    #[test]
    fn minimum_one_sample_per_stratum() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let ps = ProportionalSampling::new(PsConfig { eta: 1e-9, seed: 0 });
        let r = ps.select(&input, &mut session).unwrap();
        assert_eq!(r.distance_evals, 6); // one per pair
        assert_eq!(r.scores.len(), 6);
    }
}
